//! Row-level expression evaluation with SQL three-valued logic.
//!
//! Evaluation happens against a [`RowCtx`] chain: the innermost scope is the
//! current row; outer scopes (for correlated subqueries) are linked via
//! `outer`. Subqueries are executed through [`crate::exec::run_select`];
//! uncorrelated subqueries are executed once per statement and cached in
//! the [`ExecCtx`](crate::exec::ExecCtx).

use std::cmp::Ordering;
use std::sync::Arc;

use crate::ast::{BinaryOp, Expr, SelectStmt, UnaryOp};
use crate::error::{Error, Result};
use crate::exec::{run_select, ExecCtx, Relation, SubqueryState};
use crate::functions::{eval_builtin, glob_match, is_aggregate, like_match, ScalarUdf, UdfRegistry};
use crate::hash::FxHashSet;
use crate::plan::RelSchema;
use crate::value::{UdfArgKey, Value};

/// One scope of row bindings. `outer` points at the enclosing query's scope
/// for correlated subqueries.
#[derive(Clone, Copy)]
pub struct RowCtx<'a> {
    pub schema: &'a RelSchema,
    pub row: &'a [Value],
    pub outer: Option<&'a RowCtx<'a>>,
}

impl<'a> RowCtx<'a> {
    pub fn new(schema: &'a RelSchema, row: &'a [Value]) -> Self {
        RowCtx { schema, row, outer: None }
    }

    pub fn with_outer(schema: &'a RelSchema, row: &'a [Value], outer: &'a RowCtx<'a>) -> Self {
        RowCtx { schema, row, outer: Some(outer) }
    }

    /// Resolve a column through the scope chain, innermost first.
    fn lookup(&self, qual: Option<&str>, name: &str) -> Result<Option<&Value>> {
        if let Some(i) = self.schema.resolve(qual, name)? {
            return Ok(Some(&self.row[i]));
        }
        match self.outer {
            Some(o) => o.lookup(qual, name),
            None => Ok(None),
        }
    }
}

/// Evaluate `expr` for the given row scope (or no row, for constants).
pub fn eval(expr: &Expr, ctx: &ExecCtx<'_>, row: Option<&RowCtx<'_>>) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),

        Expr::Column { table, name } => {
            let full = || match table {
                Some(t) => format!("{t}.{name}"),
                None => name.clone(),
            };
            match row {
                None => Err(Error::Unresolved(full())),
                Some(r) => r
                    .lookup(table.as_deref(), name)?
                    .cloned()
                    .ok_or_else(|| Error::Unresolved(full())),
            }
        }

        // Bound by the executor against the innermost schema; a direct
        // index load with no name resolution (see [`bind_columns`]).
        Expr::BoundColumn(i) => match row {
            Some(r) => Ok(r.row[*i].clone()),
            None => Err(Error::Unresolved(format!("bound column #{i} without a row"))),
        },

        Expr::Unary { op, expr } => match op {
            UnaryOp::Neg => eval(expr, ctx, row)?.neg(),
            UnaryOp::Not => Ok(match eval(expr, ctx, row)?.truthiness() {
                Some(b) => Value::Integer(!b as i64),
                None => Value::Null,
            }),
        },

        Expr::Binary { op, left, right } => eval_binary(*op, left, right, ctx, row),

        Expr::Function { name, args, distinct: _, star: _ } => {
            if is_aggregate(name) {
                return Err(Error::Semantic(format!(
                    "misuse of aggregate function {name}() outside GROUP BY context"
                )));
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, ctx, row)?);
            }
            if let Some(res) = eval_builtin(name, &vals) {
                return res;
            }
            match ctx.udfs.get(name) {
                Some(udf) => {
                    if let Some(n) = udf.arity() {
                        if vals.len() != n {
                            return Err(Error::Semantic(format!(
                                "{name} expects {n} argument(s), got {}",
                                vals.len()
                            )));
                        }
                    }
                    if udf.is_expensive() && ctx.optimizer.batch_expensive_udfs {
                        // Batched execution: an operator-level prefetch
                        // ([`BatchableCalls`]) has usually answered this
                        // argument tuple already; per-row invocations fill
                        // (and reuse) the same statement-scoped store, so
                        // repeated tuples pay one call even off the
                        // batched path. Tuples are keyed by exact value
                        // identity ([`UdfArgKey`]), matching the
                        // determinism contract on [`ScalarUdf::invoke`].
                        let lname = name.to_ascii_lowercase();
                        let args_key: Vec<UdfArgKey> =
                            vals.iter().map(Value::udf_arg_key).collect();
                        if let Some(v) = ctx
                            .udf_results
                            .borrow()
                            .get(&lname)
                            .and_then(|m| m.get(&args_key))
                        {
                            return Ok(v.clone());
                        }
                        let v = udf.invoke(&vals)?;
                        ctx.udf_results
                            .borrow_mut()
                            .entry(lname)
                            .or_default()
                            .insert(args_key, v.clone());
                        return Ok(v);
                    }
                    udf.invoke(&vals)
                }
                None => Err(Error::Unresolved(format!("function {name}"))),
            }
        }

        Expr::IsNull { expr, negated } => {
            let v = eval(expr, ctx, row)?;
            Ok(Value::Integer((v.is_null() != *negated) as i64))
        }

        Expr::Like { expr, pattern, negated, glob } => {
            let v = eval(expr, ctx, row)?;
            let p = eval(pattern, ctx, row)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            // Borrow text cells directly: no per-row String allocation on
            // the common text-LIKE-text path.
            let vs = text_view(&v);
            let ps = text_view(&p);
            let hit = if *glob { glob_match(&vs, &ps) } else { like_match(&vs, &ps) };
            Ok(Value::Integer((hit != *negated) as i64))
        }

        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, ctx, row)?;
            let lo = eval(low, ctx, row)?;
            let hi = eval(high, ctx, row)?;
            let ge = v.sql_cmp(&lo).map(|o| o != Ordering::Less);
            let le = v.sql_cmp(&hi).map(|o| o != Ordering::Greater);
            Ok(match and3(ge, le) {
                Some(b) => Value::Integer((b != *negated) as i64),
                None => Value::Null,
            })
        }

        Expr::InList { expr, list, negated } => {
            let v = eval(expr, ctx, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, ctx, row)?;
                match v.sql_eq(&iv) {
                    Some(true) => return Ok(Value::Integer(!*negated as i64)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Integer(*negated as i64))
            }
        }

        Expr::InSubquery { expr, query, negated } => {
            let v = eval(expr, ctx, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let rel = subquery_relation(query, ctx, row)?;
            let mut saw_null = false;
            for r in &rel.rows {
                let item = r.first().cloned().unwrap_or(Value::Null);
                match v.sql_eq(&item) {
                    Some(true) => return Ok(Value::Integer(!*negated as i64)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Integer(*negated as i64))
            }
        }

        Expr::Exists { query, negated } => {
            let rel = subquery_relation(query, ctx, row)?;
            Ok(Value::Integer((rel.rows.is_empty() == *negated) as i64))
        }

        Expr::ScalarSubquery(query) => {
            let rel = subquery_relation(query, ctx, row)?;
            Ok(match rel.rows.first() {
                Some(r) => r.first().cloned().unwrap_or(Value::Null),
                None => Value::Null,
            })
        }

        Expr::Case { operand, branches, else_expr } => {
            match operand {
                Some(op_expr) => {
                    let op_val = eval(op_expr, ctx, row)?;
                    for (when, then) in branches {
                        let w = eval(when, ctx, row)?;
                        if op_val.sql_eq(&w) == Some(true) {
                            return eval(then, ctx, row);
                        }
                    }
                }
                None => {
                    for (when, then) in branches {
                        if eval(when, ctx, row)?.truthiness() == Some(true) {
                            return eval(then, ctx, row);
                        }
                    }
                }
            }
            match else_expr {
                Some(e) => eval(e, ctx, row),
                None => Ok(Value::Null),
            }
        }

        Expr::Cast { expr, type_name } => Ok(cast_value(eval(expr, ctx, row)?, type_name)),
    }
}

/// Text view of a value without copying interned text; other storage
/// classes render (allocate) as before.
fn text_view(v: &Value) -> std::borrow::Cow<'_, str> {
    match v.as_str() {
        Some(s) => std::borrow::Cow::Borrowed(s),
        None => std::borrow::Cow::Owned(v.render()),
    }
}

/// Bind an expression to a schema: every column reference that resolves in
/// `schema` is rewritten to [`Expr::BoundColumn`], so a per-row loop pays
/// name resolution once instead of once per row. Unresolvable references
/// (outer-scope correlations) stay symbolic, and subqueries are left
/// untouched — they execute in their own scope.
pub fn bind_columns(expr: &Expr, schema: &RelSchema) -> Expr {
    match expr {
        Expr::Column { table, name } => {
            match schema.resolve(table.as_deref(), name) {
                Ok(Some(i)) => Expr::BoundColumn(i),
                _ => expr.clone(),
            }
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(bind_columns(expr, schema)),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(bind_columns(left, schema)),
            right: Box::new(bind_columns(right, schema)),
        },
        Expr::Function { name, args, distinct, star } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|a| bind_columns(a, schema)).collect(),
            distinct: *distinct,
            star: *star,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(bind_columns(expr, schema)),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated, glob } => Expr::Like {
            expr: Box::new(bind_columns(expr, schema)),
            pattern: Box::new(bind_columns(pattern, schema)),
            negated: *negated,
            glob: *glob,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(bind_columns(expr, schema)),
            low: Box::new(bind_columns(low, schema)),
            high: Box::new(bind_columns(high, schema)),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(bind_columns(expr, schema)),
            list: list.iter().map(|e| bind_columns(e, schema)).collect(),
            negated: *negated,
        },
        // The probe expression binds; the subquery keeps its own scope.
        Expr::InSubquery { expr, query, negated } => Expr::InSubquery {
            expr: Box::new(bind_columns(expr, schema)),
            query: query.clone(),
            negated: *negated,
        },
        Expr::Case { operand, branches, else_expr } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(bind_columns(o, schema))),
            branches: branches
                .iter()
                .map(|(w, t)| (bind_columns(w, schema), bind_columns(t, schema)))
                .collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(bind_columns(e, schema))),
        },
        Expr::Cast { expr, type_name } => Expr::Cast {
            expr: Box::new(bind_columns(expr, schema)),
            type_name: type_name.clone(),
        },
        // Leaves and whole subqueries pass through unchanged.
        other => other.clone(),
    }
}

// ---- batched expensive-UDF evaluation --------------------------------------

/// A row source that can be replayed once per call site: the callback is
/// handed a per-row collector and must invoke it for every row of the
/// operator's input batch.
pub type RowSource<'a> = dyn FnMut(&mut dyn FnMut(&RowCtx<'_>) -> Result<()>) -> Result<()> + 'a;

/// One expensive scalar-UDF call site found in an operator's expressions.
struct CallSite<'e> {
    /// Lowercased function name (the result-store key prefix).
    name: String,
    args: &'e [Expr],
    udf: Arc<dyn ScalarUdf>,
    /// Whether the call sits inside an aggregate's argument (evaluated per
    /// member row) rather than over the group representative.
    in_aggregate: bool,
}

/// The expensive scalar-UDF call sites of one operator, ready for
/// vectorized evaluation.
///
/// For each site (innermost first, so nested calls resolve bottom-up) the
/// prefetch evaluates the argument expressions across the operator's input
/// batch, dedupes the tuples by exact value identity, issues **one**
/// [`ScalarUdf::invoke_batch`] for the tuples not already answered, and
/// stores the results in the statement-scoped
/// [`ExecCtx::udf_results`](crate::exec::ExecCtx) store where the per-row
/// evaluator finds them. Rows whose arguments fail to evaluate here (outer
/// correlations the batch schema cannot see, latent type errors) are left
/// to the per-row path, which raises exactly what the unbatched engine
/// raised, and a failing `invoke_batch` likewise falls back instead of
/// erroring. Sites in *conditionally evaluated* positions (CASE branches,
/// right-hand sides of AND/OR, IN-list tails) are never collected, so
/// batching issues no call that per-row short-circuit evaluation would
/// have skipped — it only ever lowers call counts.
pub struct BatchableCalls<'e> {
    sites: Vec<CallSite<'e>>,
}

impl<'e> BatchableCalls<'e> {
    /// Find the expensive call sites in `exprs`; `None` when there are
    /// none (the overwhelmingly common case — one cheap walk per operator).
    pub fn find(
        exprs: impl IntoIterator<Item = &'e Expr>,
        udfs: &UdfRegistry,
    ) -> Option<BatchableCalls<'e>> {
        let mut sites = Vec::new();
        for e in exprs {
            collect_sites(e, udfs, SiteCtx { in_aggregate: false, conditional: false }, &mut sites);
        }
        if sites.is_empty() {
            None
        } else {
            Some(BatchableCalls { sites })
        }
    }

    /// Prefetch every site across a materialized row batch.
    pub fn prefetch_rows(
        &self,
        ctx: &ExecCtx<'_>,
        schema: &RelSchema,
        rows: &[crate::value::Row],
        outer: Option<&RowCtx<'_>>,
    ) -> Result<()> {
        self.prefetch(ctx, &mut |collect| {
            for row in rows {
                collect(&RowCtx { schema, row, outer })?;
            }
            Ok(())
        })
    }

    /// Prefetch every site over a replayable row source.
    pub fn prefetch(&self, ctx: &ExecCtx<'_>, rows: &mut RowSource<'_>) -> Result<()> {
        for site in &self.sites {
            prefetch_site(site, ctx, rows)?;
        }
        Ok(())
    }

    /// Prefetch only the sites inside (or outside) aggregate arguments —
    /// the aggregation operator batches the two classes over different row
    /// sets (member rows vs group representatives).
    pub fn prefetch_scope(
        &self,
        in_aggregate: bool,
        ctx: &ExecCtx<'_>,
        rows: &mut RowSource<'_>,
    ) -> Result<()> {
        for site in self.sites.iter().filter(|s| s.in_aggregate == in_aggregate) {
            prefetch_site(site, ctx, rows)?;
        }
        Ok(())
    }
}

/// Traversal state for call-site collection.
#[derive(Clone, Copy)]
struct SiteCtx {
    in_aggregate: bool,
    /// Inside a subtree per-row evaluation may skip (CASE branches, the
    /// right-hand side of AND/OR, IN-list tails). Such sites are not
    /// collected: batching must never pay for a call short-circuiting
    /// would have avoided.
    conditional: bool,
}

impl SiteCtx {
    fn conditional(self) -> SiteCtx {
        SiteCtx { conditional: true, ..self }
    }
}

/// Post-order call-site collection (arguments before the call itself, so
/// nested expensive calls batch innermost-first). Subqueries are skipped —
/// they execute in their own scope and batch there; aggregate calls mark
/// their argument subtrees but are never sites themselves.
fn collect_sites<'e>(
    e: &'e Expr,
    udfs: &UdfRegistry,
    sc: SiteCtx,
    out: &mut Vec<CallSite<'e>>,
) {
    match e {
        Expr::Function { name, args, .. } => {
            let agg = is_aggregate(name);
            let inner = SiteCtx { in_aggregate: sc.in_aggregate || agg, ..sc };
            for a in args {
                collect_sites(a, udfs, inner, out);
            }
            if agg || sc.conditional {
                return;
            }
            if let Some(udf) = udfs.get(name) {
                // Arity mismatches are left to the per-row path's error.
                if udf.is_expensive() && udf.arity().is_none_or(|n| n == args.len()) {
                    out.push(CallSite {
                        name: name.to_ascii_lowercase(),
                        args,
                        udf: udf.clone(),
                        in_aggregate: sc.in_aggregate,
                    });
                }
            }
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            collect_sites(expr, udfs, sc, out)
        }
        Expr::Binary { op, left, right } => {
            collect_sites(left, udfs, sc, out);
            // AND/OR short-circuit: the right operand may never run.
            let rc = match op {
                BinaryOp::And | BinaryOp::Or => sc.conditional(),
                _ => sc,
            };
            collect_sites(right, udfs, rc, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_sites(expr, udfs, sc, out);
            collect_sites(pattern, udfs, sc, out);
        }
        Expr::Between { expr, low, high, .. } => {
            collect_sites(expr, udfs, sc, out);
            collect_sites(low, udfs, sc, out);
            collect_sites(high, udfs, sc, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_sites(expr, udfs, sc, out);
            // A NULL tested expression skips the whole list, and
            // membership testing stops at the first match: every list
            // item is conditionally evaluated.
            for item in list {
                collect_sites(item, udfs, sc.conditional(), out);
            }
        }
        Expr::InSubquery { expr, .. } => collect_sites(expr, udfs, sc, out),
        Expr::Case { operand, branches, else_expr } => {
            // The operand and the first WHEN always evaluate; every later
            // WHEN, every THEN, and the ELSE may be skipped.
            if let Some(op) = operand {
                collect_sites(op, udfs, sc, out);
            }
            for (i, (w, t)) in branches.iter().enumerate() {
                let wc = if i == 0 { sc } else { sc.conditional() };
                collect_sites(w, udfs, wc, out);
                collect_sites(t, udfs, sc.conditional(), out);
            }
            if let Some(el) = else_expr {
                collect_sites(el, udfs, sc.conditional(), out);
            }
        }
        Expr::Literal(_)
        | Expr::Column { .. }
        | Expr::BoundColumn(_)
        | Expr::Exists { .. }
        | Expr::ScalarSubquery(_) => {}
    }
}

fn prefetch_site(
    site: &CallSite<'_>,
    ctx: &ExecCtx<'_>,
    rows: &mut RowSource<'_>,
) -> Result<()> {
    let mut seen: FxHashSet<Vec<UdfArgKey>> = FxHashSet::default();
    let mut pending_keys: Vec<Vec<UdfArgKey>> = Vec::new();
    let mut pending_args: Vec<Vec<Value>> = Vec::new();
    rows(&mut |rc| {
        let mut vals = Vec::with_capacity(site.args.len());
        for a in site.args {
            match eval(a, ctx, Some(rc)) {
                Ok(v) => vals.push(v),
                // Unevaluable in batch context: leave this row to the
                // per-row path.
                Err(_) => return Ok(()),
            }
        }
        let gk: Vec<UdfArgKey> = vals.iter().map(Value::udf_arg_key).collect();
        if seen.contains(&gk) {
            return Ok(());
        }
        if ctx
            .udf_results
            .borrow()
            .get(&site.name)
            .is_some_and(|m| m.contains_key(&gk))
        {
            seen.insert(gk);
            return Ok(());
        }
        seen.insert(gk.clone());
        pending_keys.push(gk);
        pending_args.push(vals);
        Ok(())
    })?;
    if pending_args.is_empty() {
        return Ok(());
    }
    // One vectorized call for the whole batch; the UDF chunks internally.
    // A failed or short batch leaves tuples unanswered and the per-row
    // path surfaces (or retries) them.
    let Ok(results) = site.udf.invoke_batch(&pending_args) else {
        return Ok(());
    };
    if results.len() != pending_keys.len() {
        return Ok(());
    }
    let mut store = ctx.udf_results.borrow_mut();
    let results_for_site = store.entry(site.name.clone()).or_default();
    for (gk, v) in pending_keys.into_iter().zip(results) {
        results_for_site.insert(gk, v);
    }
    Ok(())
}

fn eval_binary(
    op: BinaryOp,
    left: &Expr,
    right: &Expr,
    ctx: &ExecCtx<'_>,
    row: Option<&RowCtx<'_>>,
) -> Result<Value> {
    // AND/OR get Kleene short-circuit treatment.
    match op {
        BinaryOp::And => {
            let l = eval(left, ctx, row)?.truthiness();
            if l == Some(false) {
                return Ok(Value::Integer(0));
            }
            let r = eval(right, ctx, row)?.truthiness();
            return Ok(match and3(l, r) {
                Some(b) => Value::Integer(b as i64),
                None => Value::Null,
            });
        }
        BinaryOp::Or => {
            let l = eval(left, ctx, row)?.truthiness();
            if l == Some(true) {
                return Ok(Value::Integer(1));
            }
            let r = eval(right, ctx, row)?.truthiness();
            return Ok(match or3(l, r) {
                Some(b) => Value::Integer(b as i64),
                None => Value::Null,
            });
        }
        _ => {}
    }
    let a = eval(left, ctx, row)?;
    let b = eval(right, ctx, row)?;
    let as_bool = |o: Option<bool>| match o {
        Some(t) => Value::Integer(t as i64),
        None => Value::Null,
    };
    match op {
        BinaryOp::Add => a.add(&b),
        BinaryOp::Sub => a.sub(&b),
        BinaryOp::Mul => a.mul(&b),
        BinaryOp::Div => a.div(&b),
        BinaryOp::Rem => a.rem(&b),
        BinaryOp::Eq => Ok(as_bool(a.sql_eq(&b))),
        BinaryOp::NotEq => Ok(as_bool(a.sql_eq(&b).map(|t| !t))),
        BinaryOp::Lt => Ok(as_bool(a.sql_cmp(&b).map(|o| o == Ordering::Less))),
        BinaryOp::LtEq => Ok(as_bool(a.sql_cmp(&b).map(|o| o != Ordering::Greater))),
        BinaryOp::Gt => Ok(as_bool(a.sql_cmp(&b).map(|o| o == Ordering::Greater))),
        BinaryOp::GtEq => Ok(as_bool(a.sql_cmp(&b).map(|o| o != Ordering::Less))),
        BinaryOp::Concat => {
            if a.is_null() || b.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::text(format!("{}{}", a.render(), b.render())))
            }
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

/// Kleene AND over `Option<bool>` (None = unknown).
fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

/// Kleene OR.
fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// `CAST` semantics, SQLite-flavoured: unconvertible text casts to 0 /
/// 0.0 rather than erroring; NULL stays NULL.
pub fn cast_value(v: Value, type_name: &str) -> Value {
    if v.is_null() {
        return Value::Null;
    }
    let t = type_name.to_ascii_uppercase();
    if t.contains("INT") {
        Value::Integer(match &v {
            Value::Integer(i) => *i,
            Value::Real(r) => *r as i64,
            Value::Text(s) => leading_number(s) as i64,
            Value::Null => unreachable!(),
        })
    } else if t.contains("REAL") || t.contains("FLOA") || t.contains("DOUB") || t.contains("NUM")
        || t.contains("DEC")
    {
        Value::Real(match &v {
            Value::Integer(i) => *i as f64,
            Value::Real(r) => *r,
            Value::Text(s) => leading_number(s),
            Value::Null => unreachable!(),
        })
    } else {
        // TEXT, VARCHAR, CHAR, anything else: render to text.
        Value::text(v.render())
    }
}

/// Parse the longest numeric prefix of `s` (SQLite CAST behaviour); 0.0 if
/// none.
fn leading_number(s: &str) -> f64 {
    let t = s.trim_start();
    let bytes = t.as_bytes();
    let mut end = 0;
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut seen_exp = false;
    while end < bytes.len() {
        let c = bytes[end] as char;
        match c {
            '+' | '-' if end == 0 => {}
            '0'..='9' => seen_digit = true,
            '.' if !seen_dot && !seen_exp => seen_dot = true,
            'e' | 'E' if seen_digit && !seen_exp => {
                // Only accept the exponent if digits follow.
                let mut j = end + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j].is_ascii_digit() {
                    seen_exp = true;
                    end = j;
                } else {
                    break;
                }
            }
            _ => break,
        }
        end += 1;
    }
    if !seen_digit {
        return 0.0;
    }
    t[..end].parse::<f64>().unwrap_or(0.0)
}

/// Execute (or fetch the cached result of) a subquery.
///
/// The first execution is attempted without the outer scope; if it
/// resolves, the subquery is uncorrelated and the result is cached for the
/// rest of the statement. If it fails with an unresolved column and an
/// outer scope exists, the subquery is correlated and is re-executed per
/// outer row.
fn subquery_relation(
    query: &SelectStmt,
    ctx: &ExecCtx<'_>,
    row: Option<&RowCtx<'_>>,
) -> Result<Arc<Relation>> {
    let key = query as *const SelectStmt as usize;
    // Grab (or create) this subquery's single-flight cell. The map lock
    // is held only for the lookup — never while a subquery executes
    // (run_select can be arbitrarily expensive and recursively re-enter
    // this cache for nested subqueries).
    let cell = {
        let mut cache = ctx.subqueries.lock();
        cache.entry(key).or_default().clone()
    };
    // Single-flight classification: the first arriver executes the
    // subquery without the outer scope (classifying it uncorrelated on
    // success, correlated on an unresolved column when an outer row
    // exists); concurrent arrivers block on the cell instead of racing a
    // duplicate execution — an uncorrelated subquery runs exactly once
    // per statement at every thread count. Nested subqueries use their
    // own cells, so initialization cannot cycle.
    let state = cell.get_or_init(|| match run_select(query, ctx, None) {
        Ok(rel) => Ok(SubqueryState::Uncorrelated(Arc::new(rel))),
        Err(Error::Unresolved(_)) if row.is_some() => Ok(SubqueryState::Correlated),
        Err(e) => Err(e),
    });
    match state {
        Ok(SubqueryState::Uncorrelated(rel)) => Ok(rel.clone()),
        // Correlated: re-execute per outer row (no caching of rows).
        Ok(SubqueryState::Correlated) => run_select(query, ctx, row).map(Arc::new),
        // The cache is statement-scoped, so a pinned error only
        // short-circuits re-evaluations within the failing statement.
        Err(e) => Err(e.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::UdfRegistry;
    use crate::parser::parse_expression;
    use crate::storage::Catalog;

    fn const_eval(sql: &str) -> Result<Value> {
        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let ctx = ExecCtx::new(&catalog, &udfs);
        let e = parse_expression(sql)?;
        eval(&e, &ctx, None)
    }

    fn v(sql: &str) -> Value {
        const_eval(sql).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(v("1 + 2 * 3"), Value::Integer(7));
        assert_eq!(v("(1 + 2) * 3"), Value::Integer(9));
        assert_eq!(v("7 / 2"), Value::Integer(3));
        assert_eq!(v("7.0 / 2"), Value::Real(3.5));
        assert_eq!(v("7 % 3"), Value::Integer(1));
        assert_eq!(v("-(3 + 4)"), Value::Integer(-7));
    }

    #[test]
    fn three_valued_and_or() {
        assert_eq!(v("NULL AND 0"), Value::Integer(0), "unknown AND false = false");
        assert!(v("NULL AND 1").is_null());
        assert_eq!(v("NULL OR 1"), Value::Integer(1), "unknown OR true = true");
        assert!(v("NULL OR 0").is_null());
        assert!(v("NOT NULL").is_null());
    }

    #[test]
    fn comparisons() {
        assert_eq!(v("1 < 2"), Value::Integer(1));
        assert_eq!(v("2 <= 2"), Value::Integer(1));
        assert_eq!(v("'abc' = 'abc'"), Value::Integer(1));
        assert_eq!(v("'abc' <> 'abd'"), Value::Integer(1));
        assert!(v("NULL = NULL").is_null(), "NULL never equals anything");
        assert_eq!(v("1 = 1.0"), Value::Integer(1));
    }

    #[test]
    fn is_null_and_between_and_in() {
        assert_eq!(v("NULL IS NULL"), Value::Integer(1));
        assert_eq!(v("3 IS NOT NULL"), Value::Integer(1));
        assert_eq!(v("5 BETWEEN 1 AND 10"), Value::Integer(1));
        assert_eq!(v("5 NOT BETWEEN 6 AND 10"), Value::Integer(1));
        assert_eq!(v("2 IN (1, 2, 3)"), Value::Integer(1));
        assert_eq!(v("9 NOT IN (1, 2, 3)"), Value::Integer(1));
        assert!(v("9 IN (1, NULL)").is_null(), "unknown membership");
        assert_eq!(v("1 IN (1, NULL)"), Value::Integer(1));
    }

    #[test]
    fn like_and_concat() {
        assert_eq!(v("'Marvel Comics' LIKE 'marvel%'"), Value::Integer(1));
        assert_eq!(v("'a' || 'b' || 'c'"), Value::text("abc"));
        assert!(v("'a' || NULL").is_null());
        assert!(v("NULL LIKE '%'").is_null());
    }

    #[test]
    fn case_expressions() {
        assert_eq!(v("CASE WHEN 1 > 0 THEN 'yes' ELSE 'no' END"), Value::text("yes"));
        assert_eq!(v("CASE 3 WHEN 1 THEN 'a' WHEN 3 THEN 'c' END"), Value::text("c"));
        assert!(v("CASE 9 WHEN 1 THEN 'a' END").is_null());
        assert_eq!(v("CASE WHEN NULL THEN 'x' ELSE 'y' END"), Value::text("y"));
    }

    #[test]
    fn casts() {
        assert_eq!(v("CAST('42abc' AS INTEGER)"), Value::Integer(42));
        assert_eq!(v("CAST('abc' AS INTEGER)"), Value::Integer(0));
        assert_eq!(v("CAST(3.9 AS INTEGER)"), Value::Integer(3));
        assert_eq!(v("CAST(5 AS TEXT)"), Value::text("5"));
        assert_eq!(v("CAST('3.5e2' AS REAL)"), Value::Real(350.0));
        assert!(v("CAST(NULL AS INTEGER)").is_null());
    }

    #[test]
    fn builtins_dispatch() {
        assert_eq!(v("UPPER('abc')"), Value::text("ABC"));
        assert_eq!(v("COALESCE(NULL, 2)"), Value::Integer(2));
        assert_eq!(v("LENGTH('hero')"), Value::Integer(4));
    }

    #[test]
    fn unknown_function_is_unresolved() {
        assert!(matches!(const_eval("nope(1)"), Err(Error::Unresolved(_))));
    }

    #[test]
    fn aggregate_outside_group_context_errors() {
        assert!(matches!(const_eval("COUNT(1)"), Err(Error::Semantic(_))));
    }

    #[test]
    fn column_without_row_is_unresolved() {
        assert!(matches!(const_eval("some_col + 1"), Err(Error::Unresolved(_))));
    }

    #[test]
    fn leading_number_parses_prefixes() {
        assert_eq!(leading_number("42abc"), 42.0);
        assert_eq!(leading_number("-3.5xyz"), -3.5);
        assert_eq!(leading_number("  7e2!"), 700.0);
        assert_eq!(leading_number("e5"), 0.0);
        assert_eq!(leading_number("abc"), 0.0);
        assert_eq!(leading_number("1e"), 1.0, "bare exponent marker is ignored");
    }

    #[test]
    fn row_ctx_scope_chain() {
        let outer_schema = RelSchema::qualified("o", vec!["x".to_string()]);
        let outer_row = vec![Value::Integer(99)];
        let outer = RowCtx::new(&outer_schema, &outer_row);
        let inner_schema = RelSchema::qualified("i", vec!["y".to_string()]);
        let inner_row = vec![Value::Integer(1)];
        let inner = RowCtx::with_outer(&inner_schema, &inner_row, &outer);

        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let ctx = ExecCtx::new(&catalog, &udfs);
        let e = parse_expression("o.x + i.y").unwrap();
        assert_eq!(eval(&e, &ctx, Some(&inner)).unwrap(), Value::Integer(100));
    }
}
