//! Dynamic values with SQLite-flavoured typing.
//!
//! The engine is dynamically typed like SQLite: every cell holds a [`Value`],
//! and comparison/arithmetic follow SQLite's affinity-light rules:
//!
//! * `NULL` compares as unknown (three-valued logic) but sorts first;
//! * integers and reals compare numerically across the two types;
//! * text compares byte-wise (memcmp order, which equals lexicographic
//!   order for ASCII data such as ours);
//! * across storage classes the order is `NULL < numbers < text`.
//!
//! # Zero-copy representation
//!
//! Text is interned behind `Arc<str>`, so cloning a [`Value`] is always O(1)
//! — a pointer bump for text, a copy for the scalar classes. Whole rows are
//! shared the same way: [`Row`] is `Arc<[Value]>`, which lets scans, joins,
//! DISTINCT and compound operators pass rows around without deep-copying
//! `Vec<Value>` (the seed representation cloned every cell on every hop).

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};

/// A shared, immutable row. Cloning is a reference-count bump; the executor
/// builds a row once (at scan load or join emit time) and every downstream
/// operator shares it.
pub type Row = Arc<[Value]>;

/// Materialize an owned cell vector into a shareable [`Row`].
#[inline]
pub fn row(values: Vec<Value>) -> Row {
    values.into()
}

/// A single dynamically-typed SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Integer(i64),
    /// 64-bit IEEE float.
    Real(f64),
    /// UTF-8 text, interned: clones share the same allocation.
    Text(Arc<str>),
}

/// Conversion into interned text; implemented for the stringy types call
/// sites actually pass (`&str`, `String`, `&String`, and already-interned
/// `Arc<str>` — the last is a free refcount bump).
pub trait IntoText {
    fn into_text(self) -> Arc<str>;
}

impl IntoText for Arc<str> {
    fn into_text(self) -> Arc<str> {
        self
    }
}

impl IntoText for &Arc<str> {
    fn into_text(self) -> Arc<str> {
        self.clone()
    }
}

impl IntoText for &str {
    fn into_text(self) -> Arc<str> {
        self.into()
    }
}

impl IntoText for String {
    fn into_text(self) -> Arc<str> {
        self.into()
    }
}

impl IntoText for &String {
    fn into_text(self) -> Arc<str> {
        self.as_str().into()
    }
}

/// The single definition of SQL text→number coercion (SQLite affinity):
/// surrounding whitespace is ignored, the rest must match Rust's full
/// `f64` grammar (so `"+5"`, `".5"`, `"5."`, `"1e309"` → `inf`, and the
/// case-insensitive `"inf"`/`"NaN"` spellings all parse; `"1_000"`,
/// `"0x10"`, and `""` do not). Every site that decides whether a string
/// is a number — [`Value::as_f64`], truthiness, negation, and the
/// columnar kernels' per-dictionary-entry LUTs — must route through this
/// helper so the row and vectorized paths can never disagree.
pub fn parse_text_f64(s: &str) -> Option<f64> {
    s.trim().parse::<f64>().ok()
}

impl Value {
    /// Build a text value from anything stringy.
    pub fn text(s: impl IntoText) -> Self {
        Value::Text(s.into_text())
    }

    /// True iff the value is `NULL`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The SQL storage-class name, as `typeof()` would report it.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Integer(_) => "integer",
            Value::Real(_) => "real",
            Value::Text(_) => "text",
        }
    }

    /// Numeric view: integers and reals yield `Some(f64)`, text that parses
    /// as a number also yields `Some` (SQLite affinity), otherwise `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            Value::Text(s) => parse_text_f64(s),
            Value::Null => None,
        }
    }

    /// Integer view without rounding surprises: reals only convert when
    /// they are exactly integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            Value::Real(r) if r.fract() == 0.0 && r.is_finite() => Some(*r as i64),
            Value::Text(s) => s.trim().parse::<i64>().ok(),
            _ => None,
        }
    }

    /// Borrowed text view (`None` for non-text).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(&**s),
            _ => None,
        }
    }

    /// Shared text view (`None` for non-text); cloning the `Arc` is how
    /// callers keep a cell's text without copying it.
    pub fn as_shared_str(&self) -> Option<&Arc<str>> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL truthiness: numbers are true iff non-zero; text is true iff it
    /// parses to a non-zero number; NULL is unknown (`None`).
    pub fn truthiness(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            other => other.as_f64().map(|v| v != 0.0),
        }
    }

    /// Render the value the way a result cell prints: NULL as empty string,
    /// reals with a trailing `.0` when integral (SQLite style).
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Integer(i) => i.to_string(),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.is_finite() && r.abs() < 1e15 {
                    format!("{:.1}", r)
                } else {
                    r.to_string()
                }
            }
            Value::Text(s) => s.to_string(),
        }
    }

    /// Total order used by ORDER BY, GROUP BY and DISTINCT:
    /// `NULL < numeric < text`, numerics compared as f64, NaN last among reals.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Text(a), Text(b)) => a.as_ref().cmp(b.as_ref()),
            (Text(_), _) => Ordering::Greater,
            (_, Text(_)) => Ordering::Less,
            (a, b) => {
                let (x, y) = (a.raw_num(), b.raw_num());
                x.partial_cmp(&y).unwrap_or_else(|| {
                    // Order NaNs after every other real so sorting is total.
                    match (x.is_nan(), y.is_nan()) {
                        (true, true) => Ordering::Equal,
                        (true, false) => Ordering::Greater,
                        (false, true) => Ordering::Less,
                        (false, false) => Ordering::Equal,
                    }
                })
            }
        }
    }

    /// Numeric value for the numeric storage classes only (no text parsing);
    /// callers guarantee `self` is Integer or Real.
    fn raw_num(&self) -> f64 {
        match self {
            Value::Integer(i) => *i as f64,
            Value::Real(r) => *r,
            _ => unreachable!("raw_num on non-numeric"),
        }
    }

    /// SQL `=` comparison with three-valued logic: `None` when either side
    /// is NULL. Integer/real compare numerically; text compares exactly;
    /// number-vs-text is false (distinct storage classes), matching SQLite.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Text(a), Text(b)) => Some(a == b),
            (Text(_), _) | (_, Text(_)) => Some(false),
            (a, b) => Some(a.raw_num() == b.raw_num()),
        }
    }

    /// SQL ordering comparison (`<`, `<=`, `>`, `>=`): `None` on NULL.
    /// Cross-class comparisons use the storage-class order, like SQLite.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.sort_cmp(other))
    }

    /// Exact-identity key for the UDF result store: storage class plus
    /// exact bits. Stricter than [`group_key`](Value::group_key), which
    /// coerces integers through `f64` for SQL grouping equality — under
    /// that coercion `Integer(1)`/`Real(1.0)` (different renderings,
    /// different UDF prompts) and distinct integers beyond 2^53 would
    /// share one cached UDF result.
    pub fn udf_arg_key(&self) -> UdfArgKey {
        match self {
            Value::Null => UdfArgKey::Null,
            Value::Integer(i) => UdfArgKey::Int(*i),
            Value::Real(r) => {
                // Canonicalize NaNs (they all render alike) but keep the
                // sign of zero: -0.0 and 0.0 render differently, so they
                // must not share a cached result.
                let bits = if r.is_nan() { f64::NAN.to_bits() } else { r.to_bits() };
                UdfArgKey::Real(bits)
            }
            Value::Text(s) => UdfArgKey::Text(s.clone()),
        }
    }

    /// Key used for grouping / DISTINCT: collapses equal numerics across
    /// Integer/Real, keeps NULLs equal to each other.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Integer(i) => GroupKey::Num((*i as f64).to_bits()),
            Value::Real(r) => {
                // Normalize -0.0 to 0.0 and all NaNs to one bit pattern so
                // grouping is consistent with sort_cmp equality.
                let r = if *r == 0.0 { 0.0 } else { *r };
                let bits = if r.is_nan() { f64::NAN.to_bits() } else { r.to_bits() };
                GroupKey::Num(bits)
            }
            Value::Text(s) => GroupKey::Text(s.clone()),
        }
    }

    /// Add two values with SQL NULL propagation. Integer+Integer stays
    /// integer (checked overflow); any real operand promotes to real.
    pub fn add(&self, other: &Value) -> Result<Value> {
        self.numeric_binop(other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Subtract with NULL propagation.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        self.numeric_binop(other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Multiply with NULL propagation.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        self.numeric_binop(other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Divide. Integer/integer performs integer division like SQLite;
    /// division by zero yields NULL (SQLite behaviour).
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self.as_int_like(), other.as_int_like()) {
            (Some(a), Some(b)) => {
                if b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Integer(a.wrapping_div(b)))
                }
            }
            _ => {
                let (a, b) = self.both_f64(other, "/")?;
                if b == 0.0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Real(a / b))
                }
            }
        }
    }

    /// Modulo; NULL on zero divisor, NULL propagation.
    pub fn rem(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self.as_int_like(), other.as_int_like()) {
            (Some(a), Some(b)) => {
                if b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Integer(a.wrapping_rem(b)))
                }
            }
            _ => {
                let (a, b) = self.both_f64(other, "%")?;
                if b == 0.0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Real(a % b))
                }
            }
        }
    }

    /// Unary minus with NULL propagation.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Integer(i) => i
                .checked_neg()
                .map(Value::Integer)
                .ok_or_else(|| Error::Arithmetic("integer overflow in negation".into())),
            Value::Real(r) => Ok(Value::Real(-r)),
            Value::Text(s) => {
                let v = parse_text_f64(s)
                    .ok_or_else(|| Error::Type(format!("cannot negate text '{s}'")))?;
                Ok(Value::Real(-v))
            }
        }
    }

    /// Integer view used by the arithmetic fast path: only true integers
    /// (not integral reals, not numeric text) keep integer semantics.
    fn as_int_like(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    fn both_f64(&self, other: &Value, op: &str) -> Result<(f64, f64)> {
        let a = self
            .as_f64()
            .ok_or_else(|| Error::Type(format!("left operand of {op} is not numeric: {self}")))?;
        let b = other
            .as_f64()
            .ok_or_else(|| Error::Type(format!("right operand of {op} is not numeric: {other}")))?;
        Ok((a, b))
    }

    fn numeric_binop(
        &self,
        other: &Value,
        op: &str,
        int_op: impl Fn(i64, i64) -> Option<i64>,
        float_op: impl Fn(f64, f64) -> f64,
    ) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        if let (Some(a), Some(b)) = (self.as_int_like(), other.as_int_like()) {
            return int_op(a, b)
                .map(Value::Integer)
                .ok_or_else(|| Error::Arithmetic(format!("integer overflow in {op}")));
        }
        let (a, b) = self.both_f64(other, op)?;
        Ok(Value::Real(float_op(a, b)))
    }
}

/// Hashable grouping key with the same equality as [`Value::sort_cmp`]
/// treating NULLs as equal (GROUP BY semantics). Text keys share the
/// value's interned allocation, so building one never copies the string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    Null,
    Num(u64),
    Text(Arc<str>),
}

/// Exact identity of one UDF argument value (see [`Value::udf_arg_key`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UdfArgKey {
    Null,
    Int(i64),
    Real(u64),
    Text(Arc<str>),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.sort_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            other => write!(f, "{}", other.render()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Integer(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v.into())
    }
}

impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Integer(v as i64)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_arithmetic() {
        let n = Value::Null;
        let one = Value::Integer(1);
        assert!(n.add(&one).unwrap().is_null());
        assert!(one.sub(&n).unwrap().is_null());
        assert!(n.mul(&n).unwrap().is_null());
        assert!(n.div(&one).unwrap().is_null());
        assert!(n.neg().unwrap().is_null());
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let a = Value::Integer(7);
        let b = Value::Integer(2);
        assert_eq!(a.add(&b).unwrap(), Value::Integer(9));
        assert_eq!(a.div(&b).unwrap(), Value::Integer(3), "integer division truncates");
        assert_eq!(a.rem(&b).unwrap(), Value::Integer(1));
    }

    #[test]
    fn mixed_arithmetic_promotes_to_real() {
        let a = Value::Integer(7);
        let b = Value::Real(2.0);
        assert_eq!(a.div(&b).unwrap(), Value::Real(3.5));
        assert_eq!(a.add(&b).unwrap(), Value::Real(9.0));
    }

    #[test]
    fn division_by_zero_is_null() {
        assert!(Value::Integer(1).div(&Value::Integer(0)).unwrap().is_null());
        assert!(Value::Real(1.0).div(&Value::Real(0.0)).unwrap().is_null());
        assert!(Value::Integer(1).rem(&Value::Integer(0)).unwrap().is_null());
    }

    #[test]
    fn overflow_is_an_error_not_a_wrap() {
        assert!(Value::Integer(i64::MAX).add(&Value::Integer(1)).is_err());
        assert!(Value::Integer(i64::MIN).neg().is_err());
    }

    #[test]
    fn sql_eq_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).sql_eq(&Value::Real(1.0)), Some(true));
        assert_eq!(Value::text("a").sql_eq(&Value::text("a")), Some(true));
        assert_eq!(Value::text("1").sql_eq(&Value::Integer(1)), Some(false), "no cross-class coercion in =");
    }

    #[test]
    fn sort_order_is_null_numbers_text() {
        let mut vals = [
            Value::text("apple"),
            Value::Integer(3),
            Value::Null,
            Value::Real(2.5),
            Value::text("Zebra"),
        ];
        vals.sort_by(|a, b| a.sort_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Real(2.5));
        assert_eq!(vals[2], Value::Integer(3));
        assert_eq!(vals[3], Value::text("Zebra"), "byte order: uppercase first");
        assert_eq!(vals[4], Value::text("apple"));
    }

    #[test]
    fn group_key_unifies_integer_and_real() {
        assert_eq!(Value::Integer(2).group_key(), Value::Real(2.0).group_key());
        assert_eq!(Value::Null.group_key(), Value::Null.group_key());
        assert_ne!(Value::Integer(2).group_key(), Value::text("2").group_key());
        assert_eq!(Value::Real(0.0).group_key(), Value::Real(-0.0).group_key());
    }

    #[test]
    fn truthiness_follows_sqlite() {
        assert_eq!(Value::Integer(0).truthiness(), Some(false));
        assert_eq!(Value::Integer(5).truthiness(), Some(true));
        assert_eq!(Value::Null.truthiness(), None);
        assert_eq!(Value::text("1").truthiness(), Some(true));
        assert_eq!(Value::text("abc").truthiness(), None, "non-numeric text is not a number");
    }

    #[test]
    fn render_matches_sqlite_conventions() {
        assert_eq!(Value::Real(3.0).render(), "3.0");
        assert_eq!(Value::Real(3.25).render(), "3.25");
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Integer(-7).render(), "-7");
    }

    #[test]
    fn text_clone_is_an_interned_pointer_copy() {
        let a = Value::text("a string long enough that deep-copying it would show".repeat(4));
        let b = a.clone();
        match (&a, &b) {
            (Value::Text(x), Value::Text(y)) => {
                assert!(Arc::ptr_eq(x, y), "clone must share the allocation")
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn row_clone_shares_cells() {
        let r: Row = row(vec![Value::text("hello"), Value::Integer(1)]);
        let s = r.clone();
        assert!(Arc::ptr_eq(&r, &s), "row clone is a refcount bump");
        assert_eq!(&r[..], &s[..]);
    }

    #[test]
    fn as_i64_only_converts_exact_reals() {
        assert_eq!(Value::Real(4.0).as_i64(), Some(4));
        assert_eq!(Value::Real(4.5).as_i64(), None);
        assert_eq!(Value::text(" 42 ").as_i64(), Some(42));
    }
}
