//! Query execution.
//!
//! `run_select` drives a SELECT end to end: the FROM/WHERE part is lowered
//! to a [`Plan`], optimized, and executed (with a hash-join fast path for
//! equi-joins); projection, aggregation, DISTINCT, compound operators,
//! ORDER BY and LIMIT are applied on top.
//!
//! # Zero-copy execution
//!
//! Rows flow through the executor as [`Row`] (`Arc<[Value]>`):
//!
//! * **scans** share the table's stored rows — one refcount bump per row;
//! * **filters** drop non-matching rows in place, never cloning survivors;
//! * **joins** allocate only the emitted combined rows; the build table is
//!   pre-sized, keyed without per-row `Vec` allocation for single-column
//!   equi-joins, and built on the smaller input for inner joins;
//! * **projection** detects column-only projections and shares or gathers
//!   cells directly instead of walking the expression evaluator;
//! * **DISTINCT, UNION/EXCEPT/INTERSECT and ORDER BY** move `Arc` handles,
//!   not cell vectors.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use swan_pool::lockrank;

use crate::ast::{
    CompoundOp, Expr, OrderItem, SelectBody, SelectCore, SelectItem, SelectStmt,
};
use crate::columnar::{AggKernel, ColumnSet};
use crate::error::{Error, Result};
use crate::eval::{bind_columns, eval, BatchableCalls, RowCtx};
use crate::functions::{is_aggregate, UdfRegistry};
use crate::hash::{map_with_capacity, set_with_capacity, FxHashMap, FxHashSet};
use crate::optimizer::{optimize, NeededCol, OptimizerConfig};
use crate::plan::{plan_from, ColRef, IndexBounds, Plan, PlanJoinKind, RelSchema};
use crate::storage::Catalog;
use crate::value::{GroupKey, Row, UdfArgKey, Value};

/// Results of one expensive UDF's invocations within a statement, keyed
/// by argument tuple under exact value identity.
pub type UdfResults = FxHashMap<Vec<UdfArgKey>, Value>;

/// Result rows paired with per-row ORDER BY sort keys.
type RowsAndKeys = (Vec<Row>, Vec<Vec<Value>>);

/// A materialized intermediate or final relation.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    pub schema: RelSchema,
    pub rows: Vec<Row>,
}

impl Relation {
    /// Output column names (unqualified).
    pub fn column_names(&self) -> Vec<String> {
        self.schema.cols.iter().map(|c| c.name.clone()).collect()
    }
}

/// Cached execution state of one subquery within a statement.
#[derive(Debug, Clone)]
pub enum SubqueryState {
    /// Uncorrelated: executed once, result shared.
    Uncorrelated(Arc<Relation>),
    /// Correlated with the outer row: must re-execute per row.
    Correlated,
}

/// The statement-scoped subquery result cache, keyed by the subquery's
/// AST node address. `Send + Sync` (an `Arc<Mutex<..>>` map of shared
/// cells) so morsel workers share one cache with the statement thread,
/// letting subquery-bearing predicates run under [`Plan::Parallel`]
/// instead of falling back to serial. Each entry is a
/// [`std::sync::OnceLock`] **single-flight cell**: the first arriver
/// classifies (and, for uncorrelated subqueries, executes) the subquery
/// while concurrent arrivers block on the cell — an uncorrelated
/// subquery therefore executes *exactly once* per statement at every
/// thread count, never once per worker.
pub type SubqueryCache =
    Arc<Mutex<HashMap<usize, Arc<std::sync::OnceLock<Result<SubqueryState>>>>>>;

/// Per-statement execution context.
pub struct ExecCtx<'a> {
    pub catalog: &'a Catalog,
    pub udfs: &'a UdfRegistry,
    pub optimizer: OptimizerConfig,
    /// Subquery result cache, shared across this statement's morsel
    /// workers (see [`SubqueryCache`]).
    pub subqueries: SubqueryCache,
    /// Statement-scoped results of expensive-UDF invocations, keyed by
    /// lowercased function name, filled by the operators' vectorized
    /// prefetch ([`BatchableCalls`]) and by per-row evaluation; every
    /// later evaluation of the same argument tuple is a lookup instead
    /// of a call.
    pub udf_results: RefCell<FxHashMap<String, UdfResults>>,
    /// The statement's cancellation/deadline token. Cloned into every
    /// morsel worker's context; long loops call
    /// [`ExecCtx::check_cancel`] at batch boundaries.
    pub cancel: swan_pool::CancelToken,
}

impl<'a> ExecCtx<'a> {
    pub fn new(catalog: &'a Catalog, udfs: &'a UdfRegistry) -> Self {
        ExecCtx {
            catalog,
            udfs,
            optimizer: OptimizerConfig::default(),
            subqueries: Arc::new(Mutex::with_rank(
                "subquery_cache",
                lockrank::SUBQUERY_CACHE,
                HashMap::new(),
            )),
            udf_results: RefCell::new(FxHashMap::default()),
            // Inherit the statement token the session installed on this
            // thread (see `Database::execute_statement`); a context built
            // outside any statement scope runs unbounded.
            cancel: swan_pool::cancel::current()
                .unwrap_or_else(swan_pool::CancelToken::unbounded),
        }
    }

    pub fn with_optimizer(mut self, config: OptimizerConfig) -> Self {
        self.optimizer = config;
        self
    }

    pub fn with_cancel(mut self, cancel: swan_pool::CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The cooperative cancellation checkpoint: cheap enough for morsel
    /// boundaries and periodic row-loop checks, fails the statement with
    /// [`Error::Deadline`] / [`Error::Cancelled`].
    #[inline]
    pub fn check_cancel(&self) -> Result<()> {
        self.cancel.check().map_err(Error::from)
    }
}

/// How many rows a serial loop processes between cancellation checks —
/// one morsel's worth, matching the parallel executor's granularity.
pub(crate) const CANCEL_CHECK_ROWS: usize = crate::exec_parallel::MORSEL_ROWS;

/// Execute a full SELECT (body + ORDER BY + LIMIT/OFFSET).
pub fn run_select(
    stmt: &SelectStmt,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Relation> {
    let (mut rel, mut keys) = match &stmt.body {
        SelectBody::Simple(core) => {
            run_core(core, &stmt.order_by, topk_hint(stmt), ctx, outer)?
        }
        SelectBody::Compound { .. } => {
            let rel = run_body(&stmt.body, ctx, outer)?;
            let keys = compound_sort_keys(&rel, &stmt.order_by, ctx, outer)?;
            (rel, keys)
        }
    };

    if !stmt.order_by.is_empty() {
        let threads = crate::exec_parallel::effective_threads(&ctx.optimizer);
        sort_rows(&mut rel.rows, &mut keys, &stmt.order_by, topk_hint(stmt), threads);
    }
    apply_limit_offset(&mut rel.rows, stmt, ctx)?;
    Ok(rel)
}

/// `ORDER BY ... LIMIT k` with literal bounds only needs the smallest
/// `offset + k` rows; the sort can then select instead of fully sorting.
fn topk_hint(stmt: &SelectStmt) -> Option<usize> {
    let lit = |e: &Expr| match e {
        Expr::Literal(Value::Integer(n)) if *n >= 0 => Some(*n as usize),
        _ => None,
    };
    let limit = lit(stmt.limit.as_ref()?)?;
    let offset = match &stmt.offset {
        None => 0,
        Some(e) => lit(e)?,
    };
    limit.checked_add(offset)
}

fn run_body(
    body: &SelectBody,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Relation> {
    match body {
        SelectBody::Simple(core) => Ok(run_core(core, &[], None, ctx, outer)?.0),
        SelectBody::Compound { op, left, right } => {
            let l = run_body(left, ctx, outer)?;
            let r = run_body(right, ctx, outer)?;
            if l.schema.len() != r.schema.len() {
                return Err(Error::Semantic(format!(
                    "compound SELECT column count mismatch: {} vs {}",
                    l.schema.len(),
                    r.schema.len()
                )));
            }
            let rows = match op {
                CompoundOp::UnionAll => {
                    let mut rows = l.rows;
                    rows.extend(r.rows);
                    rows
                }
                CompoundOp::Union => dedupe(l.rows.into_iter().chain(r.rows)),
                CompoundOp::Except => {
                    let exclude: FxHashSet<Vec<GroupKey>> =
                        r.rows.iter().map(|row| row_key(row)).collect();
                    dedupe(l.rows.into_iter().filter(|row| !exclude.contains(&row_key(row))))
                }
                CompoundOp::Intersect => {
                    let keep: FxHashSet<Vec<GroupKey>> =
                        r.rows.iter().map(|row| row_key(row)).collect();
                    dedupe(l.rows.into_iter().filter(|row| keep.contains(&row_key(row))))
                }
            };
            Ok(Relation { schema: l.schema, rows })
        }
    }
}

fn row_key(row: &[Value]) -> Vec<GroupKey> {
    row.iter().map(Value::group_key).collect()
}

fn dedupe(rows: impl IntoIterator<Item = Row>) -> Vec<Row> {
    let mut seen = FxHashSet::default();
    let mut out = Vec::new();
    for row in rows {
        if seen.insert(row_key(&row)) {
            out.push(row);
        }
    }
    out
}

/// ORDER BY keys for a compound SELECT: ordinals or output column names.
fn compound_sort_keys(
    rel: &Relation,
    order_by: &[OrderItem],
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Vec<Vec<Value>>> {
    if order_by.is_empty() {
        return Ok(Vec::new());
    }
    let mut keys = Vec::with_capacity(rel.rows.len());
    for row in &rel.rows {
        let rc = RowCtx { schema: &rel.schema, row, outer };
        let mut k = Vec::with_capacity(order_by.len());
        for item in order_by {
            if let Some(i) = ordinal_index(&item.expr, rel.schema.len())? {
                k.push(row[i].clone());
            } else {
                k.push(eval(&item.expr, ctx, Some(&rc))?);
            }
        }
        keys.push(k);
    }
    Ok(keys)
}

/// Build one output row's ORDER BY key vector: ordinals index into the
/// projected row `out`, every other expression evaluates through
/// `eval_expr`. One implementation serves the serial and parallel
/// projection and aggregation paths, so ordinal/alias resolution can
/// never drift between them.
fn output_sort_keys(
    order_exprs: &[Expr],
    width: usize,
    out: &[Value],
    eval_expr: &mut dyn FnMut(&Expr) -> Result<Value>,
) -> Result<Vec<Value>> {
    let mut k = Vec::with_capacity(order_exprs.len());
    for e in order_exprs {
        if let Some(i) = ordinal_index(e, width)? {
            k.push(out[i].clone());
        } else {
            k.push(eval_expr(e)?);
        }
    }
    Ok(k)
}

/// `ORDER BY 2` style ordinals. Errors when out of range.
fn ordinal_index(expr: &Expr, width: usize) -> Result<Option<usize>> {
    if let Expr::Literal(Value::Integer(n)) = expr {
        let n = *n;
        if n < 1 || n as usize > width {
            return Err(Error::Semantic(format!(
                "ORDER BY position {n} is out of range (1..{width})"
            )));
        }
        return Ok(Some(n as usize - 1));
    }
    Ok(None)
}

/// Rows below this count sort serially even at high thread counts: the
/// morsel dispatch would cost more than the comparisons it saves.
const PARALLEL_SORT_MIN_ROWS: usize = 4096;

fn sort_rows(
    rows: &mut Vec<Row>,
    keys: &mut Vec<Vec<Value>>,
    order_by: &[OrderItem],
    top_k: Option<usize>,
    threads: usize,
) {
    // The input row index breaks every tie, making the comparator a
    // *total* order. This pins down what SQL leaves unspecified on
    // purpose: with ties at the LIMIT boundary, the selected prefix is
    // exactly the stable-full-sort prefix — first-come-first-kept — so
    // serial top-k, parallel per-morsel top-k, and a full sort all agree
    // on the same rows in the same order at every thread count.
    let cmp = |&a: &usize, &b: &usize| {
        for (k, item) in order_by.iter().enumerate() {
            let ord = keys[a][k].sort_cmp(&keys[b][k]);
            let ord = if item.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.cmp(&b)
    };
    let mut idx: Vec<usize> = (0..rows.len()).collect();
    // Top-k: select the first k in O(n), then sort only those. The
    // unstable selection is safe because `cmp` is a total order (index
    // tie-break above) — the selected set is uniquely determined.
    if let Some(k) = top_k {
        if k > 0 && k < idx.len() {
            if threads > 1 && idx.len() >= PARALLEL_SORT_MIN_ROWS {
                // Parallel top-k: every morsel selects its own smallest k
                // candidates, then one final selection over the (≤ k per
                // morsel) survivors. Because the comparator totally orders
                // rows, the merged result is identical to the serial path.
                // (None when k is too large for per-morsel pruning to
                // help; fall through to the serial selection.)
                if let Some(candidates) = crate::exec_parallel::parallel_topk_candidates(
                    rows.len(),
                    k,
                    threads,
                    &cmp,
                ) {
                    idx = candidates;
                }
            }
            if k < idx.len() {
                idx.select_nth_unstable_by(k - 1, cmp);
                idx.truncate(k);
            }
        } else if k == 0 {
            idx.clear();
        }
    }
    idx.sort_by(cmp);
    // Rows are Arc handles and key cells are O(1) clones, so gathering into
    // the sorted order is pointer work.
    *rows = idx.iter().map(|&i| rows[i].clone()).collect();
    *keys = idx.iter().map(|&i| std::mem::take(&mut keys[i])).collect();
}

fn apply_limit_offset(
    rows: &mut Vec<Row>,
    stmt: &SelectStmt,
    ctx: &ExecCtx<'_>,
) -> Result<()> {
    let eval_count = |e: &Expr| -> Result<Option<i64>> {
        let v = eval(e, ctx, None)?;
        Ok(v.as_i64())
    };
    let offset = match &stmt.offset {
        Some(e) => eval_count(e)?.unwrap_or(0).max(0) as usize,
        None => 0,
    };
    if offset > 0 {
        if offset >= rows.len() {
            rows.clear();
        } else {
            rows.drain(..offset);
        }
    }
    if let Some(e) = &stmt.limit {
        if let Some(n) = eval_count(e)? {
            // Negative LIMIT means "no limit" in SQLite.
            if n >= 0 {
                rows.truncate(n as usize);
            }
        }
    }
    Ok(())
}

// ---- simple SELECT core --------------------------------------------------

/// Execute one SELECT core; returns the output relation plus one sort-key
/// vector per row for the given ORDER BY items (empty when no ORDER BY).
fn run_core(
    core: &SelectCore,
    order_by: &[OrderItem],
    scan_topk: Option<usize>,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<(Relation, Vec<Vec<Value>>)> {
    let plan = plan_from(core.from.as_ref(), core.filter.as_ref())?;
    let needed = needed_columns(core, order_by);
    let plan = optimize(plan, ctx.udfs, &ctx.optimizer, ctx.catalog, needed.as_deref())?;
    // The optimizer's parallelization rule annotates the plan root; the
    // same partition count then drives the SELECT-level operators
    // (projection, aggregation) over the materialized input.
    let partitions = match &plan {
        Plan::Parallel { partitions, .. } => *partitions,
        _ => 1,
    };
    let prefix = match scan_topk {
        Some(k) => pk_order_prefix(&plan, order_by, core, ctx, k)?,
        None => None,
    };
    let (input, cols) = match prefix {
        Some(rel) => (rel, None),
        None => exec_plan_with_columns(&plan, ctx, outer)?,
    };
    let cols = cols.as_ref();

    // Expand the projection into (expr, output column) pairs.
    let projection = expand_projection(&core.projection, &input.schema)?;

    let aggregated = !core.group_by.is_empty()
        || projection.iter().any(|(e, _)| e.contains_aggregate())
        || core.having.as_ref().is_some_and(|h| h.contains_aggregate());

    // ORDER BY / HAVING may reference projection aliases; rewrite them to
    // the underlying expressions (input columns win over aliases).
    let order_exprs: Vec<Expr> = order_by
        .iter()
        .map(|o| resolve_output_ref(&o.expr, &projection, &input.schema))
        .collect::<Result<_>>()?;
    let having = core
        .having
        .as_ref()
        .map(|h| resolve_output_ref(h, &projection, &input.schema))
        .transpose()?;

    if core.having.is_some() && !aggregated && core.group_by.is_empty() {
        return Err(Error::Semantic("HAVING requires GROUP BY or an aggregate".into()));
    }

    // Vectorize expensive calls in the projection / sort keys across the
    // whole input batch before the per-row loop runs (the aggregated path
    // batches inside `run_aggregate`, over groups).
    if ctx.optimizer.batch_expensive_udfs && !aggregated {
        let exprs = projection.iter().map(|(e, _)| e).chain(order_exprs.iter());
        if let Some(batch) = BatchableCalls::find(exprs, ctx.udfs) {
            batch.prefetch_rows(ctx, &input.schema, &input.rows, outer)?;
        }
    }

    let (mut rows, mut keys) = if aggregated {
        run_aggregate(
            core, &projection, having.as_ref(), &order_exprs, &input, cols, ctx, outer,
            partitions,
        )?
    } else {
        project_rows(&projection, &order_exprs, &input, ctx, outer, partitions)?
    };

    if core.distinct {
        distinct_in_place(&mut rows, &mut keys);
    }

    let schema = RelSchema::new(projection.into_iter().map(|(_, c)| c).collect());
    Ok((Relation { schema, rows }, keys))
}

/// `ORDER BY <full pk, all ASC> LIMIT k` over a bare table scan only
/// needs the first `offset + k` rows in primary-key order.
/// [`Table::ordered_pk`] already knows that order — `sort_cmp` with a
/// row-index tie-break, the same total order [`sort_rows`] uses — so the
/// scan materializes just the prefix instead of the whole table and the
/// later sort touches `k` rows, not all of them. Returns `None` whenever
/// any condition fails; the caller then runs the normal
/// scan → sort → limit pipeline. The ORDER BY must name the *full*
/// primary key: on a key prefix, `ordered_pk` tie-breaks equal prefixes
/// by the remaining key columns while the stable sort tie-breaks by row
/// index, and the two could keep different rows at the LIMIT boundary.
fn pk_order_prefix(
    plan: &Plan,
    order_by: &[OrderItem],
    core: &SelectCore,
    ctx: &ExecCtx<'_>,
    k: usize,
) -> Result<Option<Relation>> {
    // Gated with the planner's index-scan rule so SWAN_PAGER=0 reproduces
    // the legacy full-scan execution exactly.
    if !ctx.optimizer.index_scan || order_by.is_empty() {
        return Ok(None);
    }
    // A bare scan (possibly under a parallelization annotation) means no
    // surviving predicate; anything else must see every row.
    let scan = match plan {
        Plan::Parallel { input, .. } => &**input,
        other => other,
    };
    let Plan::Scan { table, qualifier } = scan else { return Ok(None) };
    // The prefix only matches the query when the output is a plain
    // projection of the sorted base rows.
    if !core.group_by.is_empty() || core.having.is_some() || core.distinct {
        return Ok(None);
    }
    let has_aggregate = core.projection.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        _ => false,
    });
    if has_aggregate {
        return Ok(None);
    }
    let t = ctx.catalog.get_required(table)?;
    if t.primary_key.is_empty() || order_by.len() != t.primary_key.len() {
        return Ok(None);
    }
    for (item, &col) in order_by.iter().zip(&t.primary_key) {
        if item.desc {
            return Ok(None);
        }
        let Expr::Column { table: q, name } = &item.expr else { return Ok(None) };
        if q.as_deref().is_some_and(|q| !q.eq_ignore_ascii_case(qualifier)) {
            return Ok(None);
        }
        if !name.eq_ignore_ascii_case(&t.columns[col].name) {
            return Ok(None);
        }
    }
    let Some(ord) = t.ordered_pk() else { return Ok(None) };
    let rows: Vec<Row> = ord.iter().take(k).map(|&i| t.rows[i as usize].clone()).collect();
    Ok(Some(Relation { schema: RelSchema::qualified(qualifier, t.column_names()), rows }))
}

/// The columns this SELECT reads from its FROM relation, for the
/// optimizer's join-output pruning. `None` — meaning "keep everything" —
/// on wildcards and on any subquery (whose correlated references
/// [`Expr::walk`] cannot see). Alias/ordinal ORDER BY references resolve
/// to projection expressions whose columns are already collected; raw
/// names are included as-is, which at worst over-keeps.
fn needed_columns(core: &SelectCore, order_by: &[OrderItem]) -> Option<Vec<NeededCol>> {
    let mut out = Vec::new();
    let mut add = |e: &Expr| -> Option<()> {
        let mut cols = crate::optimizer::expr_columns(e)?;
        out.append(&mut cols);
        Some(())
    };
    for item in &core.projection {
        match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => return None,
            SelectItem::Expr { expr, .. } => add(expr)?,
        }
    }
    for g in &core.group_by {
        add(g)?;
    }
    if let Some(h) = &core.having {
        add(h)?;
    }
    for o in order_by {
        add(&o.expr)?;
    }
    Some(out)
}

/// The non-aggregated projection loop.
///
/// Fast paths, checked in order:
/// 1. the projection is exactly the input schema → the input rows are
///    **shared** unchanged (zero work per row);
/// 2. every projected item is a plain input column → cells are gathered by
///    index (O(1) clones, no expression evaluation);
/// 3. otherwise each expression is evaluated per row against a reusable
///    [`RowCtx`].
#[allow(clippy::too_many_arguments)]
fn project_rows(
    projection: &[(Expr, ColRef)],
    order_exprs: &[Expr],
    input: &Relation,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
    partitions: usize,
) -> Result<RowsAndKeys> {
    let col_indices: Option<Vec<usize>> = projection
        .iter()
        .map(|(e, _)| match e {
            Expr::Column { table, name } => {
                input.schema.resolve(table.as_deref(), name).ok().flatten()
            }
            _ => None,
        })
        .collect();

    // Sort keys: either an ordinal into the projected row or an expression
    // over the input row (bound once, evaluated per row).
    let order_exprs: Vec<Expr> =
        order_exprs.iter().map(|e| bind_columns(e, &input.schema)).collect();
    let build_keys = |out: &[Value], rc: &RowCtx<'_>| -> Result<Vec<Value>> {
        output_sort_keys(&order_exprs, projection.len(), out, &mut |e| eval(e, ctx, Some(rc)))
    };

    let mut keys = Vec::with_capacity(if order_exprs.is_empty() { 0 } else { input.rows.len() });

    if let Some(idxs) = col_indices {
        let identity =
            idxs.len() == input.schema.len() && idxs.iter().enumerate().all(|(i, &j)| i == j);
        if identity {
            // SELECT * (or an exact column echo): share the rows wholesale.
            if !order_exprs.is_empty() {
                for row in &input.rows {
                    let rc = RowCtx { schema: &input.schema, row, outer };
                    keys.push(build_keys(row, &rc)?);
                }
            }
            return Ok((input.rows.clone(), keys));
        }
        // Column subset/permutation: gather cells by index, one shared
        // allocation per row.
        let mut rows: Vec<Row> = Vec::with_capacity(input.rows.len());
        for row in &input.rows {
            let out: Row = idxs.iter().map(|&i| row[i].clone()).collect();
            if !order_exprs.is_empty() {
                let rc = RowCtx { schema: &input.schema, row, outer };
                keys.push(build_keys(&out, &rc)?);
            }
            rows.push(out);
        }
        return Ok((rows, keys));
    }

    // General path: bind every projected expression to the input schema
    // once, then evaluate per row with direct index loads. With a parallel
    // annotation the rows are evaluated morsel-parallel (workers share the
    // statement's subquery cache); morsel-order concatenation keeps the
    // output order identical to the serial loop.
    let bound: Vec<Expr> = projection
        .iter()
        .map(|(e, _)| bind_columns(e, &input.schema))
        .collect();
    let parallel = partitions > 1 && input.rows.len() > 1;
    if parallel {
        let chunks = crate::exec_parallel::try_morsels(
            input.rows.len(),
            partitions,
            ctx,
            |range, wctx| {
                let mut rows = Vec::with_capacity(range.len());
                let mut keys = Vec::new();
                for row in &input.rows[range] {
                    let rc = RowCtx { schema: &input.schema, row, outer };
                    let mut out = Vec::with_capacity(projection.len());
                    for e in &bound {
                        out.push(eval(e, wctx, Some(&rc))?);
                    }
                    if !order_exprs.is_empty() {
                        // `order_exprs` was bound to the input schema above.
                        keys.push(output_sort_keys(&order_exprs, projection.len(), &out, &mut |e| {
                            eval(e, wctx, Some(&rc))
                        })?);
                    }
                    rows.push(out.into());
                }
                Ok((rows, keys))
            },
        )?;
        let mut rows = Vec::with_capacity(input.rows.len());
        for (r, k) in chunks {
            rows.extend(r);
            keys.extend(k);
        }
        return Ok((rows, keys));
    }
    let mut rows = Vec::with_capacity(input.rows.len());
    for (i, row) in input.rows.iter().enumerate() {
        if i % CANCEL_CHECK_ROWS == CANCEL_CHECK_ROWS - 1 {
            ctx.check_cancel()?;
        }
        let rc = RowCtx { schema: &input.schema, row, outer };
        let mut out = Vec::with_capacity(projection.len());
        for e in &bound {
            out.push(eval(e, ctx, Some(&rc))?);
        }
        if !order_exprs.is_empty() {
            keys.push(build_keys(&out, &rc)?);
        }
        rows.push(out.into());
    }
    Ok((rows, keys))
}

/// Expand wildcards and name each projected column.
fn expand_projection(
    items: &[SelectItem],
    input: &RelSchema,
) -> Result<Vec<(Expr, ColRef)>> {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            SelectItem::Wildcard => {
                if input.is_empty() {
                    return Err(Error::Semantic("SELECT * with no FROM clause".into()));
                }
                for c in &input.cols {
                    out.push((
                        Expr::Column { table: c.qualifier.clone(), name: c.name.clone() },
                        c.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut any = false;
                for c in &input.cols {
                    if c.qualifier.as_deref().is_some_and(|x| x.eq_ignore_ascii_case(q)) {
                        out.push((
                            Expr::Column { table: c.qualifier.clone(), name: c.name.clone() },
                            c.clone(),
                        ));
                        any = true;
                    }
                }
                if !any {
                    return Err(Error::Unresolved(format!("{q}.*")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.clone(),
                    None => match expr {
                        Expr::Column { name, .. } => name.clone(),
                        other => crate::display::expr_to_sql(other),
                    },
                };
                let qualifier = match (alias, expr) {
                    (None, Expr::Column { table, .. }) => table.clone(),
                    _ => None,
                };
                out.push((expr.clone(), ColRef::new(qualifier, name)));
            }
        }
    }
    Ok(out)
}

/// Rewrite a reference to a projection alias or ordinal into the underlying
/// expression; leave genuine input-column references untouched.
fn resolve_output_ref(
    expr: &Expr,
    projection: &[(Expr, ColRef)],
    input: &RelSchema,
) -> Result<Expr> {
    if let Expr::Column { table: None, name } = expr {
        // Input columns shadow aliases (SQL standard).
        if input.resolve(None, name).unwrap_or(None).is_none() {
            if let Some((e, _)) = projection
                .iter()
                .find(|(_, c)| c.name.eq_ignore_ascii_case(name))
            {
                return Ok(e.clone());
            }
        }
    }
    Ok(expr.clone())
}

fn distinct_in_place(rows: &mut Vec<Row>, keys: &mut Vec<Vec<Value>>) {
    let mut seen = set_with_capacity(rows.len());
    let mut kept_rows = Vec::with_capacity(rows.len());
    let mut kept_keys = Vec::with_capacity(keys.len());
    for (i, row) in rows.drain(..).enumerate() {
        if seen.insert(row_key(&row)) {
            if !keys.is_empty() {
                kept_keys.push(std::mem::take(&mut keys[i]));
            }
            kept_rows.push(row);
        }
    }
    *rows = kept_rows;
    *keys = kept_keys;
}

// ---- aggregation ----------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn run_aggregate(
    core: &SelectCore,
    projection: &[(Expr, ColRef)],
    having: Option<&Expr>,
    order_exprs: &[Expr],
    input: &Relation,
    cols: Option<&ColInput>,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
    partitions: usize,
) -> Result<RowsAndKeys> {
    // Partition input rows into groups, preserving first-seen order. The
    // grouping expressions are bound to the input schema once up front.
    //
    // With a parallel annotation this is **two-phase**: worker threads
    // evaluate every row's grouping key over thread-local morsels, then a
    // serial merge pass partitions the rows using the precomputed keys.
    // The merge walks rows in input order, so group numbering (and thus
    // the unordered output order) is identical to the serial loop.
    let mut group_index: FxHashMap<Vec<GroupKey>, usize> = FxHashMap::default();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    if core.group_by.is_empty() {
        groups.push((0..input.rows.len()).collect());
    } else {
        // Expensive calls in the grouping keys evaluate once per input
        // row: vectorize them before the key loop runs.
        if ctx.optimizer.batch_expensive_udfs {
            if let Some(batch) = BatchableCalls::find(core.group_by.iter(), ctx.udfs) {
                batch.prefetch_rows(ctx, &input.schema, &input.rows, outer)?;
            }
        }
        let bound_keys: Vec<Expr> =
            core.group_by.iter().map(|g| bind_columns(g, &input.schema)).collect();
        // Columnar key path: every grouping key is a plain column of a
        // scan-backed input — keys come straight from the typed columns
        // (no row deref, no eval), walking rows in order so first-seen
        // group numbering is identical to the serial loop at every
        // thread count.
        let columnar_keys: Option<Vec<&crate::columnar::ColumnVec>> = cols.and_then(|ci| {
            bound_keys
                .iter()
                .map(|g| match g {
                    Expr::BoundColumn(i) => ci.set.columns.get(*i),
                    _ => None,
                })
                .collect()
        });
        let parallel_keys = partitions > 1 && input.rows.len() > 1;
        if let (Some(kcols), Some(ci)) = (columnar_keys, cols) {
            for ri in 0..input.rows.len() {
                if ri % CANCEL_CHECK_ROWS == CANCEL_CHECK_ROWS - 1 {
                    ctx.check_cancel()?;
                }
                let src = match &ci.sel {
                    Some(sel) => sel[ri] as usize,
                    None => ri,
                };
                let key: Vec<GroupKey> = kcols.iter().map(|c| c.group_key_at(src)).collect();
                let gi = *group_index.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gi].push(ri);
            }
        } else if parallel_keys {
            // Phase 1 (parallel): per-morsel key computation.
            let key_chunks = crate::exec_parallel::try_morsels(
                input.rows.len(),
                partitions,
                ctx,
                |range, wctx| {
                    let mut keys = Vec::with_capacity(range.len());
                    for row in &input.rows[range] {
                        let rc = RowCtx { schema: &input.schema, row, outer };
                        let mut key = Vec::with_capacity(bound_keys.len());
                        for g in &bound_keys {
                            key.push(eval(g, wctx, Some(&rc))?.group_key());
                        }
                        keys.push(key);
                    }
                    Ok(keys)
                },
            )?;
            // Phase 2 (serial merge): first-seen group order == input order.
            let mut ri = 0;
            for chunk in key_chunks {
                for key in chunk {
                    let gi = *group_index.entry(key).or_insert_with(|| {
                        groups.push(Vec::new());
                        groups.len() - 1
                    });
                    groups[gi].push(ri);
                    ri += 1;
                }
            }
        } else {
            for (ri, row) in input.rows.iter().enumerate() {
                if ri % CANCEL_CHECK_ROWS == CANCEL_CHECK_ROWS - 1 {
                    ctx.check_cancel()?;
                }
                let rc = RowCtx { schema: &input.schema, row, outer };
                let mut key = Vec::with_capacity(bound_keys.len());
                for g in &bound_keys {
                    key.push(eval(g, ctx, Some(&rc))?.group_key());
                }
                let gi = *group_index.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gi].push(ri);
            }
        }
    }

    // A row of NULLs stands in for column references over an empty group
    // (only possible for the implicit single group of a table-less or
    // fully-filtered aggregate).
    let null_row: Vec<Value> = vec![Value::Null; input.schema.len()];

    // Vectorize the HAVING predicate's expensive calls: sites inside
    // aggregate arguments see every member row, sites outside see one
    // representative row per group.
    if ctx.optimizer.batch_expensive_udfs {
        if let Some(batch) = BatchableCalls::find(having, ctx.udfs) {
            batch.prefetch_scope(true, ctx, &mut |collect| {
                for row in &input.rows {
                    collect(&RowCtx { schema: &input.schema, row, outer })?;
                }
                Ok(())
            })?;
            batch.prefetch_scope(false, ctx, &mut |collect| {
                for members in &groups {
                    if let Some(&i) = members.first() {
                        collect(&RowCtx { schema: &input.schema, row: &input.rows[i], outer })?;
                    }
                }
                Ok(())
            })?;
        }
    }

    // Apply HAVING before any output-site prefetch: batching must not pay
    // for projection/sort-key calls on groups HAVING rejects (the per-row
    // path skips their output expressions entirely). Groups are
    // independent, so with a parallel annotation the per-group predicate
    // (aggregates included) evaluates morsel-parallel over the groups.
    let survivors: Vec<&Vec<usize>> = match having {
        None => groups.iter().collect(),
        Some(h) if partitions > 1 && groups.len() > 1 => {
            let verdicts = crate::exec_parallel::try_morsels(
                groups.len(),
                partitions,
                ctx,
                |range, wctx| {
                    let mut keep = Vec::with_capacity(range.len());
                    for members in &groups[range] {
                        let rep: &[Value] = match members.first() {
                            Some(&i) => &input.rows[i],
                            None => &null_row,
                        };
                        let rep_ctx = RowCtx { schema: &input.schema, row: rep, outer };
                        keep.push(
                            materialize_and_eval(h, members, input, cols, wctx, &rep_ctx)?
                                .truthiness()
                                == Some(true),
                        );
                    }
                    Ok(keep)
                },
            )?;
            groups
                .iter()
                .zip(verdicts.into_iter().flatten())
                .filter(|(_, keep)| *keep)
                .map(|(g, _)| g)
                .collect()
        }
        Some(h) => {
            let mut out = Vec::new();
            for members in &groups {
                let rep: &[Value] = match members.first() {
                    Some(&i) => &input.rows[i],
                    None => &null_row,
                };
                let rep_ctx = RowCtx { schema: &input.schema, row: rep, outer };
                if materialize_and_eval(h, members, input, cols, ctx, &rep_ctx)?.truthiness()
                    == Some(true)
                {
                    out.push(members);
                }
            }
            out
        }
    };

    // Vectorize the output expressions over the surviving groups only.
    if ctx.optimizer.batch_expensive_udfs {
        let exprs = projection.iter().map(|(e, _)| e).chain(order_exprs.iter());
        if let Some(batch) = BatchableCalls::find(exprs, ctx.udfs) {
            batch.prefetch_scope(true, ctx, &mut |collect| {
                for members in &survivors {
                    for &ri in members.iter() {
                        collect(&RowCtx { schema: &input.schema, row: &input.rows[ri], outer })?;
                    }
                }
                Ok(())
            })?;
            batch.prefetch_scope(false, ctx, &mut |collect| {
                for members in &survivors {
                    if let Some(&i) = members.first() {
                        collect(&RowCtx { schema: &input.schema, row: &input.rows[i], outer })?;
                    }
                }
                Ok(())
            })?;
        }
    }

    // Per-group output: aggregates and the residual projection evaluate
    // per surviving group — independent work, morsel-parallel over the
    // groups.
    let parallel_out = partitions > 1 && survivors.len() > 1;
    if parallel_out {
        let chunks = crate::exec_parallel::try_morsels(
            survivors.len(),
            partitions,
            ctx,
            |range, wctx| {
                let mut rows: Vec<Row> = Vec::with_capacity(range.len());
                let mut keys = Vec::new();
                for members in &survivors[range] {
                    let rep: &[Value] = match members.first() {
                        Some(&i) => &input.rows[i],
                        None => &null_row,
                    };
                    let rep_ctx = RowCtx { schema: &input.schema, row: rep, outer };
                    let mut out = Vec::with_capacity(projection.len());
                    for (e, _) in projection {
                        out.push(materialize_and_eval(e, members, input, cols, wctx, &rep_ctx)?);
                    }
                    if !order_exprs.is_empty() {
                        keys.push(output_sort_keys(order_exprs, projection.len(), &out, &mut |e| {
                            materialize_and_eval(e, members, input, cols, wctx, &rep_ctx)
                        })?);
                    }
                    rows.push(out.into());
                }
                Ok((rows, keys))
            },
        )?;
        let mut rows = Vec::with_capacity(survivors.len());
        let mut keys = Vec::new();
        for (r, k) in chunks {
            rows.extend(r);
            keys.extend(k);
        }
        return Ok((rows, keys));
    }

    let mut rows: Vec<Row> = Vec::with_capacity(survivors.len());
    let mut keys = Vec::new();
    for members in survivors {
        let rep: &[Value] = match members.first() {
            Some(&i) => &input.rows[i],
            None => &null_row,
        };
        let rep_ctx = RowCtx { schema: &input.schema, row: rep, outer };

        let mut out = Vec::with_capacity(projection.len());
        for (e, _) in projection {
            out.push(materialize_and_eval(e, members, input, cols, ctx, &rep_ctx)?);
        }
        if !order_exprs.is_empty() {
            keys.push(output_sort_keys(order_exprs, projection.len(), &out, &mut |e| {
                materialize_and_eval(e, members, input, cols, ctx, &rep_ctx)
            })?);
        }
        rows.push(out.into());
    }
    Ok((rows, keys))
}

/// Replace aggregate calls in `expr` with their computed literals, then
/// evaluate the residual expression on the group's representative row.
fn materialize_and_eval(
    expr: &Expr,
    members: &[usize],
    input: &Relation,
    cols: Option<&ColInput>,
    ctx: &ExecCtx<'_>,
    rep_ctx: &RowCtx<'_>,
) -> Result<Value> {
    let rewritten = replace_aggregates(expr, members, input, cols, ctx, rep_ctx)?;
    eval(&rewritten, ctx, Some(rep_ctx))
}

fn replace_aggregates(
    expr: &Expr,
    members: &[usize],
    input: &Relation,
    cols: Option<&ColInput>,
    ctx: &ExecCtx<'_>,
    rep_ctx: &RowCtx<'_>,
) -> Result<Expr> {
    Ok(match expr {
        Expr::Function { name, args, distinct, star } if is_aggregate(name) => {
            Expr::Literal(compute_aggregate(
                name, args, *distinct, *star, members, input, cols, ctx, rep_ctx,
            )?)
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(replace_aggregates(left, members, input, cols, ctx, rep_ctx)?),
            right: Box::new(replace_aggregates(right, members, input, cols, ctx, rep_ctx)?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(replace_aggregates(expr, members, input, cols, ctx, rep_ctx)?),
        },
        Expr::Function { name, args, distinct, star } => Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| replace_aggregates(a, members, input, cols, ctx, rep_ctx))
                .collect::<Result<_>>()?,
            distinct: *distinct,
            star: *star,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(replace_aggregates(expr, members, input, cols, ctx, rep_ctx)?),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated, glob } => Expr::Like {
            expr: Box::new(replace_aggregates(expr, members, input, cols, ctx, rep_ctx)?),
            pattern: Box::new(replace_aggregates(pattern, members, input, cols, ctx, rep_ctx)?),
            negated: *negated,
            glob: *glob,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(replace_aggregates(expr, members, input, cols, ctx, rep_ctx)?),
            low: Box::new(replace_aggregates(low, members, input, cols, ctx, rep_ctx)?),
            high: Box::new(replace_aggregates(high, members, input, cols, ctx, rep_ctx)?),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(replace_aggregates(expr, members, input, cols, ctx, rep_ctx)?),
            list: list
                .iter()
                .map(|e| replace_aggregates(e, members, input, cols, ctx, rep_ctx))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Case { operand, branches, else_expr } => Expr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(replace_aggregates(o, members, input, cols, ctx, rep_ctx)?)),
                None => None,
            },
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((
                        replace_aggregates(w, members, input, cols, ctx, rep_ctx)?,
                        replace_aggregates(t, members, input, cols, ctx, rep_ctx)?,
                    ))
                })
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(replace_aggregates(e, members, input, cols, ctx, rep_ctx)?)),
                None => None,
            },
        },
        Expr::Cast { expr, type_name } => Expr::Cast {
            expr: Box::new(replace_aggregates(expr, members, input, cols, ctx, rep_ctx)?),
            type_name: type_name.clone(),
        },
        // Leaves and subqueries (own scope) pass through.
        other => other.clone(),
    })
}

#[allow(clippy::too_many_arguments)]
fn compute_aggregate(
    name: &str,
    args: &[Expr],
    distinct: bool,
    star: bool,
    members: &[usize],
    input: &Relation,
    cols: Option<&ColInput>,
    ctx: &ExecCtx<'_>,
    rep_ctx: &RowCtx<'_>,
) -> Result<Value> {
    let upper = name.to_ascii_uppercase();

    if star {
        if upper != "COUNT" {
            return Err(Error::Semantic(format!("{name}(*) is not valid")));
        }
        return Ok(Value::Integer(members.len() as i64));
    }

    // Gather the argument values per group row (NULLs excluded, per SQL).
    // The argument is bound to the input schema once per group.
    let arg = args
        .first()
        .ok_or_else(|| Error::Semantic(format!("{name}() requires an argument")))?;
    let arg = bind_columns(arg, &input.schema);
    // Columnar fast path: a plain column argument over a scan-backed
    // input runs as a typed loop over the column — no row deref, no
    // per-cell eval, no gather vector. DISTINCT, GROUP_CONCAT and
    // type-unstable (Mixed) columns take the row loop below.
    if !distinct {
        if let (Some(ci), Expr::BoundColumn(j), Some(kind)) =
            (cols, &arg, AggKernel::from_name(&upper))
        {
            if let Some(col) = ci.set.columns.get(*j) {
                let result = match &ci.sel {
                    None => crate::columnar::eval_aggregate(kind, col, members),
                    Some(sel) => {
                        let mapped: Vec<usize> =
                            members.iter().map(|&ri| sel[ri] as usize).collect();
                        crate::columnar::eval_aggregate(kind, col, &mapped)
                    }
                };
                if let Some(v) = result {
                    return v;
                }
            }
        }
    }
    let mut vals = Vec::with_capacity(members.len());
    for &ri in members {
        let rc = RowCtx { schema: &input.schema, row: &input.rows[ri], outer: rep_ctx.outer };
        let v = eval(&arg, ctx, Some(&rc))?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    if distinct {
        let mut seen = std::collections::HashSet::new();
        vals.retain(|v| seen.insert(v.group_key()));
    }

    match upper.as_str() {
        "COUNT" => Ok(Value::Integer(vals.len() as i64)),
        "SUM" | "TOTAL" => {
            if vals.is_empty() {
                return Ok(if upper == "TOTAL" { Value::Real(0.0) } else { Value::Null });
            }
            if upper == "SUM" && vals.iter().all(|v| matches!(v, Value::Integer(_))) {
                let mut acc: i64 = 0;
                for v in &vals {
                    if let Value::Integer(i) = v {
                        acc = acc
                            .checked_add(*i)
                            .ok_or_else(|| Error::Arithmetic("integer overflow in SUM".into()))?;
                    }
                }
                Ok(Value::Integer(acc))
            } else {
                let mut acc = 0.0;
                for v in &vals {
                    acc += v.as_f64().unwrap_or(0.0);
                }
                Ok(Value::Real(acc))
            }
        }
        "AVG" => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let sum: f64 = vals.iter().map(|v| v.as_f64().unwrap_or(0.0)).sum();
            Ok(Value::Real(sum / vals.len() as f64))
        }
        "MIN" => Ok(vals
            .into_iter()
            .min_by(|a, b| a.sort_cmp(b))
            .unwrap_or(Value::Null)),
        "MAX" => Ok(vals
            .into_iter()
            .max_by(|a, b| a.sort_cmp(b))
            .unwrap_or(Value::Null)),
        "GROUP_CONCAT" => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let sep = match args.get(1) {
                Some(e) => eval(e, ctx, Some(rep_ctx))?.render(),
                None => ",".to_string(),
            };
            Ok(Value::text(
                vals.iter().map(Value::render).collect::<Vec<_>>().join(&sep),
            ))
        }
        other => Err(Error::Unresolved(format!("aggregate function {other}"))),
    }
}

// ---- plan execution --------------------------------------------------------

/// Materialize a plan into a relation.
pub fn exec_plan(
    plan: &Plan,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Relation> {
    // Per-plan-node cooperative checkpoint: a cancelled/expired statement
    // stops before materializing the next operator's output.
    ctx.check_cancel()?;
    match plan {
        Plan::Empty => Ok(Relation { schema: RelSchema::default(), rows: vec![Vec::new().into()] }),

        Plan::Scan { table, qualifier } => {
            let t = ctx.catalog.get_required(table)?;
            // The whole scan is refcount bumps: stored rows are shared, not
            // deep-copied.
            Ok(Relation {
                schema: RelSchema::qualified(qualifier, t.column_names()),
                rows: t.rows.clone(),
            })
        }

        Plan::IndexScan { table, qualifier, bounds } => {
            let t = ctx.catalog.get_required(table)?;
            // Emit rows in ascending row order so the output is
            // byte-identical to the full scan the filter above would
            // otherwise read (`pk_range` already sorts its matches).
            let rows: Vec<Row> = match bounds {
                IndexBounds::Point { key } => {
                    t.pk_row_index(key).map(|i| t.rows[i as usize].clone()).into_iter().collect()
                }
                IndexBounds::Range { lower, upper } => {
                    let lo = lower.as_ref().map(|(v, incl)| (v, *incl));
                    let hi = upper.as_ref().map(|(v, incl)| (v, *incl));
                    match t.pk_range(lo, hi) {
                        Some(sel) => {
                            sel.iter().map(|&i| t.rows[i as usize].clone()).collect()
                        }
                        // No primary key (dropped since planning): fall
                        // back to the full scan the filter expects.
                        None => t.rows.clone(),
                    }
                }
            };
            Ok(Relation { schema: RelSchema::qualified(qualifier, t.column_names()), rows })
        }

        Plan::Derived { query, qualifier } => {
            let inner = run_select(query, ctx, outer)?;
            // Re-qualify every output column with the derived-table alias.
            let cols = inner
                .schema
                .cols
                .into_iter()
                .map(|c| ColRef::new(Some(qualifier.clone()), c.name))
                .collect();
            Ok(Relation { schema: RelSchema::new(cols), rows: inner.rows })
        }

        Plan::Filter { input, predicate } => match columnar_filter(input, predicate, ctx)? {
            Some((rel, _)) => Ok(rel),
            None => {
                let mut rel = exec_plan(input, ctx, outer)?;
                filter_relation(&mut rel, predicate, ctx, outer)?;
                Ok(rel)
            }
        },

        Plan::Parallel { input, partitions } => {
            crate::exec_parallel::exec_parallel(input, *partitions, ctx, outer)
        }

        Plan::Batch { input, calls } => {
            let rel = exec_plan(input, ctx, outer)?;
            // Vectorize the marked expensive calls across the whole input
            // batch; the filter above this node then evaluates per row
            // against the prefetched results.
            if let Some(batch) = BatchableCalls::find(calls.iter(), ctx.udfs) {
                batch.prefetch_rows(ctx, &rel.schema, &rel.rows, outer)?;
            }
            Ok(rel)
        }

        Plan::Permute { input, mapping } => {
            let rel = exec_plan(input, ctx, outer)?;
            let schema = RelSchema::new(
                mapping.iter().map(|&i| rel.schema.cols[i].clone()).collect(),
            );
            let rows = rel
                .rows
                .iter()
                .map(|r| mapping.iter().map(|&i| r[i].clone()).collect::<Row>())
                .collect();
            Ok(Relation { schema, rows })
        }

        Plan::Join { left, right, kind, on, emit } => {
            let l = exec_source(left, ctx, outer)?;
            let r = exec_source(right, ctx, outer)?;
            exec_join(&l, &r, *kind, on.as_ref(), emit.as_deref(), ctx, outer)
        }
    }
}

/// Columnar scan state accompanying a [`Relation`] whose rows came
/// straight from a base-table scan, possibly filtered: the table's cached
/// column set plus the selection that produced the relation (`None` =
/// every row, in order). Relation row `k` is column-set row
/// `sel[k]` (or `k`), which lets aggregation read columns instead of rows.
pub(crate) struct ColInput {
    pub(crate) set: Arc<ColumnSet>,
    pub(crate) sel: Option<Vec<u32>>,
}

/// Try the vectorized filter path for a `Filter` directly over a base-table
/// `Scan`: reuse the table's cached column set, run the predicate kernels
/// over every row, and gather the surviving rows as shared-row clones —
/// byte-identical to the serial retain loop, in the same order. Returns
/// `None` when the shape or the predicate is outside kernel coverage; the
/// caller then runs the row path, which stays authoritative.
pub(crate) fn columnar_filter(
    input: &Plan,
    predicate: &Expr,
    ctx: &ExecCtx<'_>,
) -> Result<Option<(Relation, ColInput)>> {
    if !ctx.optimizer.columnar {
        return Ok(None);
    }
    let Plan::Scan { table, qualifier } = input else {
        return Ok(None);
    };
    let t = ctx.catalog.get_required(table)?;
    let schema = RelSchema::qualified(qualifier, t.column_names());
    let bound = bind_columns(predicate, &schema);
    let set = t.column_set();
    let Some(verdict) = crate::columnar::eval_predicate(&bound, &set) else {
        return Ok(None);
    };
    ctx.check_cancel()?;
    let sel = verdict.selected();
    let rows = sel.iter().map(|&i| t.rows[i as usize].clone()).collect();
    Ok(Some((Relation { schema, rows }, ColInput { set, sel: Some(sel) })))
}

/// Execute a plan, also returning the columnar scan state when the plan is
/// a bare scan or a kernel-supported filter over one (optionally under the
/// root `Parallel` annotation) — the shapes whose output rows map 1:1 onto
/// a cached column set. `run_core` hands the state to aggregation, which
/// then evaluates GROUP BY keys and aggregate loops over columns.
fn exec_plan_with_columns(
    plan: &Plan,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<(Relation, Option<ColInput>)> {
    if ctx.optimizer.columnar {
        match plan {
            Plan::Scan { table, qualifier } => {
                let t = ctx.catalog.get_required(table)?;
                let rel = Relation {
                    schema: RelSchema::qualified(qualifier, t.column_names()),
                    rows: t.rows.clone(),
                };
                return Ok((rel, Some(ColInput { set: t.column_set(), sel: None })));
            }
            Plan::Filter { input, predicate } => {
                if let Some((rel, ci)) = columnar_filter(input, predicate, ctx)? {
                    return Ok((rel, Some(ci)));
                }
            }
            Plan::Parallel { input, .. } => match &**input {
                Plan::Scan { .. } => return exec_plan_with_columns(input, ctx, outer),
                Plan::Filter { input: finput, predicate } => {
                    if let Some((rel, ci)) = columnar_filter(finput, predicate, ctx)? {
                        return Ok((rel, Some(ci)));
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }
    Ok((exec_plan(plan, ctx, outer)?, None))
}

/// The serial in-place batch filter: survivors are never cloned or moved
/// into a fresh vector, one RowCtx shape serves every row, and the
/// predicate's columns are bound to indices up front. Shared by the
/// serial executor and the parallel executor's small-input/unsafe-
/// predicate fallback.
pub(crate) fn filter_relation(
    rel: &mut Relation,
    predicate: &Expr,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<()> {
    let predicate = bind_columns(predicate, &rel.schema);
    let mut rows = std::mem::take(&mut rel.rows);
    let schema = &rel.schema;
    let mut first_err: Option<Error> = None;
    let mut since_check = 0usize;
    rows.retain(|row| {
        if first_err.is_some() {
            return false;
        }
        since_check += 1;
        if since_check >= CANCEL_CHECK_ROWS {
            since_check = 0;
            if let Err(e) = ctx.check_cancel() {
                first_err = Some(e);
                return false;
            }
        }
        let rc = RowCtx { schema, row, outer };
        match eval(&predicate, ctx, Some(&rc)) {
            Ok(v) => v.truthiness() == Some(true),
            Err(e) => {
                first_err = Some(e);
                false
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    rel.rows = rows;
    Ok(())
}

/// A join input: scans are *borrowed* straight out of the catalog (zero
/// refcount traffic — the join only reads them), everything else is
/// materialized through [`exec_plan`].
pub(crate) enum JoinInput<'a> {
    Borrowed { schema: RelSchema, rows: &'a [Row], cols: Option<Arc<ColumnSet>> },
    Owned(Relation),
}

impl JoinInput<'_> {
    pub(crate) fn schema(&self) -> &RelSchema {
        match self {
            JoinInput::Borrowed { schema, .. } => schema,
            JoinInput::Owned(rel) => &rel.schema,
        }
    }

    pub(crate) fn rows(&self) -> &[Row] {
        match self {
            JoinInput::Borrowed { rows, .. } => rows,
            JoinInput::Owned(rel) => &rel.rows,
        }
    }

    /// The table's cached column set, for scan inputs under the columnar
    /// toggle: join keys then come from the key column directly instead
    /// of dereferencing each row.
    pub(crate) fn cols(&self) -> Option<&Arc<ColumnSet>> {
        match self {
            JoinInput::Borrowed { cols, .. } => cols.as_ref(),
            JoinInput::Owned(_) => None,
        }
    }

    /// The single key column for vectorized key extraction, when this
    /// input is a scan with a cached column set and the key side is one
    /// direct column index.
    pub(crate) fn key_column(&self, key: &KeySide) -> Option<&crate::columnar::ColumnVec> {
        match (self.cols(), key) {
            (Some(set), KeySide::Direct(idxs)) => match idxs[..] {
                [i] => set.columns.get(i),
                _ => None,
            },
            _ => None,
        }
    }
}

pub(crate) fn exec_source<'a>(
    plan: &Plan,
    ctx: &ExecCtx<'a>,
    outer: Option<&RowCtx<'_>>,
) -> Result<JoinInput<'a>> {
    match plan {
        Plan::Scan { table, qualifier } => {
            let t = ctx.catalog.get_required(table)?;
            Ok(JoinInput::Borrowed {
                schema: RelSchema::qualified(qualifier, t.column_names()),
                rows: &t.rows,
                cols: ctx.optimizer.columnar.then(|| t.column_set()),
            })
        }
        other => Ok(JoinInput::Owned(exec_plan(other, ctx, outer)?)),
    }
}

/// The emission shape of a join: either whole combined rows or a pruned
/// gather of `indices` from the conceptual (left + right) row. Width-zero
/// pruning re-shares a single empty row — no per-row allocation at all.
pub(crate) struct Emission {
    indices: Option<Vec<usize>>,
    left_width: usize,
    empty: Row,
}

impl Emission {
    pub(crate) fn new(indices: Option<&[usize]>, left_width: usize) -> Self {
        Emission {
            indices: indices.map(|i| i.to_vec()),
            left_width,
            empty: Vec::new().into(),
        }
    }

    /// Emit the (possibly pruned) combined row for a match.
    #[inline]
    pub(crate) fn matched(&self, lrow: &[Value], rrow: &[Value]) -> Row {
        match &self.indices {
            None => combine(lrow, rrow),
            Some(idx) if idx.is_empty() => self.empty.clone(),
            Some(idx) => idx
                .iter()
                .map(|&i| {
                    if i < self.left_width {
                        lrow[i].clone()
                    } else {
                        rrow[i - self.left_width].clone()
                    }
                })
                .collect(),
        }
    }

    /// Emit a LEFT-join non-match: left cells, NULL-padded right.
    #[inline]
    pub(crate) fn unmatched(&self, lrow: &[Value], right_width: usize) -> Row {
        match &self.indices {
            None => pad_right(lrow, right_width),
            Some(idx) if idx.is_empty() => self.empty.clone(),
            Some(idx) => idx
                .iter()
                .map(|&i| {
                    if i < self.left_width {
                        lrow[i].clone()
                    } else {
                        Value::Null
                    }
                })
                .collect(),
        }
    }
}

pub(crate) fn exec_join(
    left: &JoinInput<'_>,
    right: &JoinInput<'_>,
    kind: PlanJoinKind,
    on: Option<&Expr>,
    emit: Option<&[usize]>,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Relation> {
    // Residual predicates always evaluate against the full combined
    // schema; the output relation carries only the emitted columns.
    let full_schema = left.schema().join(right.schema());
    let out_schema = match emit {
        None => full_schema.clone(),
        Some(idx) => RelSchema::new(idx.iter().map(|&i| full_schema.cols[i].clone()).collect()),
    };
    let emission = Emission::new(emit, left.schema().len());

    // Try to split the ON predicate into hashable equi-pairs + residual.
    let (equi, residual) = match on {
        Some(pred) if kind != PlanJoinKind::Cross => {
            split_equi_join(pred, left.schema(), right.schema())
        }
        Some(pred) => (Vec::new(), Some(pred.clone())),
        None => (Vec::new(), None),
    };

    let rows = if equi.is_empty() {
        nested_loop_join(left, right, kind, residual.as_ref(), &full_schema, &emission, ctx, outer)?
    } else {
        hash_join(left, right, kind, &equi, residual.as_ref(), &full_schema, &emission, ctx, outer)?
    };
    Ok(Relation { schema: out_schema, rows })
}

/// Extract `l_expr = r_expr` conjuncts where each side is computable from
/// one input. Returns (pairs, residual predicate).
pub(crate) fn split_equi_join(
    pred: &Expr,
    left: &RelSchema,
    right: &RelSchema,
) -> (Vec<(Expr, Expr)>, Option<Expr>) {
    use crate::ast::BinaryOp;
    let mut pairs = Vec::new();
    let mut residual = Vec::new();
    for c in crate::plan::split_conjuncts(pred) {
        if let Expr::Binary { op: BinaryOp::Eq, left: a, right: b } = &c {
            if left.covers(a) && right.covers(b) {
                pairs.push(((**a).clone(), (**b).clone()));
                continue;
            }
            if left.covers(b) && right.covers(a) {
                pairs.push(((**b).clone(), (**a).clone()));
                continue;
            }
        }
        residual.push(c);
    }
    (pairs, crate::plan::conjoin(residual))
}

/// Hash-join key: the single-column case (the overwhelmingly common one)
/// avoids a per-row `Vec` allocation entirely.
#[derive(PartialEq, Eq, Hash)]
pub(crate) enum JoinKey {
    One(GroupKey),
    Many(Vec<GroupKey>),
}

/// Evaluate the key expressions of one side for one row; `None` marks a
/// NULL in any key column (NULL never joins).
fn join_key(
    exprs: &[Expr],
    rc: &RowCtx<'_>,
    ctx: &ExecCtx<'_>,
) -> Result<Option<JoinKey>> {
    if let [only] = exprs {
        let v = eval(only, ctx, Some(rc))?;
        if v.is_null() {
            return Ok(None);
        }
        return Ok(Some(JoinKey::One(v.group_key())));
    }
    let mut key = Vec::with_capacity(exprs.len());
    for e in exprs {
        let v = eval(e, ctx, Some(rc))?;
        if v.is_null() {
            return Ok(None);
        }
        key.push(v.group_key());
    }
    Ok(Some(JoinKey::Many(key)))
}

/// Emit one combined row (left cells then right cells, always in schema
/// order regardless of which side was the build side). The chained
/// iterator is `TrustedLen`, so `collect` writes straight into the shared
/// allocation — one malloc per emitted row, no intermediate `Vec`.
#[inline]
pub(crate) fn combine(lrow: &[Value], rrow: &[Value]) -> Row {
    lrow.iter().chain(rrow.iter()).cloned().collect()
}

/// A LEFT-join non-match: the left cells padded with NULLs on the right.
#[inline]
pub(crate) fn pad_right(lrow: &[Value], right_width: usize) -> Row {
    lrow.iter()
        .cloned()
        .chain(std::iter::repeat_n(Value::Null, right_width))
        .collect()
}

/// How one side of a hash join extracts its key per row: `Direct` column
/// indices (zero-eval, zero-clone) when every key expression is a bound
/// column — the overwhelmingly common `a.x = b.y` shape — or general bound
/// expressions otherwise.
pub(crate) enum KeySide {
    Direct(Vec<usize>),
    Exprs(Vec<Expr>),
}

impl KeySide {
    pub(crate) fn new(bound: Vec<Expr>) -> KeySide {
        let direct: Option<Vec<usize>> = bound
            .iter()
            .map(|e| match e {
                Expr::BoundColumn(i) => Some(*i),
                _ => None,
            })
            .collect();
        match direct {
            Some(idxs) => KeySide::Direct(idxs),
            None => KeySide::Exprs(bound),
        }
    }

    /// Key of one row; `None` marks a NULL in any key column (NULL never
    /// joins).
    #[inline]
    pub(crate) fn key(
        &self,
        row: &[Value],
        schema: &RelSchema,
        ctx: &ExecCtx<'_>,
        outer: Option<&RowCtx<'_>>,
    ) -> Result<Option<JoinKey>> {
        match self {
            KeySide::Direct(idxs) => {
                if let [i] = idxs[..] {
                    let v = &row[i];
                    if v.is_null() {
                        return Ok(None);
                    }
                    return Ok(Some(JoinKey::One(v.group_key())));
                }
                let mut key = Vec::with_capacity(idxs.len());
                for &i in idxs {
                    let v = &row[i];
                    if v.is_null() {
                        return Ok(None);
                    }
                    key.push(v.group_key());
                }
                Ok(Some(JoinKey::Many(key)))
            }
            KeySide::Exprs(exprs) => {
                let rc = RowCtx { schema, row, outer };
                join_key(exprs, &rc, ctx)
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn hash_join(
    left: &JoinInput<'_>,
    right: &JoinInput<'_>,
    kind: PlanJoinKind,
    equi: &[(Expr, Expr)],
    residual: Option<&Expr>,
    schema: &RelSchema,
    emission: &Emission,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Vec<Row>> {
    // Build on the smaller side — legal for inner joins only: a LEFT join
    // must probe from the left to emit its NULL-padded non-matches.
    let build_left = kind == PlanJoinKind::Inner && left.rows().len() < right.rows().len();
    let (build, probe) = if build_left { (left, right) } else { (right, left) };

    // Bind each side's key expressions to its schema once; plain-column
    // keys degrade further into direct index loads with no eval at all.
    let bind_side = |exprs: Vec<&Expr>, schema: &RelSchema| -> KeySide {
        KeySide::new(exprs.iter().map(|e| bind_columns(e, schema)).collect())
    };
    let left_raw: Vec<&Expr> = equi.iter().map(|(l, _)| l).collect();
    let right_raw: Vec<&Expr> = equi.iter().map(|(_, r)| r).collect();
    let (build_key, probe_key) = if build_left {
        (bind_side(left_raw, build.schema()), bind_side(right_raw, probe.schema()))
    } else {
        (bind_side(right_raw, build.schema()), bind_side(left_raw, probe.schema()))
    };
    let residual = residual.map(|r| bind_columns(r, schema));

    // Expensive calls in a join key (`ON llm_map(...) = x`) are evaluated
    // per row of *one* side: vectorize them over that side's batch before
    // the build/probe loops run.
    if ctx.optimizer.batch_expensive_udfs {
        if let KeySide::Exprs(exprs) = &build_key {
            if let Some(batch) = BatchableCalls::find(exprs.iter(), ctx.udfs) {
                batch.prefetch_rows(ctx, build.schema(), build.rows(), outer)?;
            }
        }
        if let KeySide::Exprs(exprs) = &probe_key {
            if let Some(batch) = BatchableCalls::find(exprs.iter(), ctx.udfs) {
                batch.prefetch_rows(ctx, probe.schema(), probe.rows(), outer)?;
            }
        }
    }

    // Pre-sized build table: one reallocation-free pass. Buckets inline
    // the single-row case (the norm for key/foreign-key joins), so a
    // unique-key build performs zero per-bucket allocations.
    let mut table: FxHashMap<JoinKey, Bucket> = map_with_capacity(build.rows().len());
    if let Some(col) = build.key_column(&build_key) {
        // Scan build side with a single direct-column key: read the key
        // straight out of the table's column vector — no row deref at all.
        for ri in 0..build.rows().len() {
            if ri % CANCEL_CHECK_ROWS == CANCEL_CHECK_ROWS - 1 {
                ctx.check_cancel()?;
            }
            let Some(gk) = col.join_key_at(ri) else { continue };
            match table.entry(JoinKey::One(gk)) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(Bucket::One(ri as u32));
                }
                std::collections::hash_map::Entry::Occupied(mut o) => o.get_mut().push(ri as u32),
            }
        }
    } else {
        for (ri, row) in build.rows().iter().enumerate() {
            if ri % CANCEL_CHECK_ROWS == CANCEL_CHECK_ROWS - 1 {
                ctx.check_cancel()?;
            }
            prefetch_row(build.rows(), ri + PREFETCH_AHEAD);
            if let Some(key) = build_key.key(row, build.schema(), ctx, outer)? {
                match table.entry(key) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(Bucket::One(ri as u32));
                    }
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        o.get_mut().push(ri as u32)
                    }
                }
            }
        }
    }

    // Expensive calls in the residual evaluate over combined candidate
    // rows: replay the probe loop once collecting the distinct argument
    // tuples (cheap — no emission), batch them, then run the real loop
    // against the prefetched results.
    if ctx.optimizer.batch_expensive_udfs {
        if let Some(res) = residual.as_ref() {
            if let Some(batch) = BatchableCalls::find([res], ctx.udfs) {
                let mut scratch: Vec<Value> = Vec::with_capacity(schema.len());
                batch.prefetch(ctx, &mut |collect| {
                    for prow in probe.rows() {
                        let Some(key) = probe_key.key(prow, probe.schema(), ctx, outer)? else {
                            continue;
                        };
                        let Some(cands) = table.get(&key) else { continue };
                        for &ri in cands.as_slice() {
                            let brow = &build.rows()[ri as usize];
                            let (lrow, rrow): (&[Value], &[Value]) =
                                if build_left { (brow, prow) } else { (prow, brow) };
                            scratch.clear();
                            scratch.extend_from_slice(lrow);
                            scratch.extend_from_slice(rrow);
                            collect(&RowCtx { schema, row: &scratch, outer })?;
                        }
                    }
                    Ok(())
                })?;
            }
        }
    }

    let mut out = Vec::with_capacity(probe.rows().len());

    // Tight loop for the dominant shape — single direct-column key, no
    // residual, inner join (`a JOIN b ON a.x = b.y`): no per-row enum
    // plumbing, just load → hash → emit.
    if kind == PlanJoinKind::Inner && residual.is_none() {
        // Columnar probe: keys come from the probe table's key column, so
        // the probe row is only dereferenced on an actual match.
        if let Some(col) = probe.key_column(&probe_key) {
            let rows = probe.rows();
            for pi in 0..rows.len() {
                if pi % CANCEL_CHECK_ROWS == CANCEL_CHECK_ROWS - 1 {
                    ctx.check_cancel()?;
                }
                let Some(gk) = col.join_key_at(pi) else { continue };
                if let Some(cands) = table.get(&JoinKey::One(gk)) {
                    let prow = &rows[pi];
                    for &ri in cands.as_slice() {
                        let brow = &build.rows()[ri as usize];
                        let (lrow, rrow): (&[Value], &[Value]) =
                            if build_left { (brow, prow) } else { (prow, brow) };
                        out.push(emission.matched(lrow, rrow));
                    }
                }
            }
            return Ok(out);
        }
        if let KeySide::Direct(idxs) = &probe_key {
            if let [pk] = idxs[..] {
                let rows = probe.rows();
                for (pi, prow) in rows.iter().enumerate() {
                    if pi % CANCEL_CHECK_ROWS == CANCEL_CHECK_ROWS - 1 {
                        ctx.check_cancel()?;
                    }
                    prefetch_row(rows, pi + PREFETCH_AHEAD);
                    let v = &prow[pk];
                    if v.is_null() {
                        continue;
                    }
                    if let Some(cands) = table.get(&JoinKey::One(v.group_key())) {
                        for &ri in cands.as_slice() {
                            let brow = &build.rows()[ri as usize];
                            let (lrow, rrow): (&[Value], &[Value]) =
                                if build_left { (brow, prow) } else { (prow, brow) };
                            out.push(emission.matched(lrow, rrow));
                        }
                    }
                }
                return Ok(out);
            }
        }
    }

    // Scratch buffer for residual evaluation over the full combined row;
    // only allocated contents, never a fresh Vec per candidate.
    let mut scratch: Vec<Value> = Vec::with_capacity(schema.len());
    for (pi, prow) in probe.rows().iter().enumerate() {
        if pi % CANCEL_CHECK_ROWS == CANCEL_CHECK_ROWS - 1 {
            ctx.check_cancel()?;
        }
        prefetch_row(probe.rows(), pi + PREFETCH_AHEAD);
        let key = probe_key.key(prow, probe.schema(), ctx, outer)?;
        let mut matched = false;
        if let Some(key) = key {
            if let Some(cands) = table.get(&key) {
                for &ri in cands.as_slice() {
                    let brow = &build.rows()[ri as usize];
                    let (lrow, rrow): (&[Value], &[Value]) =
                        if build_left { (brow, prow) } else { (prow, brow) };
                    if let Some(res) = &residual {
                        scratch.clear();
                        scratch.extend_from_slice(lrow);
                        scratch.extend_from_slice(rrow);
                        let cc = RowCtx { schema, row: &scratch, outer };
                        if eval(res, ctx, Some(&cc))?.truthiness() != Some(true) {
                            continue;
                        }
                    }
                    matched = true;
                    out.push(emission.matched(lrow, rrow));
                }
            }
        }
        if !matched && kind == PlanJoinKind::Left {
            // probe == left here (build_left is false for LEFT joins).
            out.push(emission.unmatched(prow, right.schema().len()));
        }
    }
    Ok(out)
}

/// Distance (in rows) to prefetch ahead in streaming row loops. Rows are
/// individually heap-allocated `Arc<[Value]>`s, so without a hint every
/// row read is a dependent load that stalls on L3 once tables outgrow L2;
/// prefetching a handful of iterations ahead overlaps those misses.
pub(crate) const PREFETCH_AHEAD: usize = 8;

#[inline(always)]
pub(crate) fn prefetch_row(rows: &[Row], i: usize) {
    #[cfg(target_arch = "x86_64")]
    if let Some(r) = rows.get(i) {
        // SAFETY: prefetch has no memory effects; any pointer is fine.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                r.as_ptr() as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            )
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (rows, i);
}

/// A hash-join bucket: row indices of the build side sharing one key,
/// with the single-row case stored inline (no allocation).
pub(crate) enum Bucket {
    One(u32),
    Many(Vec<u32>),
}

impl Bucket {
    pub(crate) fn push(&mut self, ri: u32) {
        match self {
            Bucket::One(first) => *self = Bucket::Many(vec![*first, ri]),
            Bucket::Many(v) => v.push(ri),
        }
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[u32] {
        match self {
            Bucket::One(i) => std::slice::from_ref(i),
            Bucket::Many(v) => v,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn nested_loop_join(
    left: &JoinInput<'_>,
    right: &JoinInput<'_>,
    kind: PlanJoinKind,
    on: Option<&Expr>,
    schema: &RelSchema,
    emission: &Emission,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Vec<Row>> {
    let on = on.map(|p| bind_columns(p, schema));
    // The predicate only reads its bound columns: gather exactly those into
    // a reused full-width scratch row (the rest stay NULL), so each of the
    // O(n·m) probes copies a couple of cells instead of whole rows. A
    // subquery inside ON can correlate with *any* combined-row column
    // (`Expr::walk` cannot see inside it), so that case gathers everything.
    let used: Vec<usize> = match &on {
        None => Vec::new(),
        Some(p) if crate::optimizer::expr_has_subquery(p) => (0..schema.len()).collect(),
        Some(p) => {
            let mut used = Vec::new();
            p.walk(&mut |e| {
                if let Expr::BoundColumn(i) = e {
                    if !used.contains(i) {
                        used.push(*i);
                    }
                }
            });
            used
        }
    };
    let lw = left.schema().len();
    let mut scratch: Vec<Value> = vec![Value::Null; schema.len()];

    // Vectorize expensive calls in the ON predicate over the candidate
    // pairs: the argument-tuple dedupe collapses the cross product to the
    // distinct tuples, so one batched call replaces O(n·m) row calls.
    if ctx.optimizer.batch_expensive_udfs {
        if let Some(pred) = on.as_ref() {
            if let Some(batch) = BatchableCalls::find([pred], ctx.udfs) {
                batch.prefetch(ctx, &mut |collect| {
                    for lrow in left.rows() {
                        for rrow in right.rows() {
                            for &i in &used {
                                scratch[i] =
                                    if i < lw { lrow[i].clone() } else { rrow[i - lw].clone() };
                            }
                            collect(&RowCtx { schema, row: &scratch, outer })?;
                        }
                    }
                    Ok(())
                })?;
            }
        }
    }

    let mut out = Vec::new();
    let mut since_check = 0usize;
    for lrow in left.rows() {
        let mut matched = false;
        for rrow in right.rows() {
            since_check += 1;
            if since_check >= CANCEL_CHECK_ROWS {
                since_check = 0;
                ctx.check_cancel()?;
            }
            if let Some(pred) = &on {
                for &i in &used {
                    scratch[i] =
                        if i < lw { lrow[i].clone() } else { rrow[i - lw].clone() };
                }
                let cc = RowCtx { schema, row: &scratch, outer };
                if eval(pred, ctx, Some(&cc))?.truthiness() != Some(true) {
                    continue;
                }
            }
            matched = true;
            out.push(emission.matched(lrow, rrow));
        }
        if !matched && kind == PlanJoinKind::Left {
            out.push(emission.unmatched(lrow, right.schema().len()));
        }
    }
    Ok(out)
}
