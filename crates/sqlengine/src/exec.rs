//! Query execution.
//!
//! `run_select` drives a SELECT end to end: the FROM/WHERE part is lowered
//! to a [`Plan`], optimized, and executed (with a hash-join fast path for
//! equi-joins); projection, aggregation, DISTINCT, compound operators,
//! ORDER BY and LIMIT are applied on top.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::{
    CompoundOp, Expr, OrderItem, SelectBody, SelectCore, SelectItem, SelectStmt,
};
use crate::error::{Error, Result};
use crate::eval::{eval, RowCtx};
use crate::functions::{is_aggregate, UdfRegistry};
use crate::optimizer::{optimize, OptimizerConfig};
use crate::plan::{plan_from, ColRef, Plan, PlanJoinKind, RelSchema};
use crate::storage::Catalog;
use crate::value::{GroupKey, Value};

/// Result rows paired with per-row ORDER BY sort keys.
type RowsAndKeys = (Vec<Vec<Value>>, Vec<Vec<Value>>);

/// A materialized intermediate or final relation.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    pub schema: RelSchema,
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// Output column names (unqualified).
    pub fn column_names(&self) -> Vec<String> {
        self.schema.cols.iter().map(|c| c.name.clone()).collect()
    }
}

/// Cached execution state of one subquery within a statement.
#[derive(Debug, Clone)]
pub enum SubqueryState {
    /// Uncorrelated: executed once, result shared.
    Uncorrelated(Rc<Relation>),
    /// Correlated with the outer row: must re-execute per row.
    Correlated,
}

/// Per-statement execution context.
pub struct ExecCtx<'a> {
    pub catalog: &'a Catalog,
    pub udfs: &'a UdfRegistry,
    pub optimizer: OptimizerConfig,
    /// Subquery result cache keyed by the subquery's AST node address.
    pub subqueries: RefCell<HashMap<usize, SubqueryState>>,
}

impl<'a> ExecCtx<'a> {
    pub fn new(catalog: &'a Catalog, udfs: &'a UdfRegistry) -> Self {
        ExecCtx {
            catalog,
            udfs,
            optimizer: OptimizerConfig::default(),
            subqueries: RefCell::new(HashMap::new()),
        }
    }

    pub fn with_optimizer(mut self, config: OptimizerConfig) -> Self {
        self.optimizer = config;
        self
    }

    fn column_lookup(&self) -> impl Fn(&str) -> Result<Vec<String>> + '_ {
        |name: &str| Ok(self.catalog.get_required(name)?.column_names())
    }
}

/// Execute a full SELECT (body + ORDER BY + LIMIT/OFFSET).
pub fn run_select(
    stmt: &SelectStmt,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Relation> {
    let (mut rel, mut keys) = match &stmt.body {
        SelectBody::Simple(core) => run_core(core, &stmt.order_by, ctx, outer)?,
        SelectBody::Compound { .. } => {
            let rel = run_body(&stmt.body, ctx, outer)?;
            let keys = compound_sort_keys(&rel, &stmt.order_by, ctx, outer)?;
            (rel, keys)
        }
    };

    if !stmt.order_by.is_empty() {
        sort_rows(&mut rel.rows, &mut keys, &stmt.order_by);
    }
    apply_limit_offset(&mut rel.rows, stmt, ctx)?;
    Ok(rel)
}

fn run_body(
    body: &SelectBody,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Relation> {
    match body {
        SelectBody::Simple(core) => Ok(run_core(core, &[], ctx, outer)?.0),
        SelectBody::Compound { op, left, right } => {
            let l = run_body(left, ctx, outer)?;
            let r = run_body(right, ctx, outer)?;
            if l.schema.len() != r.schema.len() {
                return Err(Error::Semantic(format!(
                    "compound SELECT column count mismatch: {} vs {}",
                    l.schema.len(),
                    r.schema.len()
                )));
            }
            let rows = match op {
                CompoundOp::UnionAll => {
                    let mut rows = l.rows;
                    rows.extend(r.rows);
                    rows
                }
                CompoundOp::Union => dedupe(l.rows.into_iter().chain(r.rows)),
                CompoundOp::Except => {
                    let exclude: std::collections::HashSet<Vec<GroupKey>> =
                        r.rows.iter().map(|row| row_key(row)).collect();
                    dedupe(l.rows.into_iter().filter(|row| !exclude.contains(&row_key(row))))
                }
                CompoundOp::Intersect => {
                    let keep: std::collections::HashSet<Vec<GroupKey>> =
                        r.rows.iter().map(|row| row_key(row)).collect();
                    dedupe(l.rows.into_iter().filter(|row| keep.contains(&row_key(row))))
                }
            };
            Ok(Relation { schema: l.schema, rows })
        }
    }
}

fn row_key(row: &[Value]) -> Vec<GroupKey> {
    row.iter().map(Value::group_key).collect()
}

fn dedupe(rows: impl IntoIterator<Item = Vec<Value>>) -> Vec<Vec<Value>> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for row in rows {
        if seen.insert(row_key(&row)) {
            out.push(row);
        }
    }
    out
}

/// ORDER BY keys for a compound SELECT: ordinals or output column names.
fn compound_sort_keys(
    rel: &Relation,
    order_by: &[OrderItem],
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Vec<Vec<Value>>> {
    if order_by.is_empty() {
        return Ok(Vec::new());
    }
    let mut keys = Vec::with_capacity(rel.rows.len());
    for row in &rel.rows {
        let rc = RowCtx { schema: &rel.schema, row, outer };
        let mut k = Vec::with_capacity(order_by.len());
        for item in order_by {
            if let Some(i) = ordinal_index(&item.expr, rel.schema.len())? {
                k.push(row[i].clone());
            } else {
                k.push(eval(&item.expr, ctx, Some(&rc))?);
            }
        }
        keys.push(k);
    }
    Ok(keys)
}

/// `ORDER BY 2` style ordinals. Errors when out of range.
fn ordinal_index(expr: &Expr, width: usize) -> Result<Option<usize>> {
    if let Expr::Literal(Value::Integer(n)) = expr {
        let n = *n;
        if n < 1 || n as usize > width {
            return Err(Error::Semantic(format!(
                "ORDER BY position {n} is out of range (1..{width})"
            )));
        }
        return Ok(Some(n as usize - 1));
    }
    Ok(None)
}

fn sort_rows(rows: &mut Vec<Vec<Value>>, keys: &mut Vec<Vec<Value>>, order_by: &[OrderItem]) {
    let mut idx: Vec<usize> = (0..rows.len()).collect();
    idx.sort_by(|&a, &b| {
        for (k, item) in order_by.iter().enumerate() {
            let ord = keys[a][k].sort_cmp(&keys[b][k]);
            let ord = if item.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut new_rows = Vec::with_capacity(rows.len());
    let mut new_keys = Vec::with_capacity(keys.len());
    for i in idx {
        new_rows.push(std::mem::take(&mut rows[i]));
        new_keys.push(std::mem::take(&mut keys[i]));
    }
    *rows = new_rows;
    *keys = new_keys;
}

fn apply_limit_offset(
    rows: &mut Vec<Vec<Value>>,
    stmt: &SelectStmt,
    ctx: &ExecCtx<'_>,
) -> Result<()> {
    let eval_count = |e: &Expr| -> Result<Option<i64>> {
        let v = eval(e, ctx, None)?;
        Ok(v.as_i64())
    };
    let offset = match &stmt.offset {
        Some(e) => eval_count(e)?.unwrap_or(0).max(0) as usize,
        None => 0,
    };
    if offset > 0 {
        if offset >= rows.len() {
            rows.clear();
        } else {
            rows.drain(..offset);
        }
    }
    if let Some(e) = &stmt.limit {
        if let Some(n) = eval_count(e)? {
            // Negative LIMIT means "no limit" in SQLite.
            if n >= 0 {
                rows.truncate(n as usize);
            }
        }
    }
    Ok(())
}

// ---- simple SELECT core --------------------------------------------------

/// Execute one SELECT core; returns the output relation plus one sort-key
/// vector per row for the given ORDER BY items (empty when no ORDER BY).
fn run_core(
    core: &SelectCore,
    order_by: &[OrderItem],
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<(Relation, Vec<Vec<Value>>)> {
    let plan = plan_from(core.from.as_ref(), core.filter.as_ref())?;
    let lookup = ctx.column_lookup();
    let plan = optimize(plan, ctx.udfs, &ctx.optimizer, &lookup)?;
    let input = exec_plan(&plan, ctx, outer)?;

    // Expand the projection into (expr, output column) pairs.
    let projection = expand_projection(&core.projection, &input.schema)?;

    let aggregated = !core.group_by.is_empty()
        || projection.iter().any(|(e, _)| e.contains_aggregate())
        || core.having.as_ref().is_some_and(|h| h.contains_aggregate());

    // ORDER BY / HAVING may reference projection aliases; rewrite them to
    // the underlying expressions (input columns win over aliases).
    let order_exprs: Vec<Expr> = order_by
        .iter()
        .map(|o| resolve_output_ref(&o.expr, &projection, &input.schema))
        .collect::<Result<_>>()?;
    let having = core
        .having
        .as_ref()
        .map(|h| resolve_output_ref(h, &projection, &input.schema))
        .transpose()?;

    if core.having.is_some() && !aggregated && core.group_by.is_empty() {
        return Err(Error::Semantic("HAVING requires GROUP BY or an aggregate".into()));
    }

    let (mut rows, mut keys) = if aggregated {
        run_aggregate(core, &projection, having.as_ref(), &order_exprs, &input, ctx, outer)?
    } else {
        let mut rows = Vec::with_capacity(input.rows.len());
        let mut keys = Vec::with_capacity(if order_by.is_empty() { 0 } else { input.rows.len() });
        for row in &input.rows {
            let rc = RowCtx { schema: &input.schema, row, outer };
            let mut out = Vec::with_capacity(projection.len());
            for (e, _) in &projection {
                out.push(eval(e, ctx, Some(&rc))?);
            }
            if !order_exprs.is_empty() {
                let mut k = Vec::with_capacity(order_exprs.len());
                for e in &order_exprs {
                    if let Some(i) = ordinal_index(e, projection.len())? {
                        k.push(out[i].clone());
                    } else {
                        k.push(eval(e, ctx, Some(&rc))?);
                    }
                }
                keys.push(k);
            }
            rows.push(out);
        }
        (rows, keys)
    };

    if core.distinct {
        distinct_in_place(&mut rows, &mut keys);
    }

    let schema = RelSchema::new(projection.into_iter().map(|(_, c)| c).collect());
    Ok((Relation { schema, rows }, keys))
}

/// Expand wildcards and name each projected column.
fn expand_projection(
    items: &[SelectItem],
    input: &RelSchema,
) -> Result<Vec<(Expr, ColRef)>> {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            SelectItem::Wildcard => {
                if input.is_empty() {
                    return Err(Error::Semantic("SELECT * with no FROM clause".into()));
                }
                for c in &input.cols {
                    out.push((
                        Expr::Column { table: c.qualifier.clone(), name: c.name.clone() },
                        c.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut any = false;
                for c in &input.cols {
                    if c.qualifier.as_deref().is_some_and(|x| x.eq_ignore_ascii_case(q)) {
                        out.push((
                            Expr::Column { table: c.qualifier.clone(), name: c.name.clone() },
                            c.clone(),
                        ));
                        any = true;
                    }
                }
                if !any {
                    return Err(Error::Unresolved(format!("{q}.*")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.clone(),
                    None => match expr {
                        Expr::Column { name, .. } => name.clone(),
                        other => crate::display::expr_to_sql(other),
                    },
                };
                let qualifier = match (alias, expr) {
                    (None, Expr::Column { table, .. }) => table.clone(),
                    _ => None,
                };
                out.push((expr.clone(), ColRef::new(qualifier, name)));
            }
        }
    }
    Ok(out)
}

/// Rewrite a reference to a projection alias or ordinal into the underlying
/// expression; leave genuine input-column references untouched.
fn resolve_output_ref(
    expr: &Expr,
    projection: &[(Expr, ColRef)],
    input: &RelSchema,
) -> Result<Expr> {
    if let Expr::Column { table: None, name } = expr {
        // Input columns shadow aliases (SQL standard).
        if input.resolve(None, name).unwrap_or(None).is_none() {
            if let Some((e, _)) = projection
                .iter()
                .find(|(_, c)| c.name.eq_ignore_ascii_case(name))
            {
                return Ok(e.clone());
            }
        }
    }
    Ok(expr.clone())
}

fn distinct_in_place(rows: &mut Vec<Vec<Value>>, keys: &mut Vec<Vec<Value>>) {
    let mut seen = std::collections::HashSet::new();
    let mut kept_rows = Vec::with_capacity(rows.len());
    let mut kept_keys = Vec::with_capacity(keys.len());
    for (i, row) in rows.drain(..).enumerate() {
        if seen.insert(row_key(&row)) {
            if !keys.is_empty() {
                kept_keys.push(std::mem::take(&mut keys[i]));
            }
            kept_rows.push(row);
        }
    }
    *rows = kept_rows;
    *keys = kept_keys;
}

// ---- aggregation ----------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn run_aggregate(
    core: &SelectCore,
    projection: &[(Expr, ColRef)],
    having: Option<&Expr>,
    order_exprs: &[Expr],
    input: &Relation,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<RowsAndKeys> {
    // Partition input rows into groups, preserving first-seen order.
    let mut group_index: HashMap<Vec<GroupKey>, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    if core.group_by.is_empty() {
        groups.push((0..input.rows.len()).collect());
    } else {
        for (ri, row) in input.rows.iter().enumerate() {
            let rc = RowCtx { schema: &input.schema, row, outer };
            let mut key = Vec::with_capacity(core.group_by.len());
            for g in &core.group_by {
                key.push(eval(g, ctx, Some(&rc))?.group_key());
            }
            let gi = *group_index.entry(key).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[gi].push(ri);
        }
    }

    // A row of NULLs stands in for column references over an empty group
    // (only possible for the implicit single group of a table-less or
    // fully-filtered aggregate).
    let null_row: Vec<Value> = vec![Value::Null; input.schema.len()];

    let mut rows = Vec::with_capacity(groups.len());
    let mut keys = Vec::new();
    for members in &groups {
        let rep: &[Value] = match members.first() {
            Some(&i) => &input.rows[i],
            None => &null_row,
        };
        let rep_ctx = RowCtx { schema: &input.schema, row: rep, outer };

        if let Some(h) = having {
            let hv = materialize_and_eval(h, members, input, ctx, &rep_ctx)?;
            if hv.truthiness() != Some(true) {
                continue;
            }
        }

        let mut out = Vec::with_capacity(projection.len());
        for (e, _) in projection {
            out.push(materialize_and_eval(e, members, input, ctx, &rep_ctx)?);
        }
        if !order_exprs.is_empty() {
            let mut k = Vec::with_capacity(order_exprs.len());
            for e in order_exprs {
                if let Some(i) = ordinal_index(e, projection.len())? {
                    k.push(out[i].clone());
                } else {
                    k.push(materialize_and_eval(e, members, input, ctx, &rep_ctx)?);
                }
            }
            keys.push(k);
        }
        rows.push(out);
    }
    Ok((rows, keys))
}

/// Replace aggregate calls in `expr` with their computed literals, then
/// evaluate the residual expression on the group's representative row.
fn materialize_and_eval(
    expr: &Expr,
    members: &[usize],
    input: &Relation,
    ctx: &ExecCtx<'_>,
    rep_ctx: &RowCtx<'_>,
) -> Result<Value> {
    let rewritten = replace_aggregates(expr, members, input, ctx, rep_ctx)?;
    eval(&rewritten, ctx, Some(rep_ctx))
}

fn replace_aggregates(
    expr: &Expr,
    members: &[usize],
    input: &Relation,
    ctx: &ExecCtx<'_>,
    rep_ctx: &RowCtx<'_>,
) -> Result<Expr> {
    Ok(match expr {
        Expr::Function { name, args, distinct, star } if is_aggregate(name) => {
            Expr::Literal(compute_aggregate(
                name, args, *distinct, *star, members, input, ctx, rep_ctx,
            )?)
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(replace_aggregates(left, members, input, ctx, rep_ctx)?),
            right: Box::new(replace_aggregates(right, members, input, ctx, rep_ctx)?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(replace_aggregates(expr, members, input, ctx, rep_ctx)?),
        },
        Expr::Function { name, args, distinct, star } => Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| replace_aggregates(a, members, input, ctx, rep_ctx))
                .collect::<Result<_>>()?,
            distinct: *distinct,
            star: *star,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(replace_aggregates(expr, members, input, ctx, rep_ctx)?),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated, glob } => Expr::Like {
            expr: Box::new(replace_aggregates(expr, members, input, ctx, rep_ctx)?),
            pattern: Box::new(replace_aggregates(pattern, members, input, ctx, rep_ctx)?),
            negated: *negated,
            glob: *glob,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(replace_aggregates(expr, members, input, ctx, rep_ctx)?),
            low: Box::new(replace_aggregates(low, members, input, ctx, rep_ctx)?),
            high: Box::new(replace_aggregates(high, members, input, ctx, rep_ctx)?),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(replace_aggregates(expr, members, input, ctx, rep_ctx)?),
            list: list
                .iter()
                .map(|e| replace_aggregates(e, members, input, ctx, rep_ctx))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Case { operand, branches, else_expr } => Expr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(replace_aggregates(o, members, input, ctx, rep_ctx)?)),
                None => None,
            },
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((
                        replace_aggregates(w, members, input, ctx, rep_ctx)?,
                        replace_aggregates(t, members, input, ctx, rep_ctx)?,
                    ))
                })
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(replace_aggregates(e, members, input, ctx, rep_ctx)?)),
                None => None,
            },
        },
        Expr::Cast { expr, type_name } => Expr::Cast {
            expr: Box::new(replace_aggregates(expr, members, input, ctx, rep_ctx)?),
            type_name: type_name.clone(),
        },
        // Leaves and subqueries (own scope) pass through.
        other => other.clone(),
    })
}

#[allow(clippy::too_many_arguments)]
fn compute_aggregate(
    name: &str,
    args: &[Expr],
    distinct: bool,
    star: bool,
    members: &[usize],
    input: &Relation,
    ctx: &ExecCtx<'_>,
    rep_ctx: &RowCtx<'_>,
) -> Result<Value> {
    let upper = name.to_ascii_uppercase();

    if star {
        if upper != "COUNT" {
            return Err(Error::Semantic(format!("{name}(*) is not valid")));
        }
        return Ok(Value::Integer(members.len() as i64));
    }

    // Gather the argument values per group row (NULLs excluded, per SQL).
    let arg = args
        .first()
        .ok_or_else(|| Error::Semantic(format!("{name}() requires an argument")))?;
    let mut vals = Vec::with_capacity(members.len());
    for &ri in members {
        let rc = RowCtx { schema: &input.schema, row: &input.rows[ri], outer: rep_ctx.outer };
        let v = eval(arg, ctx, Some(&rc))?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    if distinct {
        let mut seen = std::collections::HashSet::new();
        vals.retain(|v| seen.insert(v.group_key()));
    }

    match upper.as_str() {
        "COUNT" => Ok(Value::Integer(vals.len() as i64)),
        "SUM" | "TOTAL" => {
            if vals.is_empty() {
                return Ok(if upper == "TOTAL" { Value::Real(0.0) } else { Value::Null });
            }
            if upper == "SUM" && vals.iter().all(|v| matches!(v, Value::Integer(_))) {
                let mut acc: i64 = 0;
                for v in &vals {
                    if let Value::Integer(i) = v {
                        acc = acc
                            .checked_add(*i)
                            .ok_or_else(|| Error::Arithmetic("integer overflow in SUM".into()))?;
                    }
                }
                Ok(Value::Integer(acc))
            } else {
                let mut acc = 0.0;
                for v in &vals {
                    acc += v.as_f64().unwrap_or(0.0);
                }
                Ok(Value::Real(acc))
            }
        }
        "AVG" => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let sum: f64 = vals.iter().map(|v| v.as_f64().unwrap_or(0.0)).sum();
            Ok(Value::Real(sum / vals.len() as f64))
        }
        "MIN" => Ok(vals
            .into_iter()
            .min_by(|a, b| a.sort_cmp(b))
            .unwrap_or(Value::Null)),
        "MAX" => Ok(vals
            .into_iter()
            .max_by(|a, b| a.sort_cmp(b))
            .unwrap_or(Value::Null)),
        "GROUP_CONCAT" => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let sep = match args.get(1) {
                Some(e) => eval(e, ctx, Some(rep_ctx))?.render(),
                None => ",".to_string(),
            };
            Ok(Value::Text(
                vals.iter().map(Value::render).collect::<Vec<_>>().join(&sep),
            ))
        }
        other => Err(Error::Unresolved(format!("aggregate function {other}"))),
    }
}

// ---- plan execution --------------------------------------------------------

/// Materialize a plan into a relation.
pub fn exec_plan(
    plan: &Plan,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Relation> {
    match plan {
        Plan::Empty => Ok(Relation { schema: RelSchema::default(), rows: vec![vec![]] }),

        Plan::Scan { table, qualifier } => {
            let t = ctx.catalog.get_required(table)?;
            Ok(Relation {
                schema: RelSchema::qualified(qualifier, t.column_names()),
                rows: t.rows.clone(),
            })
        }

        Plan::Derived { query, qualifier } => {
            let inner = run_select(query, ctx, outer)?;
            // Re-qualify every output column with the derived-table alias.
            let cols = inner
                .schema
                .cols
                .into_iter()
                .map(|c| ColRef::new(Some(qualifier.clone()), c.name))
                .collect();
            Ok(Relation { schema: RelSchema::new(cols), rows: inner.rows })
        }

        Plan::Filter { input, predicate } => {
            let rel = exec_plan(input, ctx, outer)?;
            let mut rows = Vec::with_capacity(rel.rows.len());
            for row in rel.rows {
                let rc = RowCtx { schema: &rel.schema, row: &row, outer };
                if eval(predicate, ctx, Some(&rc))?.truthiness() == Some(true) {
                    rows.push(row);
                }
            }
            Ok(Relation { schema: rel.schema, rows })
        }

        Plan::Join { left, right, kind, on } => {
            let l = exec_plan(left, ctx, outer)?;
            let r = exec_plan(right, ctx, outer)?;
            exec_join(l, r, *kind, on.as_ref(), ctx, outer)
        }
    }
}

fn exec_join(
    left: Relation,
    right: Relation,
    kind: PlanJoinKind,
    on: Option<&Expr>,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Relation> {
    let schema = left.schema.join(&right.schema);

    // Try to split the ON predicate into hashable equi-pairs + residual.
    let (equi, residual) = match on {
        Some(pred) if kind != PlanJoinKind::Cross => {
            split_equi_join(pred, &left.schema, &right.schema)
        }
        Some(pred) => (Vec::new(), Some(pred.clone())),
        None => (Vec::new(), None),
    };

    let rows = if equi.is_empty() {
        nested_loop_join(&left, &right, kind, residual.as_ref(), &schema, ctx, outer)?
    } else {
        hash_join(&left, &right, kind, &equi, residual.as_ref(), &schema, ctx, outer)?
    };
    Ok(Relation { schema, rows })
}

/// Extract `l_expr = r_expr` conjuncts where each side is computable from
/// one input. Returns (pairs, residual predicate).
fn split_equi_join(
    pred: &Expr,
    left: &RelSchema,
    right: &RelSchema,
) -> (Vec<(Expr, Expr)>, Option<Expr>) {
    use crate::ast::BinaryOp;
    let mut pairs = Vec::new();
    let mut residual = Vec::new();
    for c in crate::plan::split_conjuncts(pred) {
        if let Expr::Binary { op: BinaryOp::Eq, left: a, right: b } = &c {
            if left.covers(a) && right.covers(b) {
                pairs.push(((**a).clone(), (**b).clone()));
                continue;
            }
            if left.covers(b) && right.covers(a) {
                pairs.push(((**b).clone(), (**a).clone()));
                continue;
            }
        }
        residual.push(c);
    }
    (pairs, crate::plan::conjoin(residual))
}

#[allow(clippy::too_many_arguments)]
fn hash_join(
    left: &Relation,
    right: &Relation,
    kind: PlanJoinKind,
    equi: &[(Expr, Expr)],
    residual: Option<&Expr>,
    schema: &RelSchema,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Vec<Vec<Value>>> {
    // Build on the right side.
    let mut table: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
    'build: for (ri, row) in right.rows.iter().enumerate() {
        let rc = RowCtx { schema: &right.schema, row, outer };
        let mut key = Vec::with_capacity(equi.len());
        for (_, re) in equi {
            let v = eval(re, ctx, Some(&rc))?;
            if v.is_null() {
                continue 'build; // NULL keys never join.
            }
            key.push(v.group_key());
        }
        table.entry(key).or_default().push(ri);
    }

    let mut out = Vec::new();
    for lrow in &left.rows {
        let lc = RowCtx { schema: &left.schema, row: lrow, outer };
        let mut key = Vec::with_capacity(equi.len());
        let mut null_key = false;
        for (le, _) in equi {
            let v = eval(le, ctx, Some(&lc))?;
            if v.is_null() {
                null_key = true;
                break;
            }
            key.push(v.group_key());
        }
        let mut matched = false;
        if !null_key {
            if let Some(cands) = table.get(&key) {
                for &ri in cands {
                    let mut combined = Vec::with_capacity(schema.len());
                    combined.extend(lrow.iter().cloned());
                    combined.extend(right.rows[ri].iter().cloned());
                    if let Some(res) = residual {
                        let cc = RowCtx { schema, row: &combined, outer };
                        if eval(res, ctx, Some(&cc))?.truthiness() != Some(true) {
                            continue;
                        }
                    }
                    matched = true;
                    out.push(combined);
                }
            }
        }
        if !matched && kind == PlanJoinKind::Left {
            let mut combined = Vec::with_capacity(schema.len());
            combined.extend(lrow.iter().cloned());
            combined.extend(std::iter::repeat_n(Value::Null, right.schema.len()));
            out.push(combined);
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn nested_loop_join(
    left: &Relation,
    right: &Relation,
    kind: PlanJoinKind,
    on: Option<&Expr>,
    schema: &RelSchema,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Vec<Vec<Value>>> {
    let mut out = Vec::new();
    for lrow in &left.rows {
        let mut matched = false;
        for rrow in &right.rows {
            let mut combined = Vec::with_capacity(schema.len());
            combined.extend(lrow.iter().cloned());
            combined.extend(rrow.iter().cloned());
            if let Some(pred) = on {
                let cc = RowCtx { schema, row: &combined, outer };
                if eval(pred, ctx, Some(&cc))?.truthiness() != Some(true) {
                    continue;
                }
            }
            matched = true;
            out.push(combined);
        }
        if !matched && kind == PlanJoinKind::Left {
            let mut combined = Vec::with_capacity(schema.len());
            combined.extend(lrow.iter().cloned());
            combined.extend(std::iter::repeat_n(Value::Null, right.schema.len()));
            out.push(combined);
        }
    }
    Ok(out)
}
