//! Snapshot-isolation transactions over the versioned catalog.
//!
//! A transaction pins an O(tables) catalog snapshot at `BEGIN` (the row
//! storage is shared `Arc<Table>`s, so nothing is copied). Statements
//! inside the transaction execute against a private *working* catalog
//! derived from that snapshot, so reads see the snapshot plus the
//! transaction's own uncommitted writes and never anybody else's.
//!
//! Commit is **first-committer-wins**: for every table the transaction
//! wrote, the live catalog must still hold the exact `Arc<Table>` (same
//! pointer, same [`Table::version`]) the snapshot pinned. Any intervening
//! commit to one of those tables — including a drop-and-recreate, which
//! pointer identity catches even when versions collide — aborts the
//! transaction with [`Error::Conflict`]; the caller retries. Tables the
//! transaction only *read* are not checked (snapshot isolation, not
//! serializability — write skew is admitted, as in PostgreSQL's
//! REPEATABLE READ).
//!
//! The module is deliberately storage-only: lock acquisition, WAL append
//! ordering and the atomic install live with the owners of those
//! resources ([`crate::db::Database`] and [`crate::shared::SharedDb`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::storage::{Catalog, Table};
use crate::wal::{WalDelta, WalRecord};

/// An open transaction: the pinned snapshot plus the set of tables the
/// transaction has written so far (lowercased, in first-write order).
///
/// The *working* catalog — snapshot plus own writes — is owned by the
/// session driving the transaction, not by `Txn` itself: for a
/// single-session [`Database`](crate::db::Database) the database's own
/// catalog plays that role, while a [`Session`](crate::shared::Session)
/// keeps an explicit overlay.
#[derive(Debug, Clone)]
pub struct Txn {
    id: u64,
    pub(crate) snapshot: Catalog,
    written: Vec<String>,
}

impl Txn {
    /// The transaction's id (unique per WAL lifetime; recovery resumes
    /// allocation above the highest id on disk).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The catalog state pinned at `BEGIN`.
    pub fn snapshot(&self) -> &Catalog {
        &self.snapshot
    }

    /// Record that a statement wrote `table` (idempotent).
    pub(crate) fn record_write(&mut self, table: &str) {
        let key = table.to_ascii_lowercase();
        if !self.written.contains(&key) {
            self.written.push(key);
        }
    }

    /// Lowercased names of all written tables, in first-write order.
    pub(crate) fn written(&self) -> &[String] {
        &self.written
    }
}

/// Allocates transaction ids. One per database; ids seed above the
/// highest id recovered from the WAL so ids on disk never repeat across
/// restarts within one log generation.
#[derive(Debug)]
pub struct TxnManager {
    next_id: AtomicU64,
}

impl TxnManager {
    pub fn new(first_id: u64) -> Self {
        TxnManager { next_id: AtomicU64::new(first_id.max(1)) }
    }

    /// A fresh id for a single-statement (auto-commit) WAL group.
    pub fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Open a transaction over the given pinned snapshot.
    pub fn begin(&self, snapshot: Catalog) -> Txn {
        Txn { id: self.fresh_id(), snapshot, written: Vec::new() }
    }
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager::new(1)
    }
}

/// A transaction's committed effect on one table.
#[derive(Debug, Clone)]
pub enum TableDelta {
    /// Install this table version (covers create, insert, update, DDL).
    Put(Arc<Table>),
    /// The table was dropped.
    Drop,
}

/// Diff the written tables of a transaction: for each name in `written`,
/// what must be installed to turn `base` into `working`. Unchanged
/// entries (same `Arc`) produce no delta.
pub(crate) fn catalog_deltas(
    written: &[String],
    base: &Catalog,
    working: &Catalog,
) -> Vec<(String, TableDelta)> {
    let mut out = Vec::new();
    for name in written {
        match (base.get(name), working.get(name)) {
            (None, None) => {}
            (Some(_), None) => out.push((name.clone(), TableDelta::Drop)),
            (b, Some(w)) => {
                if b.is_some_and(|b| Arc::ptr_eq(b, w)) {
                    continue;
                }
                out.push((name.clone(), TableDelta::Put(w.clone())));
            }
        }
    }
    out
}

/// First-committer-wins conflict check: every table the transaction wrote
/// must be exactly the object its snapshot pinned — same presence, same
/// `Arc` identity. Pointer equality is the strong form of the version
/// check (every install creates a fresh `Arc`, and copy-on-write bumps
/// [`Table::version`]); versions are reported in the error for
/// diagnosability.
pub(crate) fn conflict_check(txn: &Txn, live: &Catalog) -> Result<()> {
    for name in txn.written() {
        let pinned = txn.snapshot.get(name);
        let now = live.get(name);
        let clean = match (pinned, now) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        if !clean {
            return Err(Error::Conflict(format!(
                "table '{name}' changed since this transaction began \
                 (snapshot version {:?}, committed version {:?}); \
                 first committer wins — retry the transaction",
                pinned.map(|t| t.version),
                now.map(|t| t.version),
            )));
        }
    }
    Ok(())
}

/// Encode one delta for the WAL, preferring the compact append form: when
/// the new table version is the base plus appended rows (schema, primary
/// key and every base row `Arc`-identical), only the new rows are logged.
pub(crate) fn wal_delta(name: &str, base: Option<&Arc<Table>>, delta: &TableDelta) -> WalDelta {
    match delta {
        TableDelta::Drop => WalDelta::Drop { name: name.to_string() },
        TableDelta::Put(new) => {
            if let Some(b) = base {
                if is_pure_append(b, new) {
                    return WalDelta::Append {
                        table: name.to_string(),
                        rows: new.rows[b.rows.len()..].to_vec(),
                        new_version: new.version,
                    };
                }
            }
            WalDelta::Put { table: new.clone() }
        }
    }
}

fn is_pure_append(base: &Table, new: &Table) -> bool {
    new.columns == base.columns
        && new.primary_key == base.primary_key
        && new.rows.len() >= base.rows.len()
        && base.rows.iter().zip(&new.rows).all(|(a, b)| Arc::ptr_eq(a, b))
}

/// The WAL record group for one committed transaction:
/// `Begin · Delta* · Commit`, appended (and fsynced) as one write.
pub(crate) fn commit_records(
    txn_id: u64,
    base: &Catalog,
    deltas: &[(String, TableDelta)],
) -> Vec<WalRecord> {
    let mut recs = Vec::with_capacity(deltas.len() + 2);
    recs.push(WalRecord::Begin { txn: txn_id });
    for (name, delta) in deltas {
        recs.push(WalRecord::Delta {
            txn: txn_id,
            delta: wal_delta(name, base.get(name), delta),
        });
    }
    recs.push(WalRecord::Commit { txn: txn_id });
    recs
}

/// [`commit_records`] already framed for the log — committers encode
/// their group *before* enqueueing with the group-commit leader, so the
/// only work serialized on the log is the batched write + fsync.
pub(crate) fn commit_group_bytes(
    txn_id: u64,
    base: &Catalog,
    deltas: &[(String, TableDelta)],
) -> Vec<u8> {
    crate::wal::frame_group(&commit_records(txn_id, base, deltas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Column;

    fn table(rows: usize) -> Table {
        let mut t =
            Table::new("t", vec![Column::new("id")], &["id".to_string()]).unwrap();
        for i in 0..rows {
            t.insert_row(vec![(i as i64).into()]).unwrap();
        }
        t
    }

    #[test]
    fn conflict_check_passes_on_untouched_tables() {
        let mut cat = Catalog::new();
        cat.put_table(table(2));
        let mgr = TxnManager::default();
        let mut txn = mgr.begin(cat.clone());
        txn.record_write("t");
        conflict_check(&txn, &cat).unwrap();
    }

    #[test]
    fn conflict_check_catches_intervening_commit() {
        let mut cat = Catalog::new();
        cat.put_table(table(2));
        let mgr = TxnManager::default();
        let mut txn = mgr.begin(cat.clone());
        txn.record_write("t");
        // Another session commits to t after the snapshot was pinned.
        cat.get_mut("t").unwrap().insert_row(vec![9.into()]).unwrap();
        let err = conflict_check(&txn, &cat).unwrap_err();
        assert!(matches!(err, Error::Conflict(_)));
    }

    #[test]
    fn conflict_check_catches_drop_and_recreate() {
        let mut cat = Catalog::new();
        cat.put_table(table(2));
        let mgr = TxnManager::default();
        let mut txn = mgr.begin(cat.clone());
        txn.record_write("t");
        // Same name, same fresh version number — but a different object.
        cat.drop_table("t").unwrap();
        cat.put_table(table(2));
        assert!(matches!(conflict_check(&txn, &cat), Err(Error::Conflict(_))));
    }

    #[test]
    fn deltas_skip_unwritten_and_unchanged() {
        let mut base = Catalog::new();
        base.put_table(table(2));
        let working = base.clone();
        // Written but untouched (same Arc): no delta.
        let deltas =
            catalog_deltas(&["t".to_string()], &base, &working);
        assert!(deltas.is_empty());
    }

    #[test]
    fn pure_insert_encodes_as_append() {
        let mut base_cat = Catalog::new();
        base_cat.put_table(table(3));
        let base = base_cat.get("t").unwrap().clone();
        let mut working = base_cat.clone();
        working.get_mut("t").unwrap().insert_row(vec![10.into()]).unwrap();
        let new = working.get("t").unwrap().clone();

        match wal_delta("t", Some(&base), &TableDelta::Put(new.clone())) {
            WalDelta::Append { rows, new_version, .. } => {
                assert_eq!(rows.len(), 1);
                assert_eq!(new_version, new.version);
            }
            other => panic!("expected append delta, got {other:?}"),
        }

        // A delete breaks the append precondition → full image.
        let mut shrunk = base_cat.clone();
        shrunk.get_mut("t").unwrap().retain_rows(|r| r[0].as_i64() != Some(0));
        let shrunk_t = shrunk.get("t").unwrap().clone();
        assert!(matches!(
            wal_delta("t", Some(&base), &TableDelta::Put(shrunk_t)),
            WalDelta::Put { .. }
        ));
    }

    #[test]
    fn txn_ids_are_unique_and_seeded() {
        let mgr = TxnManager::new(41);
        let a = mgr.begin(Catalog::new());
        let b = mgr.begin(Catalog::new());
        assert_eq!(a.id(), 41);
        assert_eq!(b.id(), 42);
    }
}
