//! Snapshot-isolation transactions over the versioned catalog, with
//! **row-level** conflict detection.
//!
//! A transaction pins an O(tables) catalog snapshot at `BEGIN` (the row
//! storage is shared `Arc<Table>`s, so nothing is copied). Statements
//! inside the transaction execute against a private *working* catalog
//! derived from that snapshot, so reads see the snapshot plus the
//! transaction's own uncommitted writes and never anybody else's. Each
//! write statement also reports *which rows* it touched ([`StmtWrites`]),
//! accumulated per table into the transaction's [`WriteSet`]s.
//!
//! Commit is **first-committer-wins at row granularity**: for every table
//! the transaction wrote, either the live catalog still holds the exact
//! `Arc<Table>` the snapshot pinned (the fast path — install as-is), or
//! the transaction's write set is intersected against the write sets of
//! every commit recorded in the [`CommitHistory`] since the pinned
//! snapshot sequence. Overlapping rows (or a table-granular write — DDL,
//! or DML on a table without a primary key) abort with
//! [`Error::Conflict`]; disjoint rows **rebase**: the transaction's row
//! patch is applied on top of the live table and installed, so two
//! transactions updating different rows of the same hot table both
//! commit. Tables the transaction only *read* are never checked (snapshot
//! isolation, not serializability — write skew is admitted, as in
//! PostgreSQL's REPEATABLE READ).
//!
//! The history is bounded by a watermark GC: `BEGIN` pins its snapshot
//! sequence, commits append entries, and entries at or below the oldest
//! live pin (or everything, when no snapshot is pinned) are truncated on
//! every commit and unpin — memory stays bounded under churn while any
//! long-lived snapshot can still validate against every commit since it
//! began.
//!
//! The module is deliberately storage-only: lock acquisition, WAL append
//! ordering and the atomic install live with the owners of those
//! resources ([`crate::db::Database`] and [`crate::shared::SharedDb`]).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::storage::{Catalog, Table};
use crate::value::{GroupKey, Row, Value};
use crate::wal::{WalDelta, WalRecord};

/// Hashable primary-key identity of one row (one [`GroupKey`] per PK
/// column, same equality as the table's PK index).
pub(crate) type PkKey = Vec<GroupKey>;

/// The rows one *statement* touched, reported by the DML executors in
/// [`crate::db`]. `keys` holds the primary-key cell values of every
/// touched row (for an UPDATE that moves a row to a new primary key,
/// both the old and the new key).
#[derive(Debug, Clone)]
pub(crate) enum StmtWrites {
    /// Per-row writes on a table with a primary key.
    Rows {
        keys: Vec<Vec<Value>>,
        /// The keys are fresh INSERTs (used to detect delete-then-
        /// reinsert, which moves a row to the table's tail).
        inserted: bool,
        /// An UPDATE changed some row's primary key: the in-place row
        /// patch no longer reproduces the working table's row order, so
        /// the WAL falls back to a full image.
        reorder: bool,
    },
    /// Table-granular: DDL, or DML on a table without a primary key.
    Whole,
}

/// The accumulated rows a *transaction* wrote in one table, keyed by
/// primary-key identity; the values keep the PK cells for diagnostics
/// and for the WAL's row-patch delete encoding.
#[derive(Debug, Clone)]
pub(crate) enum WriteSet {
    Rows { keys: HashMap<PkKey, Vec<Value>>, reorder: bool },
    Whole,
}

impl WriteSet {
    pub(crate) fn from_stmt(writes: StmtWrites) -> WriteSet {
        match writes {
            StmtWrites::Whole => WriteSet::Whole,
            StmtWrites::Rows { keys, reorder, .. } => {
                let mut map = HashMap::with_capacity(keys.len());
                for values in keys {
                    map.insert(values.iter().map(Value::group_key).collect(), values);
                }
                WriteSet::Rows { keys: map, reorder }
            }
        }
    }

    fn merge(&mut self, writes: StmtWrites) {
        let WriteSet::Rows { keys, reorder } = self else {
            return; // Whole absorbs everything.
        };
        match writes {
            StmtWrites::Whole => *self = WriteSet::Whole,
            StmtWrites::Rows { keys: new_keys, inserted, reorder: stmt_reorder } => {
                *reorder |= stmt_reorder;
                for values in new_keys {
                    let key: PkKey = values.iter().map(Value::group_key).collect();
                    // Insert of a key this transaction already touched:
                    // the row was deleted then re-inserted, which appends
                    // it at the tail — an order the in-place patch cannot
                    // reproduce.
                    if inserted && keys.contains_key(&key) {
                        *reorder = true;
                    }
                    keys.insert(key, values);
                }
            }
        }
    }

    /// True when the set is row-granular and replaying its patch in
    /// place reproduces the working table's row order exactly.
    fn is_ordered_rows(&self) -> bool {
        matches!(self, WriteSet::Rows { reorder: false, .. })
    }
}

/// An open transaction: the pinned snapshot, its position in the commit
/// history, and the per-table write sets accumulated so far.
///
/// The *working* catalog — snapshot plus own writes — is owned by the
/// session driving the transaction, not by `Txn` itself: for a
/// single-session [`Database`](crate::db::Database) the database's own
/// catalog plays that role, while a [`Session`](crate::shared::Session)
/// keeps an explicit overlay.
#[derive(Debug, Clone)]
pub struct Txn {
    id: u64,
    pub(crate) snapshot: Catalog,
    /// The [`CommitHistory`] sequence pinned together with the snapshot
    /// (0 for single-session databases, which never validate against a
    /// history). Commit-time validation checks exactly the entries with
    /// a higher sequence.
    pub(crate) snapshot_seq: u64,
    written: Vec<String>,
    write_sets: HashMap<String, WriteSet>,
}

impl Txn {
    /// The transaction's id (unique per WAL lifetime; recovery resumes
    /// allocation above the highest id on disk).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The catalog state pinned at `BEGIN`.
    pub fn snapshot(&self) -> &Catalog {
        &self.snapshot
    }

    /// Record that a statement wrote `table`, merging the rows it
    /// touched into the table's write set.
    pub(crate) fn record_write(&mut self, table: &str, writes: StmtWrites) {
        let key = table.to_ascii_lowercase();
        match self.write_sets.get_mut(&key) {
            Some(set) => set.merge(writes),
            None => {
                self.written.push(key.clone());
                self.write_sets.insert(key, WriteSet::from_stmt(writes));
            }
        }
    }

    /// Lowercased names of all written tables, in first-write order.
    pub(crate) fn written(&self) -> &[String] {
        &self.written
    }

    /// The accumulated write set for a (lowercased) written table.
    pub(crate) fn write_set(&self, table: &str) -> Option<&WriteSet> {
        self.write_sets.get(table)
    }

    /// All per-table write sets (keyed by lowercased table name).
    pub(crate) fn write_sets(&self) -> &HashMap<String, WriteSet> {
        &self.write_sets
    }
}

/// Allocates transaction ids. One per database; ids seed above the
/// highest id recovered from the WAL so ids on disk never repeat across
/// restarts within one log generation.
#[derive(Debug)]
pub struct TxnManager {
    next_id: AtomicU64,
}

impl TxnManager {
    pub fn new(first_id: u64) -> Self {
        TxnManager { next_id: AtomicU64::new(first_id.max(1)) }
    }

    /// A fresh id for a single-statement (auto-commit) WAL group.
    pub fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Open a transaction over the given pinned snapshot.
    pub fn begin(&self, snapshot: Catalog) -> Txn {
        Txn {
            id: self.fresh_id(),
            snapshot,
            snapshot_seq: 0,
            written: Vec::new(),
            write_sets: HashMap::new(),
        }
    }
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager::new(1)
    }
}

// ---------------------------------------------------------------------------
// Commit history: the version chain row-level validation walks
// ---------------------------------------------------------------------------

/// One committed transaction's write sets, kept until no live snapshot
/// could still need them for validation.
#[derive(Debug)]
struct CommitEntry {
    seq: u64,
    tables: Vec<(String, WriteSet)>,
}

/// The recent-commit log a [`SharedDb`](crate::shared::SharedDb) keeps
/// for row-level conflict validation, plus the snapshot registry that
/// bounds it.
///
/// * `BEGIN` calls [`pin_snapshot`](CommitHistory::pin_snapshot) under
///   the catalog read lock, so the pinned sequence is exactly consistent
///   with the cloned catalog.
/// * Every install calls [`record_commit`](CommitHistory::record_commit)
///   under the catalog **write** lock, so a commit's entry and its
///   catalog effect appear atomically to snapshotters.
/// * The watermark — the oldest pinned sequence, or the newest sequence
///   when nothing is pinned — truncates entries no live snapshot can
///   need, on every commit and every unpin. A long-lived snapshot
///   therefore pins history (its validation window stays complete) and
///   releasing it lets the chain drain to empty.
#[derive(Debug, Default)]
pub(crate) struct CommitHistory {
    /// Sequence of the most recent commit (0 = none yet).
    next_seq: u64,
    entries: VecDeque<CommitEntry>,
    /// Pinned snapshot sequences -> number of open transactions pinned
    /// at that sequence.
    pins: BTreeMap<u64, usize>,
}

/// What the history says about one table's rows since a snapshot.
#[derive(Debug)]
pub(crate) enum RowCheck {
    /// No commit since the snapshot touched any of the given rows.
    Disjoint,
    /// A commit rewrote the table wholesale (DDL, or a write to a table
    /// without a primary key).
    WholeTable,
    /// These rows (PK cell values) were written since the snapshot.
    Rows(Vec<Vec<Value>>),
    /// The table changed but no history entry covers it — an internal
    /// invariant breach; callers treat it as a whole-table conflict.
    Uncovered,
}

impl CommitHistory {
    /// Register a snapshot at the current sequence; returns the sequence
    /// to validate against (and to pass to
    /// [`unpin_snapshot`](CommitHistory::unpin_snapshot)).
    pub(crate) fn pin_snapshot(&mut self) -> u64 {
        let seq = self.next_seq;
        *self.pins.entry(seq).or_insert(0) += 1;
        seq
    }

    /// Release a pinned snapshot and truncate entries nobody needs.
    pub(crate) fn unpin_snapshot(&mut self, seq: u64) {
        if let Some(count) = self.pins.get_mut(&seq) {
            *count -= 1;
            if *count == 0 {
                self.pins.remove(&seq);
            }
        }
        self.gc();
    }

    /// Append one commit's write sets and advance the sequence. Runs the
    /// watermark GC, so with no pinned snapshot the entry is dropped
    /// immediately and the chain stays empty under churn.
    pub(crate) fn record_commit(&mut self, tables: Vec<(String, WriteSet)>) -> u64 {
        self.next_seq += 1;
        let seq = self.next_seq;
        if !tables.is_empty() {
            self.entries.push_back(CommitEntry { seq, tables });
        }
        self.gc();
        seq
    }

    /// The oldest sequence any live snapshot still needs entries after.
    pub(crate) fn watermark(&self) -> u64 {
        self.pins.keys().next().copied().unwrap_or(self.next_seq)
    }

    fn gc(&mut self) {
        let watermark = self.watermark();
        while self.entries.front().is_some_and(|e| e.seq <= watermark) {
            self.entries.pop_front();
        }
    }

    /// Intersect a transaction's write set for `table` against every
    /// commit recorded after `snapshot_seq`.
    pub(crate) fn check_rows(
        &self,
        snapshot_seq: u64,
        table: &str,
        ours: &WriteSet,
    ) -> RowCheck {
        let our_keys = match ours {
            WriteSet::Whole => return RowCheck::WholeTable,
            WriteSet::Rows { keys, .. } => keys,
        };
        let mut covered = false;
        let mut hits: Vec<Vec<Value>> = Vec::new();
        for entry in self.entries.iter().rev() {
            if entry.seq <= snapshot_seq {
                break;
            }
            for (name, theirs) in &entry.tables {
                if name != table {
                    continue;
                }
                covered = true;
                match theirs {
                    WriteSet::Whole => return RowCheck::WholeTable,
                    WriteSet::Rows { keys, .. } => {
                        for (key, values) in keys {
                            if our_keys.contains_key(key) {
                                hits.push(values.clone());
                            }
                        }
                    }
                }
            }
        }
        if !hits.is_empty() {
            RowCheck::Rows(hits)
        } else if covered {
            RowCheck::Disjoint
        } else {
            RowCheck::Uncovered
        }
    }

    pub(crate) fn stats(&self) -> MvccStats {
        MvccStats {
            committed_seq: self.next_seq,
            history_entries: self.entries.len(),
            pinned_snapshots: self.pins.values().sum(),
            watermark: self.watermark(),
        }
    }
}

/// Observable state of the MVCC commit history (see
/// [`SharedDb::mvcc_stats`](crate::shared::SharedDb::mvcc_stats)):
/// how many commits have been sequenced, how much of the version chain a
/// pinned snapshot is keeping alive, and where the GC watermark sits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MvccStats {
    /// Sequence number of the most recent commit (0 = none).
    pub committed_seq: u64,
    /// Commit entries currently retained for validation.
    pub history_entries: usize,
    /// Open transactions holding a pinned snapshot.
    pub pinned_snapshots: usize,
    /// Entries at or below this sequence have been (or will be) GC'd.
    pub watermark: u64,
}

// ---------------------------------------------------------------------------
// Commit-time validation
// ---------------------------------------------------------------------------

fn fmt_version(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "absent".to_string(),
    }
}

fn fmt_keys(keys: &[Vec<Value>]) -> String {
    const MAX: usize = 5;
    let mut parts: Vec<String> = keys
        .iter()
        .take(MAX)
        .map(|values| {
            if values.len() == 1 {
                values[0].to_string()
            } else {
                let cells: Vec<String> = values.iter().map(Value::to_string).collect();
                format!("({})", cells.join(", "))
            }
        })
        .collect();
    if keys.len() > MAX {
        parts.push(format!("and {} more", keys.len() - MAX));
    }
    format!("[{}]", parts.join(", "))
}

fn whole_table_conflict(name: &str, pinned: Option<u64>, live: Option<u64>) -> Error {
    Error::Conflict(format!(
        "table '{name}' changed since this transaction began \
         (snapshot version {}, committed version {}); \
         first committer wins — retry the transaction",
        fmt_version(pinned),
        fmt_version(live),
    ))
}

fn row_conflict(name: &str, rows: &[Vec<Value>], pinned: Option<u64>, live: Option<u64>) -> Error {
    Error::Conflict(format!(
        "rows {} of table '{name}' were written by a concurrent commit after \
         this transaction began (snapshot version {}, committed version {}); \
         first committer wins — retry the transaction",
        fmt_keys(rows),
        fmt_version(pinned),
        fmt_version(live),
    ))
}

/// Row-level first-committer-wins validation for one written table.
///
/// Returns `Ok(true)` when the live table is exactly the snapshot's (the
/// commit installs its working table as-is), `Ok(false)` when the table
/// changed but every intervening commit's write set is disjoint from the
/// transaction's (the commit must **rebase** its rows onto the live
/// table), and [`Error::Conflict`] — naming the overlapping rows — when
/// the write sets intersect, when either side is table-granular, or when
/// the table was dropped or recreated.
pub(crate) fn validate_table(
    txn: &Txn,
    name: &str,
    live: Option<&Arc<Table>>,
    history: &CommitHistory,
) -> Result<bool> {
    let pinned = txn.snapshot.get(name);
    let clean = match (pinned, live) {
        (None, None) => true,
        (Some(a), Some(b)) => Arc::ptr_eq(a, b),
        _ => false,
    };
    if clean {
        return Ok(true);
    }
    let pinned_v = pinned.map(|t| t.version);
    let live_v = live.map(|t| t.version);
    let ours = match txn.write_set(name) {
        Some(ws) => ws,
        None => return Err(whole_table_conflict(name, pinned_v, live_v)),
    };
    // Rebase needs a base on both sides: a dropped or freshly created
    // table cannot be patched row-by-row.
    if matches!(ours, WriteSet::Whole) || pinned.is_none() || live.is_none() {
        return Err(whole_table_conflict(name, pinned_v, live_v));
    }
    match history.check_rows(txn.snapshot_seq, name, ours) {
        RowCheck::Disjoint => Ok(false),
        RowCheck::WholeTable => Err(whole_table_conflict(name, pinned_v, live_v)),
        RowCheck::Rows(rows) => Err(row_conflict(name, &rows, pinned_v, live_v)),
        RowCheck::Uncovered => Err(Error::Conflict(format!(
            "table '{name}' changed since this transaction began but no commit \
             history covers the change (snapshot version {}, committed version {}); \
             first committer wins — retry the transaction",
            fmt_version(pinned_v),
            fmt_version(live_v),
        ))),
    }
}

/// A transaction's committed effect on one table.
#[derive(Debug, Clone)]
pub enum TableDelta {
    /// Install this table version (covers create, insert, update, DDL).
    Put(Arc<Table>),
    /// The table was dropped.
    Drop,
}

/// Diff the written tables of a transaction: for each name in `written`,
/// what must be installed to turn `base` into `working`. Unchanged
/// entries (same `Arc`) produce no delta.
pub(crate) fn catalog_deltas(
    written: &[String],
    base: &Catalog,
    working: &Catalog,
) -> Vec<(String, TableDelta)> {
    let mut out = Vec::new();
    for name in written {
        match (base.get(name), working.get(name)) {
            (None, None) => {}
            (Some(_), None) => out.push((name.clone(), TableDelta::Drop)),
            (b, Some(w)) => {
                if b.is_some_and(|b| Arc::ptr_eq(b, w)) {
                    continue;
                }
                out.push((name.clone(), TableDelta::Put(w.clone())));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Row patches: the shared rebase / WAL-delta planning
// ---------------------------------------------------------------------------

/// Derive the row patch that turns any base holding the untouched rows
/// into the write set's final state: `deletes` are the touched keys no
/// longer present in the working table (as PK cell tuples), `upserts`
/// are the working table's touched rows in working-table order.
///
/// Deletes are sorted by their encoded form so the WAL bytes for a given
/// logical commit are deterministic.
pub(crate) fn build_row_patch(
    working: &Table,
    keys: &HashMap<PkKey, Vec<Value>>,
) -> (Vec<Row>, Vec<Row>) {
    let mut deletes: Vec<Row> = keys
        .iter()
        .filter(|(key, _)| !working.contains_pk_key(key))
        .map(|(_, values)| Row::from(values.clone()))
        .collect();
    deletes.sort_by(|a, b| {
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        crate::storage::encode_row(&mut ea, a);
        crate::storage::encode_row(&mut eb, b);
        ea.cmp(&eb)
    });
    let mut upserts = Vec::new();
    for row in &working.rows {
        if let Some(key) = working.pk_key_of(row) {
            if keys.contains_key(&key) {
                upserts.push(row.clone());
            }
        }
    }
    (deletes, upserts)
}

/// Rebase a transaction's rows onto the live table: apply the row patch
/// to a copy of `live` and stamp a version above both lineages, so the
/// versioned identity "(name, version) implies equal contents" survives
/// concurrent same-table commits.
pub(crate) fn rebase_table(
    live: &Arc<Table>,
    working: &Arc<Table>,
    deletes: &[Row],
    upserts: Vec<Row>,
) -> Result<Arc<Table>> {
    let mut patched = (**live).clone();
    patched.apply_row_patch(deletes, upserts)?;
    patched.version = live.version.max(working.version) + 1;
    Ok(Arc::new(patched))
}

/// Encode one delta for the WAL, preferring the compact forms: when the
/// new table version is the base plus appended rows (schema, primary key
/// and every base row `Arc`-identical), only the new rows are logged;
/// otherwise a row-granular write set logs a [`WalDelta::RowPatch`] of
/// just the touched rows. A full [`WalDelta::Put`] image is the fallback
/// (DDL, no primary key, or a patch that cannot reproduce row order).
pub(crate) fn wal_delta(
    name: &str,
    base: Option<&Arc<Table>>,
    delta: &TableDelta,
    writes: Option<&WriteSet>,
) -> WalDelta {
    match delta {
        TableDelta::Drop => WalDelta::Drop { name: name.to_string() },
        TableDelta::Put(new) => {
            if let Some(b) = base {
                if is_pure_append(b, new) {
                    return WalDelta::Append {
                        table: name.to_string(),
                        rows: new.rows[b.rows.len()..].to_vec(),
                        new_version: new.version,
                    };
                }
                if let Some(ws @ WriteSet::Rows { keys, .. }) = writes {
                    if ws.is_ordered_rows() && b.has_primary_key() {
                        let (deletes, upserts) = build_row_patch(new, keys);
                        return WalDelta::RowPatch {
                            table: name.to_string(),
                            deletes,
                            upserts,
                            new_version: new.version,
                        };
                    }
                }
            }
            WalDelta::Put { table: new.clone() }
        }
    }
}

fn is_pure_append(base: &Table, new: &Table) -> bool {
    new.columns == base.columns
        && new.primary_key == base.primary_key
        && new.rows.len() >= base.rows.len()
        && base.rows.iter().zip(&new.rows).all(|(a, b)| Arc::ptr_eq(a, b))
}

/// The WAL record group for one committed transaction:
/// `Begin · Delta* · Commit`, appended (and fsynced) as one write.
/// `writes` supplies the per-table write sets (lowercased names) used to
/// pick row-granular encodings.
pub(crate) fn commit_records(
    txn_id: u64,
    base: &Catalog,
    deltas: &[(String, TableDelta)],
    writes: &HashMap<String, WriteSet>,
) -> Vec<WalRecord> {
    let mut recs = Vec::with_capacity(deltas.len() + 2);
    recs.push(WalRecord::Begin { txn: txn_id });
    for (name, delta) in deltas {
        recs.push(WalRecord::Delta {
            txn: txn_id,
            delta: wal_delta(name, base.get(name), delta, writes.get(name)),
        });
    }
    recs.push(WalRecord::Commit { txn: txn_id });
    recs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Column;

    fn table(rows: usize) -> Table {
        let mut t =
            Table::new("t", vec![Column::new("id")], &["id".to_string()]).unwrap();
        for i in 0..rows {
            t.insert_row(vec![(i as i64).into()]).unwrap();
        }
        t
    }

    fn rows_writes(ids: &[i64]) -> StmtWrites {
        StmtWrites::Rows {
            keys: ids.iter().map(|&i| vec![Value::Integer(i)]).collect(),
            inserted: false,
            reorder: false,
        }
    }

    #[test]
    fn validation_passes_on_untouched_tables() {
        let mut cat = Catalog::new();
        cat.put_table(table(2));
        let mgr = TxnManager::default();
        let mut txn = mgr.begin(cat.clone());
        txn.record_write("t", rows_writes(&[0]));
        let history = CommitHistory::default();
        assert!(validate_table(&txn, "t", cat.get("t"), &history).unwrap());
    }

    #[test]
    fn whole_table_write_conflicts_on_intervening_commit() {
        let mut cat = Catalog::new();
        cat.put_table(table(2));
        let mut history = CommitHistory::default();
        let mgr = TxnManager::default();
        let mut txn = mgr.begin(cat.clone());
        txn.snapshot_seq = history.pin_snapshot();
        txn.record_write("t", StmtWrites::Whole);
        // Another session commits to t after the snapshot was pinned.
        cat.get_mut("t").unwrap().insert_row(vec![9.into()]).unwrap();
        history.record_commit(vec![(
            "t".into(),
            WriteSet::from_stmt(rows_writes(&[9])),
        )]);
        let err = validate_table(&txn, "t", cat.get("t"), &history).unwrap_err();
        assert!(matches!(err, Error::Conflict(_)));
    }

    #[test]
    fn disjoint_row_writes_rebase_instead_of_conflicting() {
        let mut cat = Catalog::new();
        cat.put_table(table(4));
        let mut history = CommitHistory::default();
        let mgr = TxnManager::default();
        let mut txn = mgr.begin(cat.clone());
        txn.snapshot_seq = history.pin_snapshot();
        txn.record_write("t", rows_writes(&[1]));
        // A concurrent commit touches a *different* row.
        cat.get_mut("t").unwrap().insert_row(vec![9.into()]).unwrap();
        history.record_commit(vec![(
            "t".into(),
            WriteSet::from_stmt(rows_writes(&[2])),
        )]);
        let clean = validate_table(&txn, "t", cat.get("t"), &history).unwrap();
        assert!(!clean, "disjoint rows must take the rebase path, not conflict");
    }

    #[test]
    fn overlapping_row_writes_conflict_and_name_the_rows() {
        let mut cat = Catalog::new();
        cat.put_table(table(4));
        let mut history = CommitHistory::default();
        let mgr = TxnManager::default();
        let mut txn = mgr.begin(cat.clone());
        txn.snapshot_seq = history.pin_snapshot();
        txn.record_write("t", rows_writes(&[1, 3]));
        cat.get_mut("t").unwrap();
        history.record_commit(vec![(
            "t".into(),
            WriteSet::from_stmt(rows_writes(&[3])),
        )]);
        let err = validate_table(&txn, "t", cat.get("t"), &history).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, Error::Conflict(_)));
        assert!(msg.contains("[3]"), "must name the conflicting row: {msg}");
        assert!(
            !msg.contains("Some(") && !msg.contains("None"),
            "versions must render as plain numbers / absent: {msg}"
        );
    }

    #[test]
    fn conflict_versions_render_plainly() {
        let mut cat = Catalog::new();
        cat.put_table(table(2));
        let mgr = TxnManager::default();
        let mut txn = mgr.begin(cat.clone());
        txn.record_write("t", StmtWrites::Whole);
        // Drop: committed version must read "absent", not "None".
        cat.drop_table("t").unwrap();
        let history = CommitHistory::default();
        let err = validate_table(&txn, "t", cat.get("t"), &history).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("snapshot version 0"), "{msg}");
        assert!(msg.contains("committed version absent"), "{msg}");
    }

    #[test]
    fn drop_and_recreate_conflicts_even_with_row_writes() {
        let mut cat = Catalog::new();
        cat.put_table(table(2));
        let mut history = CommitHistory::default();
        let mgr = TxnManager::default();
        let mut txn = mgr.begin(cat.clone());
        txn.snapshot_seq = history.pin_snapshot();
        txn.record_write("t", rows_writes(&[1]));
        // Same name, same fresh version number — but a different object.
        cat.drop_table("t").unwrap();
        cat.put_table(table(2));
        history.record_commit(vec![("t".into(), WriteSet::Whole)]);
        assert!(matches!(
            validate_table(&txn, "t", cat.get("t"), &history),
            Err(Error::Conflict(_))
        ));
    }

    #[test]
    fn history_gc_is_bounded_by_pins() {
        let mut history = CommitHistory::default();
        // No pins: entries are dropped immediately.
        for _ in 0..10 {
            history.record_commit(vec![("t".into(), WriteSet::Whole)]);
        }
        assert_eq!(history.stats().history_entries, 0);
        assert_eq!(history.stats().committed_seq, 10);

        // A pinned snapshot keeps every later entry alive.
        let pin = history.pin_snapshot();
        for _ in 0..5 {
            history.record_commit(vec![("t".into(), WriteSet::Whole)]);
        }
        assert_eq!(history.stats().history_entries, 5);
        assert_eq!(history.stats().pinned_snapshots, 1);
        assert_eq!(history.watermark(), pin);

        // Unpinning drains the chain.
        history.unpin_snapshot(pin);
        assert_eq!(history.stats().history_entries, 0);
        assert_eq!(history.stats().pinned_snapshots, 0);
    }

    #[test]
    fn check_rows_sees_only_commits_after_the_snapshot() {
        let mut history = CommitHistory::default();
        let early = history.pin_snapshot();
        history.record_commit(vec![("t".into(), WriteSet::from_stmt(rows_writes(&[1])))]);
        let late = history.pin_snapshot();
        history.record_commit(vec![("t".into(), WriteSet::from_stmt(rows_writes(&[2])))]);

        let ours = WriteSet::from_stmt(rows_writes(&[1]));
        assert!(matches!(history.check_rows(early, "t", &ours), RowCheck::Rows(_)));
        // The commit of row 1 predates the later snapshot.
        assert!(matches!(history.check_rows(late, "t", &ours), RowCheck::Disjoint));
        history.unpin_snapshot(early);
        history.unpin_snapshot(late);
    }

    #[test]
    fn deltas_skip_unwritten_and_unchanged() {
        let mut base = Catalog::new();
        base.put_table(table(2));
        let working = base.clone();
        // Written but untouched (same Arc): no delta.
        let deltas = catalog_deltas(&["t".to_string()], &base, &working);
        assert!(deltas.is_empty());
    }

    #[test]
    fn pure_insert_encodes_as_append() {
        let mut base_cat = Catalog::new();
        base_cat.put_table(table(3));
        let base = base_cat.get("t").unwrap().clone();
        let mut working = base_cat.clone();
        working.get_mut("t").unwrap().insert_row(vec![10.into()]).unwrap();
        let new = working.get("t").unwrap().clone();

        match wal_delta("t", Some(&base), &TableDelta::Put(new.clone()), None) {
            WalDelta::Append { rows, new_version, .. } => {
                assert_eq!(rows.len(), 1);
                assert_eq!(new_version, new.version);
            }
            other => panic!("expected append delta, got {other:?}"),
        }
    }

    #[test]
    fn row_writes_encode_as_row_patch() {
        let mut base_cat = Catalog::new();
        base_cat.put_table(table(4));
        let base = base_cat.get("t").unwrap().clone();

        // Delete row 0: an in-place patch of one delete.
        let mut working = base_cat.clone();
        working.get_mut("t").unwrap().retain_rows(|r| r[0].as_i64() != Some(0));
        let new = working.get("t").unwrap().clone();
        let ws = WriteSet::from_stmt(rows_writes(&[0]));
        match wal_delta("t", Some(&base), &TableDelta::Put(new.clone()), Some(&ws)) {
            WalDelta::RowPatch { deletes, upserts, new_version, .. } => {
                assert_eq!(deletes.len(), 1);
                assert!(upserts.is_empty());
                assert_eq!(new_version, new.version);
            }
            other => panic!("expected row patch, got {other:?}"),
        }

        // Without a write set the same delta falls back to a full image.
        assert!(matches!(
            wal_delta("t", Some(&base), &TableDelta::Put(new), None),
            WalDelta::Put { .. }
        ));
    }

    #[test]
    fn reordering_updates_fall_back_to_full_image() {
        let mut base_cat = Catalog::new();
        base_cat.put_table(table(3));
        let base = base_cat.get("t").unwrap().clone();
        let mut working = base_cat.clone();
        working.get_mut("t").unwrap().retain_rows(|r| r[0].as_i64() != Some(1));
        let new = working.get("t").unwrap().clone();
        let ws = WriteSet::Rows {
            keys: HashMap::from([(
                vec![Value::Integer(1).group_key()],
                vec![Value::Integer(1)],
            )]),
            reorder: true,
        };
        assert!(matches!(
            wal_delta("t", Some(&base), &TableDelta::Put(new), Some(&ws)),
            WalDelta::Put { .. }
        ));
    }

    #[test]
    fn row_patch_reproduces_the_working_table() {
        // Mixed insert + update + delete, then: patch(base) == working.
        let mut base_cat = Catalog::new();
        base_cat.put_table(table(4)); // ids 0..4
        let base = base_cat.get("t").unwrap().clone();

        let mut working_cat = base_cat.clone();
        {
            let t = working_cat.get_mut("t").unwrap();
            t.retain_rows(|r| r[0].as_i64() != Some(2)); // delete 2
            t.insert_row(vec![7.into()]).unwrap(); // insert 7
        }
        let working = working_cat.get("t").unwrap().clone();

        let mut txn = TxnManager::default().begin(base_cat.clone());
        txn.record_write("t", rows_writes(&[2]));
        txn.record_write(
            "t",
            StmtWrites::Rows { keys: vec![vec![7.into()]], inserted: true, reorder: false },
        );
        let Some(WriteSet::Rows { keys, .. }) = txn.write_set("t") else {
            panic!("expected row write set");
        };
        let (deletes, upserts) = build_row_patch(&working, keys);
        let mut patched = (*base).clone();
        patched.apply_row_patch(&deletes, upserts).unwrap();
        patched.version = working.version;
        assert_eq!(patched, *working, "patch(base) must equal the working table");
    }

    #[test]
    fn delete_then_reinsert_sets_reorder() {
        let cat = Catalog::new();
        let mut txn = TxnManager::default().begin(cat);
        txn.record_write("t", rows_writes(&[1])); // delete touches key 1
        txn.record_write(
            "t",
            StmtWrites::Rows { keys: vec![vec![1.into()]], inserted: true, reorder: false },
        );
        match txn.write_set("t") {
            Some(WriteSet::Rows { reorder, .. }) => assert!(*reorder),
            other => panic!("expected row write set, got {other:?}"),
        }
    }

    #[test]
    fn whole_absorbs_row_writes() {
        let cat = Catalog::new();
        let mut txn = TxnManager::default().begin(cat);
        txn.record_write("t", rows_writes(&[1]));
        txn.record_write("t", StmtWrites::Whole);
        txn.record_write("t", rows_writes(&[2]));
        assert!(matches!(txn.write_set("t"), Some(WriteSet::Whole)));
        assert_eq!(txn.written(), ["t"]);
    }

    #[test]
    fn txn_ids_are_unique_and_seeded() {
        let mgr = TxnManager::new(41);
        let a = mgr.begin(Catalog::new());
        let b = mgr.begin(Catalog::new());
        assert_eq!(a.id(), 41);
        assert_eq!(b.id(), 42);
    }
}
