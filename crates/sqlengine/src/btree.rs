//! # B-tree tables, heap chains and overflow blobs over slotted pages
//!
//! The on-disk structures of the paged store ([`crate::pager`]):
//!
//! * **B-tree** pages for tables with a primary key: leaves hold
//!   `(key, seq, row)` cells sorted by encoded-key order and are linked
//!   left-to-right (`next` pointer in the leaf header) so range scans and
//!   full materialization walk the leaf chain without re-descending;
//!   interior pages hold separator keys. Page ids are **stable** — the
//!   shadow-slot scheme in the pager gives crash atomicity without
//!   relocating pages, so leaf links never go stale.
//! * **Heap** chains for tables without a primary key: append-only page
//!   chains of `(seq, row)` cells.
//! * **Overflow** chains for cells whose row bytes exceed
//!   [`MAX_INLINE_VAL`]: the cell stores the chain head, the row bytes
//!   span linked overflow pages.
//!
//! Keys are the `storage::encode_value` image of the row's primary-key
//! values (count-prefixed, like `encode_row`). [`cmp_keys`] compares two
//! encoded keys by decoding scalars in lockstep with **exactly**
//! `Value::sort_cmp` semantics (NULL < numerics-as-f64, NaN last among
//! numerics < text in byte order) — the same total order the executor
//! uses, and an equality that coincides with `Value::group_key`, which is
//! what makes tree upserts agree with the in-memory `pk_index`.
//!
//! Every cell carries a `seq`: a sparse, monotone insertion stamp. An
//! upsert of an existing key keeps the old cell's `seq`; materializing a
//! table sorts by `seq`, which reproduces the in-memory row order —
//! in-place updates stay in place, appends append — byte-identically.
//!
//! Deletes remove cells without rebalancing: an underfull (even empty)
//! leaf stays linked and is simply skipped by scans. That trades space
//! for a drastically simpler structure; `Put` deltas (whole-table
//! rewrites) rebuild the tree compactly.

use std::cmp::Ordering;

use crate::bufpool::PageRef;
use crate::error::{Error, Result};
use crate::pager::PAGE_PAYLOAD;
use crate::storage::{get_u32, get_u64, get_u8, put_u32, put_u64, take, take_array};

/// Page types stored in the page header.
pub(crate) const PT_LEAF: u8 = 1;
pub(crate) const PT_INTERIOR: u8 = 2;
pub(crate) const PT_HEAP: u8 = 3;
pub(crate) const PT_OVERFLOW: u8 = 4;

/// Nil page id (page ids start at 1).
pub(crate) const NIL: u64 = 0;

/// Row bytes above this spill to an overflow chain.
pub(crate) const MAX_INLINE_VAL: usize = 1024;

/// Largest encoded key a cell may carry: an overflow cell
/// (`flag + klen + key + seq + total + start`) must always fit a leaf
/// page on its own, so splits can never fail.
pub(crate) const MAX_KEY: usize = PAGE_PAYLOAD - LEAF_HDR - CELL_FIXED - 12;

const LEAF_HDR: usize = 8 + 2; // next + ncells (heap pages reuse this layout)
const INTERIOR_HDR: usize = 2 + 8; // ncells + first child
const OVERFLOW_HDR: usize = 8 + 4; // next + len
const CELL_FIXED: usize = 1 + 2 + 8; // flag + klen + seq

/// The page access surface the tree layer needs; implemented by the
/// pager's buffer-pool-backed I/O context. `read` returns a *pinned*
/// page — tree operations keep their whole descent path pinned, which is
/// what makes the pool's pin accounting load-bearing.
pub(crate) trait PageStore {
    fn read(&mut self, id: u64) -> Result<PageRef>;
    fn write(&mut self, id: u64, typ: u8, data: Vec<u8>) -> Result<()>;
    fn alloc(&mut self) -> Result<u64>;
    fn free(&mut self, id: u64) -> Result<()>;
}

// ---------------------------------------------------------------------------
// Encoded-key comparison
// ---------------------------------------------------------------------------

enum Scalar<'a> {
    Null,
    Num(f64),
    Text(&'a [u8]),
}

fn next_scalar<'a>(buf: &'a [u8], pos: &mut usize) -> Result<Scalar<'a>> {
    match get_u8(buf, pos)? {
        0 => Ok(Scalar::Null),
        1 => Ok(Scalar::Num(i64::from_le_bytes(take_array(buf, pos)?) as f64)),
        2 => Ok(Scalar::Num(f64::from_bits(u64::from_le_bytes(take_array(buf, pos)?)))),
        3 => {
            let n = get_u32(buf, pos)? as usize;
            Ok(Scalar::Text(take(buf, pos, n)?))
        }
        t => Err(Error::Internal(format!("btree: unknown value tag {t} in key"))),
    }
}

/// Compare two encoded keys with `Value::sort_cmp` semantics, without
/// materializing values.
pub(crate) fn cmp_keys(a: &[u8], b: &[u8]) -> Result<Ordering> {
    let (mut pa, mut pb) = (0usize, 0usize);
    let na = get_u32(a, &mut pa)?;
    let nb = get_u32(b, &mut pb)?;
    for _ in 0..na.min(nb) {
        let va = next_scalar(a, &mut pa)?;
        let vb = next_scalar(b, &mut pb)?;
        let ord = match (va, vb) {
            (Scalar::Null, Scalar::Null) => Ordering::Equal,
            (Scalar::Null, _) => Ordering::Less,
            (_, Scalar::Null) => Ordering::Greater,
            (Scalar::Text(x), Scalar::Text(y)) => x.cmp(y),
            (Scalar::Text(_), _) => Ordering::Greater,
            (_, Scalar::Text(_)) => Ordering::Less,
            (Scalar::Num(x), Scalar::Num(y)) => x.partial_cmp(&y).unwrap_or(
                // NaNs sort after every other numeric, equal to each other
                // — exactly `Value::sort_cmp`.
                match (x.is_nan(), y.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    (false, false) => Ordering::Equal,
                },
            ),
        };
        if ord != Ordering::Equal {
            return Ok(ord);
        }
    }
    Ok(na.cmp(&nb))
}

// ---------------------------------------------------------------------------
// Cell / node codecs
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum CellVal {
    Inline(Vec<u8>),
    Overflow { total: u32, start: u64 },
}

#[derive(Clone)]
struct Cell {
    key: Vec<u8>,
    seq: u64,
    val: CellVal,
}

impl Cell {
    fn size(&self) -> usize {
        CELL_FIXED
            + self.key.len()
            + 4
            + match &self.val {
                CellVal::Inline(v) => v.len(),
                CellVal::Overflow { .. } => 8,
            }
    }
}

struct Leaf {
    next: u64,
    cells: Vec<Cell>,
}

impl Leaf {
    fn size(&self) -> usize {
        LEAF_HDR + self.cells.iter().map(Cell::size).sum::<usize>()
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size());
        put_u64(&mut out, self.next);
        out.extend_from_slice(&(self.cells.len() as u16).to_le_bytes());
        for c in &self.cells {
            match &c.val {
                CellVal::Inline(v) => {
                    out.push(0);
                    out.extend_from_slice(&(c.key.len() as u16).to_le_bytes());
                    out.extend_from_slice(&c.key);
                    put_u64(&mut out, c.seq);
                    put_u32(&mut out, v.len() as u32);
                    out.extend_from_slice(v);
                }
                CellVal::Overflow { total, start } => {
                    out.push(1);
                    out.extend_from_slice(&(c.key.len() as u16).to_le_bytes());
                    out.extend_from_slice(&c.key);
                    put_u64(&mut out, c.seq);
                    put_u32(&mut out, *total);
                    put_u64(&mut out, *start);
                }
            }
        }
        out
    }

    fn decode(data: &[u8]) -> Result<Leaf> {
        let mut pos = 0usize;
        let next = get_u64(data, &mut pos)?;
        let n = u16::from_le_bytes(take_array(data, &mut pos)?) as usize;
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            let flag = get_u8(data, &mut pos)?;
            let klen = u16::from_le_bytes(take_array(data, &mut pos)?) as usize;
            let key = take(data, &mut pos, klen)?.to_vec();
            let seq = get_u64(data, &mut pos)?;
            let val = match flag {
                0 => {
                    let vlen = get_u32(data, &mut pos)? as usize;
                    CellVal::Inline(take(data, &mut pos, vlen)?.to_vec())
                }
                1 => {
                    let total = get_u32(data, &mut pos)?;
                    let start = get_u64(data, &mut pos)?;
                    CellVal::Overflow { total, start }
                }
                f => return Err(Error::Internal(format!("btree: bad cell flag {f}"))),
            };
            cells.push(Cell { key, seq, val });
        }
        Ok(Leaf { next, cells })
    }
}

struct Interior {
    first: u64,
    cells: Vec<(Vec<u8>, u64)>,
}

impl Interior {
    fn size(&self) -> usize {
        INTERIOR_HDR + self.cells.iter().map(|(k, _)| 2 + k.len() + 8).sum::<usize>()
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size());
        out.extend_from_slice(&(self.cells.len() as u16).to_le_bytes());
        put_u64(&mut out, self.first);
        for (k, c) in &self.cells {
            out.extend_from_slice(&(k.len() as u16).to_le_bytes());
            out.extend_from_slice(k);
            put_u64(&mut out, *c);
        }
        out
    }

    fn decode(data: &[u8]) -> Result<Interior> {
        let mut pos = 0usize;
        let n = u16::from_le_bytes(take_array(data, &mut pos)?) as usize;
        let first = get_u64(data, &mut pos)?;
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            let klen = u16::from_le_bytes(take_array(data, &mut pos)?) as usize;
            let key = take(data, &mut pos, klen)?.to_vec();
            let child = get_u64(data, &mut pos)?;
            cells.push((key, child));
        }
        Ok(Interior { first, cells })
    }

    /// Child to descend into for `key`: the last child whose separator is
    /// <= key (or `first` when key sorts before every separator).
    fn child_for(&self, key: &[u8]) -> Result<(usize, u64)> {
        let mut idx = 0usize; // 0 = first, i+1 = cells[i]
        let mut child = self.first;
        for (i, (sep, c)) in self.cells.iter().enumerate() {
            if cmp_keys(key, sep)? == Ordering::Less {
                break;
            }
            idx = i + 1;
            child = *c;
        }
        Ok((idx, child))
    }
}

fn expect_type(page: &PageRef, id: u64, want: u8) -> Result<()> {
    if page.buf.typ != want {
        return Err(Error::Internal(format!(
            "btree: page {id} has type {}, expected {want}",
            page.buf.typ
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Overflow chains
// ---------------------------------------------------------------------------

const OVERFLOW_CAP: usize = PAGE_PAYLOAD - OVERFLOW_HDR;

fn overflow_write(io: &mut dyn PageStore, bytes: &[u8]) -> Result<u64> {
    // Allocate the chain first so each page can point at its successor.
    let npages = bytes.len().div_ceil(OVERFLOW_CAP).max(1);
    let mut ids = Vec::with_capacity(npages);
    for _ in 0..npages {
        ids.push(io.alloc()?);
    }
    for (i, chunk) in bytes.chunks(OVERFLOW_CAP).enumerate() {
        let next = ids.get(i + 1).copied().unwrap_or(NIL);
        let mut data = Vec::with_capacity(OVERFLOW_HDR + chunk.len());
        put_u64(&mut data, next);
        put_u32(&mut data, chunk.len() as u32);
        data.extend_from_slice(chunk);
        io.write(ids[i], PT_OVERFLOW, data)?;
    }
    ids.first()
        .copied()
        .ok_or_else(|| Error::Internal("btree: empty overflow chain".into()))
}

fn overflow_read(io: &mut dyn PageStore, start: u64, total: u32) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(total as usize);
    let mut id = start;
    while id != NIL {
        let page = io.read(id)?;
        expect_type(&page, id, PT_OVERFLOW)?;
        let data = &page.buf.data;
        let mut pos = 0usize;
        let next = get_u64(data, &mut pos)?;
        let len = get_u32(data, &mut pos)? as usize;
        out.extend_from_slice(take(data, &mut pos, len)?);
        if out.len() > total as usize {
            return Err(Error::Internal("btree: overflow chain longer than cell total".into()));
        }
        id = next;
    }
    if out.len() != total as usize {
        return Err(Error::Internal(format!(
            "btree: overflow chain holds {} bytes, cell says {total}",
            out.len()
        )));
    }
    Ok(out)
}

fn overflow_free(io: &mut dyn PageStore, start: u64) -> Result<()> {
    let mut id = start;
    while id != NIL {
        let next = {
            let page = io.read(id)?;
            expect_type(&page, id, PT_OVERFLOW)?;
            let mut pos = 0usize;
            get_u64(&page.buf.data, &mut pos)?
        };
        io.free(id)?;
        id = next;
    }
    Ok(())
}

fn make_val(io: &mut dyn PageStore, bytes: &[u8]) -> Result<CellVal> {
    if bytes.len() <= MAX_INLINE_VAL {
        Ok(CellVal::Inline(bytes.to_vec()))
    } else {
        let start = overflow_write(io, bytes)?;
        Ok(CellVal::Overflow { total: bytes.len() as u32, start })
    }
}

fn free_val(io: &mut dyn PageStore, val: &CellVal) -> Result<()> {
    if let CellVal::Overflow { start, .. } = val {
        overflow_free(io, *start)?;
    }
    Ok(())
}

fn read_val(io: &mut dyn PageStore, val: &CellVal) -> Result<Vec<u8>> {
    match val {
        CellVal::Inline(v) => Ok(v.clone()),
        CellVal::Overflow { total, start } => overflow_read(io, *start, *total),
    }
}

// ---------------------------------------------------------------------------
// B-tree operations
// ---------------------------------------------------------------------------

enum Ins {
    Done { replaced: bool },
    Split { sep: Vec<u8>, right: u64, replaced: bool },
}

/// Upsert `(key, seq, val)` into the tree rooted at `root` (`NIL` =
/// empty). Returns the (possibly new) root and whether an existing key
/// was replaced — a replace keeps the **old** cell's `seq`, so updated
/// rows keep their insertion position.
pub(crate) fn tree_insert(
    io: &mut dyn PageStore,
    root: u64,
    key: &[u8],
    seq: u64,
    val: &[u8],
) -> Result<(u64, bool)> {
    if key.len() > MAX_KEY {
        return Err(Error::Internal(format!(
            "btree: encoded primary key of {} bytes exceeds the {MAX_KEY}-byte page limit",
            key.len()
        )));
    }
    if root == NIL {
        let id = io.alloc()?;
        let cell = Cell { key: key.to_vec(), seq, val: make_val(io, val)? };
        let leaf = Leaf { next: NIL, cells: vec![cell] };
        io.write(id, PT_LEAF, leaf.encode())?;
        return Ok((id, false));
    }
    match insert_rec(io, root, key, seq, val)? {
        Ins::Done { replaced } => Ok((root, replaced)),
        Ins::Split { sep, right, replaced } => {
            let new_root = io.alloc()?;
            let node = Interior { first: root, cells: vec![(sep, right)] };
            io.write(new_root, PT_INTERIOR, node.encode())?;
            Ok((new_root, replaced))
        }
    }
}

fn insert_rec(
    io: &mut dyn PageStore,
    id: u64,
    key: &[u8],
    seq: u64,
    val: &[u8],
) -> Result<Ins> {
    let page = io.read(id)?;
    match page.buf.typ {
        PT_LEAF => {
            let mut leaf = Leaf::decode(&page.buf.data)?;
            drop(page);
            let mut pos = leaf.cells.len();
            let mut replaced = false;
            for (i, c) in leaf.cells.iter().enumerate() {
                match cmp_keys(key, &c.key)? {
                    Ordering::Less => {
                        pos = i;
                        break;
                    }
                    Ordering::Equal => {
                        pos = i;
                        replaced = true;
                        break;
                    }
                    Ordering::Greater => {}
                }
            }
            if replaced {
                let old = std::mem::replace(
                    &mut leaf.cells[pos].val,
                    make_val(io, val)?,
                );
                free_val(io, &old)?;
                // Keep the old seq: an update stays at its row position.
            } else {
                let cell = Cell { key: key.to_vec(), seq, val: make_val(io, val)? };
                leaf.cells.insert(pos, cell);
            }
            if leaf.size() <= PAGE_PAYLOAD {
                io.write(id, PT_LEAF, leaf.encode())?;
                return Ok(Ins::Done { replaced });
            }
            // Split: move the byte-balanced tail into a fresh right leaf.
            let mid = split_point(&leaf.cells);
            let right_cells: Vec<Cell> = leaf.cells.split_off(mid);
            let right_id = io.alloc()?;
            let sep = right_cells
                .first()
                .map(|c| c.key.clone())
                .ok_or_else(|| Error::Internal("btree: empty split".into()))?;
            let right = Leaf { next: leaf.next, cells: right_cells };
            leaf.next = right_id;
            io.write(right_id, PT_LEAF, right.encode())?;
            io.write(id, PT_LEAF, leaf.encode())?;
            Ok(Ins::Split { sep, right: right_id, replaced })
        }
        PT_INTERIOR => {
            let node = Interior::decode(&page.buf.data)?;
            let (slot, child) = node.child_for(key)?;
            // Hold the interior page pinned across the child recursion —
            // the descent path stays resident under eviction pressure.
            let result = insert_rec(io, child, key, seq, val)?;
            let (sep, right, replaced) = match result {
                Ins::Done { replaced } => {
                    drop(page);
                    return Ok(Ins::Done { replaced });
                }
                Ins::Split { sep, right, replaced } => (sep, right, replaced),
            };
            let mut node = Interior::decode(&page.buf.data)?;
            drop(page);
            node.cells.insert(slot, (sep, right));
            if node.size() <= PAGE_PAYLOAD {
                io.write(id, PT_INTERIOR, node.encode())?;
                return Ok(Ins::Done { replaced });
            }
            // Interior split: the median separator moves up.
            let mid = node.cells.len() / 2;
            let mut right_cells = node.cells.split_off(mid);
            let (up_key, up_child) = right_cells.remove(0);
            let right_id = io.alloc()?;
            let right_node = Interior { first: up_child, cells: right_cells };
            io.write(right_id, PT_INTERIOR, right_node.encode())?;
            io.write(id, PT_INTERIOR, node.encode())?;
            Ok(Ins::Split { sep: up_key, right: right_id, replaced })
        }
        t => Err(Error::Internal(format!("btree: unexpected page type {t} in tree"))),
    }
}

/// Byte-balanced split point: the smallest prefix holding at least half
/// the cell bytes (always leaving both sides non-empty).
fn split_point(cells: &[Cell]) -> usize {
    let total: usize = cells.iter().map(Cell::size).sum();
    let mut acc = 0usize;
    for (i, c) in cells.iter().enumerate() {
        acc += c.size();
        if acc * 2 >= total {
            return (i + 1).min(cells.len() - 1).max(1);
        }
    }
    (cells.len() / 2).max(1)
}

/// Delete `key`; returns whether a cell was removed. Leaves are never
/// rebalanced.
pub(crate) fn tree_delete(io: &mut dyn PageStore, root: u64, key: &[u8]) -> Result<bool> {
    if root == NIL {
        return Ok(false);
    }
    let leaf_id = find_leaf(io, root, key)?;
    let page = io.read(leaf_id)?;
    let mut leaf = Leaf::decode(&page.buf.data)?;
    drop(page);
    for i in 0..leaf.cells.len() {
        if cmp_keys(key, &leaf.cells[i].key)? == Ordering::Equal {
            let cell = leaf.cells.remove(i);
            free_val(io, &cell.val)?;
            io.write(leaf_id, PT_LEAF, leaf.encode())?;
            return Ok(true);
        }
    }
    Ok(false)
}

/// Point lookup: the row bytes for `key`, if present. Serving reads the
/// materialized tables, so outside tests this is only a consistency
/// oracle for the on-disk structure.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn tree_lookup(
    io: &mut dyn PageStore,
    root: u64,
    key: &[u8],
) -> Result<Option<Vec<u8>>> {
    if root == NIL {
        return Ok(None);
    }
    let leaf_id = find_leaf(io, root, key)?;
    let page = io.read(leaf_id)?;
    let leaf = Leaf::decode(&page.buf.data)?;
    drop(page);
    for c in &leaf.cells {
        if cmp_keys(key, &c.key)? == Ordering::Equal {
            return Ok(Some(read_val(io, &c.val)?));
        }
    }
    Ok(None)
}

fn find_leaf(io: &mut dyn PageStore, root: u64, key: &[u8]) -> Result<u64> {
    let mut id = root;
    // Pin the whole descent path until the leaf is found.
    let mut path: Vec<PageRef> = Vec::new();
    loop {
        let page = io.read(id)?;
        match page.buf.typ {
            PT_LEAF => return Ok(id),
            PT_INTERIOR => {
                let node = Interior::decode(&page.buf.data)?;
                let (_, child) = node.child_for(key)?;
                path.push(page);
                id = child;
            }
            t => return Err(Error::Internal(format!("btree: unexpected page type {t}"))),
        }
    }
}

fn leftmost_leaf(io: &mut dyn PageStore, root: u64) -> Result<u64> {
    let mut id = root;
    loop {
        let page = io.read(id)?;
        match page.buf.typ {
            PT_LEAF => return Ok(id),
            PT_INTERIOR => {
                let node = Interior::decode(&page.buf.data)?;
                let first = node.first;
                drop(page);
                id = first;
            }
            t => return Err(Error::Internal(format!("btree: unexpected page type {t}"))),
        }
    }
}

/// Walk every cell in key order along the leaf chain, yielding
/// `(seq, row bytes)`.
pub(crate) fn tree_scan_all(
    io: &mut dyn PageStore,
    root: u64,
    out: &mut Vec<(u64, Vec<u8>)>,
) -> Result<()> {
    if root == NIL {
        return Ok(());
    }
    let mut id = leftmost_leaf(io, root)?;
    while id != NIL {
        let page = io.read(id)?;
        expect_type(&page, id, PT_LEAF)?;
        let leaf = Leaf::decode(&page.buf.data)?;
        drop(page);
        for c in &leaf.cells {
            out.push((c.seq, read_val(io, &c.val)?));
        }
        id = leaf.next;
    }
    Ok(())
}

/// Leaf-linked range scan: every `(seq, row bytes)` whose key lies within
/// the given (inclusive/exclusive) bounds, in key order. Descends once to
/// the lower-bound leaf, then follows `next` links. Like [`tree_lookup`],
/// only tests read through this today.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn tree_scan_range(
    io: &mut dyn PageStore,
    root: u64,
    lower: Option<(&[u8], bool)>,
    upper: Option<(&[u8], bool)>,
    out: &mut Vec<(u64, Vec<u8>)>,
) -> Result<()> {
    if root == NIL {
        return Ok(());
    }
    let mut id = match lower {
        Some((key, _)) => find_leaf(io, root, key)?,
        None => leftmost_leaf(io, root)?,
    };
    while id != NIL {
        let page = io.read(id)?;
        expect_type(&page, id, PT_LEAF)?;
        let leaf = Leaf::decode(&page.buf.data)?;
        drop(page);
        for c in &leaf.cells {
            if let Some((lo, incl)) = lower {
                match cmp_keys(c.key.as_slice(), lo)? {
                    Ordering::Less => continue,
                    Ordering::Equal if !incl => continue,
                    _ => {}
                }
            }
            if let Some((hi, incl)) = upper {
                match cmp_keys(c.key.as_slice(), hi)? {
                    Ordering::Greater => return Ok(()),
                    Ordering::Equal if !incl => return Ok(()),
                    _ => {}
                }
            }
            out.push((c.seq, read_val(io, &c.val)?));
        }
        id = leaf.next;
    }
    Ok(())
}

/// Free every page of the tree (interior, leaf and overflow).
pub(crate) fn tree_free(io: &mut dyn PageStore, root: u64) -> Result<()> {
    if root == NIL {
        return Ok(());
    }
    let page = io.read(root)?;
    match page.buf.typ {
        PT_LEAF => {
            let leaf = Leaf::decode(&page.buf.data)?;
            drop(page);
            for c in &leaf.cells {
                free_val(io, &c.val)?;
            }
        }
        PT_INTERIOR => {
            let node = Interior::decode(&page.buf.data)?;
            drop(page);
            tree_free(io, node.first)?;
            for (_, child) in &node.cells {
                tree_free(io, *child)?;
            }
        }
        t => return Err(Error::Internal(format!("btree: unexpected page type {t}"))),
    }
    io.free(root)
}

// ---------------------------------------------------------------------------
// Heap chains (tables without a primary key)
// ---------------------------------------------------------------------------

/// Append `(seq, row bytes)` to the heap chain, returning the (possibly
/// new) `(head, tail)`.
pub(crate) fn heap_append(
    io: &mut dyn PageStore,
    head: u64,
    tail: u64,
    seq: u64,
    val: &[u8],
) -> Result<(u64, u64)> {
    let cell_val = make_val(io, val)?;
    let cell = Cell { key: Vec::new(), seq, val: cell_val };
    if head == NIL {
        let id = io.alloc()?;
        let leaf = Leaf { next: NIL, cells: vec![cell] };
        io.write(id, PT_HEAP, leaf.encode())?;
        return Ok((id, id));
    }
    let page = io.read(tail)?;
    expect_type(&page, tail, PT_HEAP)?;
    let mut leaf = Leaf::decode(&page.buf.data)?;
    drop(page);
    leaf.cells.push(cell);
    if leaf.size() <= PAGE_PAYLOAD {
        io.write(tail, PT_HEAP, leaf.encode())?;
        return Ok((head, tail));
    }
    let cell = leaf
        .cells
        .pop()
        .ok_or_else(|| Error::Internal("btree: heap append underflow".into()))?;
    let new_tail = io.alloc()?;
    leaf.next = new_tail;
    io.write(tail, PT_HEAP, leaf.encode())?;
    let fresh = Leaf { next: NIL, cells: vec![cell] };
    io.write(new_tail, PT_HEAP, fresh.encode())?;
    Ok((head, new_tail))
}

/// Walk the heap chain in append order, yielding `(seq, row bytes)`.
pub(crate) fn heap_scan(
    io: &mut dyn PageStore,
    head: u64,
    out: &mut Vec<(u64, Vec<u8>)>,
) -> Result<()> {
    let mut id = head;
    while id != NIL {
        let page = io.read(id)?;
        expect_type(&page, id, PT_HEAP)?;
        let leaf = Leaf::decode(&page.buf.data)?;
        drop(page);
        for c in &leaf.cells {
            out.push((c.seq, read_val(io, &c.val)?));
        }
        id = leaf.next;
    }
    Ok(())
}

/// Free the whole heap chain (and its overflow blobs).
pub(crate) fn heap_free(io: &mut dyn PageStore, head: u64) -> Result<()> {
    let mut id = head;
    while id != NIL {
        let page = io.read(id)?;
        expect_type(&page, id, PT_HEAP)?;
        let leaf = Leaf::decode(&page.buf.data)?;
        drop(page);
        for c in &leaf.cells {
            free_val(io, &c.val)?;
        }
        io.free(id)?;
        id = leaf.next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufpool::BufferPool;
    use crate::pager::PageBuf;
    use crate::value::Value;
    use std::sync::Arc;

    /// In-memory `PageStore`: a buffer pool big enough that every page
    /// stays resident, so `lookup` never misses and no page file exists.
    struct MemStore {
        pool: Arc<BufferPool>,
        next: u64,
    }

    impl MemStore {
        fn new() -> MemStore {
            MemStore { pool: BufferPool::new(1 << 16), next: 1 }
        }
    }

    impl PageStore for MemStore {
        fn read(&mut self, id: u64) -> Result<PageRef> {
            self.pool
                .lookup(id)
                .ok_or_else(|| Error::Internal(format!("memstore: page {id} not resident")))
        }

        fn write(&mut self, id: u64, typ: u8, data: Vec<u8>) -> Result<()> {
            self.pool.update(id, Arc::new(PageBuf { typ, data }));
            Ok(())
        }

        fn alloc(&mut self) -> Result<u64> {
            let id = self.next;
            self.next += 1;
            Ok(id)
        }

        fn free(&mut self, id: u64) -> Result<()> {
            self.pool.drop_page(id)
        }
    }

    /// Single-column integer key in the on-disk encoding.
    fn key(n: i64) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        crate::storage::encode_value(&mut buf, &Value::Integer(n));
        buf
    }

    /// A multi-leaf tree holding keys `0, 2, 4, .. < 2n` (odd keys are
    /// deliberately absent) with distinguishable ~100-byte values.
    fn build(io: &mut MemStore, n: i64) -> u64 {
        let mut root = NIL;
        for i in 0..n {
            let k = i * 2;
            let val = format!("{k}:{:y>90}", k);
            let (r, replaced) = tree_insert(io, root, &key(k), i as u64, val.as_bytes()).unwrap();
            assert!(!replaced);
            root = r;
        }
        root
    }

    #[test]
    fn lookup_hits_present_keys_and_misses_absent_ones() {
        let mut io = MemStore::new();
        let root = build(&mut io, 500);
        assert!(io.next > 3, "500 ~100-byte cells must split across pages");
        for k in [0i64, 2, 498, 650, 998] {
            let got = tree_lookup(&mut io, root, &key(k)).unwrap().expect("present key");
            assert!(got.starts_with(format!("{k}:").as_bytes()), "wrong row for key {k}");
        }
        for k in [-2i64, 1, 499, 1000] {
            assert!(tree_lookup(&mut io, root, &key(k)).unwrap().is_none(), "phantom key {k}");
        }
        assert!(tree_lookup(&mut io, NIL, &key(0)).unwrap().is_none(), "empty tree");
    }

    #[test]
    fn lookup_follows_overflow_chains() {
        let mut io = MemStore::new();
        let big = vec![0xabu8; MAX_INLINE_VAL * 3 + 17];
        let (root, _) = tree_insert(&mut io, NIL, &key(1), 0, &big).unwrap();
        // Surround it so the leaf holds inline neighbours too.
        let (root, _) = tree_insert(&mut io, root, &key(0), 1, b"left").unwrap();
        let (root, _) = tree_insert(&mut io, root, &key(2), 2, b"right").unwrap();
        assert_eq!(tree_lookup(&mut io, root, &key(1)).unwrap().unwrap(), big);
        assert_eq!(tree_lookup(&mut io, root, &key(2)).unwrap().unwrap(), b"right");
    }

    /// The keys a range scan returns, decoded back to the even integers
    /// the fixture inserted (via their seq: key = 2 * seq).
    fn scan_keys(
        io: &mut MemStore,
        root: u64,
        lower: Option<(i64, bool)>,
        upper: Option<(i64, bool)>,
    ) -> Vec<i64> {
        let lo_key = lower.map(|(k, incl)| (key(k), incl));
        let hi_key = upper.map(|(k, incl)| (key(k), incl));
        let mut out = Vec::new();
        tree_scan_range(
            io,
            root,
            lo_key.as_ref().map(|(k, incl)| (k.as_slice(), *incl)),
            hi_key.as_ref().map(|(k, incl)| (k.as_slice(), *incl)),
            &mut out,
        )
        .unwrap();
        out.iter().map(|(seq, _)| *seq as i64 * 2).collect()
    }

    #[test]
    fn range_scan_respects_bounds_across_leaves() {
        let mut io = MemStore::new();
        let root = build(&mut io, 500); // keys 0..=998 step 2, many leaves
        let every: Vec<i64> = (0..500).map(|i| i * 2).collect();

        assert_eq!(scan_keys(&mut io, root, None, None), every, "unbounded = full scan");
        assert_eq!(
            scan_keys(&mut io, root, Some((100, true)), Some((110, true))),
            vec![100, 102, 104, 106, 108, 110]
        );
        assert_eq!(
            scan_keys(&mut io, root, Some((100, false)), Some((110, false))),
            vec![102, 104, 106, 108],
            "exclusive bounds drop both endpoints"
        );
        assert_eq!(
            scan_keys(&mut io, root, Some((99, true)), Some((111, true))),
            vec![100, 102, 104, 106, 108, 110],
            "bounds between keys clamp to the interior"
        );
        assert_eq!(scan_keys(&mut io, root, Some((990, true)), None), vec![990, 992, 994, 996, 998]);
        assert_eq!(scan_keys(&mut io, root, None, Some((4, true))), vec![0, 2, 4]);
        assert_eq!(scan_keys(&mut io, root, Some((400, true)), Some((2, true))), Vec::<i64>::new());
        assert_eq!(scan_keys(&mut io, NIL, None, None), Vec::<i64>::new(), "empty tree");
    }

    #[test]
    fn range_scan_sees_updates_and_deletes() {
        let mut io = MemStore::new();
        let mut root = build(&mut io, 100);
        let (r, replaced) = tree_insert(&mut io, root, &key(40), 999, b"updated").unwrap();
        root = r;
        assert!(replaced);
        assert!(tree_delete(&mut io, root, &key(42)).unwrap());

        let mut out = Vec::new();
        tree_scan_range(
            &mut io,
            root,
            Some((key(38).as_slice(), true)),
            Some((key(44).as_slice(), true)),
            &mut out,
        )
        .unwrap();
        let rows: Vec<&[u8]> = out.iter().map(|(_, v)| v.as_slice()).collect();
        assert_eq!(out.len(), 3, "38, 40 (updated), 44 — 42 deleted");
        assert!(rows[0].starts_with(b"38:"));
        assert_eq!(rows[1], b"updated");
        assert!(rows[2].starts_with(b"44:"));
        // The replace kept the original seq, so scan order is by key while
        // the seq still names the original insertion slot.
        assert_eq!(out[1].0, 20, "update must keep the old cell's seq");
    }
}
