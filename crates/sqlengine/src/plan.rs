//! Logical plan for the FROM/WHERE part of a query.
//!
//! The planner lowers a [`TableRef`] tree plus the WHERE clause into a
//! [`Plan`]; the optimizer (see [`crate::optimizer`]) then pushes filters
//! toward scans and orders predicates so that expensive UDFs (LLM calls)
//! run on as few rows as possible. Projection, aggregation, ordering and
//! compounds are handled downstream by the executor.

use crate::ast::{Expr, JoinKind, SelectStmt, TableRef};
use crate::error::{Error, Result};

/// What the planner/optimizer needs to know about base tables: their
/// column lists (for schema reasoning) and their row counts (the
/// statistics behind join ordering). Implemented by
/// [`Catalog`](crate::storage::Catalog).
pub trait SchemaProvider {
    fn table_columns(&self, table: &str) -> Result<Vec<String>>;
    /// `None` when the table (or its cardinality) is unknown.
    fn table_rows(&self, table: &str) -> Option<usize>;
    /// Primary-key column names in key order; `None` when the table is
    /// unknown or has no primary key. Drives the optimizer's
    /// [`Plan::IndexScan`] rewrite; the default (no keys) simply
    /// disables it.
    fn table_primary_key(&self, _table: &str) -> Option<Vec<String>> {
        None
    }
}

/// A column of a relation schema: optional qualifier (table alias) + name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    pub qualifier: Option<String>,
    pub name: String,
}

impl ColRef {
    pub fn new(qualifier: Option<String>, name: impl Into<String>) -> Self {
        ColRef { qualifier, name: name.into() }
    }

    /// Does this column answer to `(qual, name)`?
    pub fn matches(&self, qual: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qual {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|mine| mine.eq_ignore_ascii_case(q)),
        }
    }
}

/// Schema of an intermediate relation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelSchema {
    pub cols: Vec<ColRef>,
}

impl RelSchema {
    pub fn new(cols: Vec<ColRef>) -> Self {
        RelSchema { cols }
    }

    /// All columns qualified with one alias (scan / derived-table output).
    pub fn qualified(qualifier: &str, names: impl IntoIterator<Item = String>) -> Self {
        RelSchema {
            cols: names
                .into_iter()
                .map(|n| ColRef::new(Some(qualifier.to_string()), n))
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.cols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, right: &RelSchema) -> RelSchema {
        let mut cols = Vec::with_capacity(self.cols.len() + right.cols.len());
        cols.extend(self.cols.iter().cloned());
        cols.extend(right.cols.iter().cloned());
        RelSchema { cols }
    }

    /// Resolve `(qual, name)` to a column index. Ambiguous unqualified
    /// references are an error; unknown names return `Ok(None)` so the
    /// caller can consult an outer scope.
    pub fn resolve(&self, qual: Option<&str>, name: &str) -> Result<Option<usize>> {
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            if c.matches(qual, name) {
                if found.is_some() {
                    let full = match qual {
                        Some(q) => format!("{q}.{name}"),
                        None => name.to_string(),
                    };
                    return Err(Error::Semantic(format!("ambiguous column reference '{full}'")));
                }
                found = Some(i);
            }
        }
        Ok(found)
    }

    /// Can every column reference in `expr` (ignoring subqueries) be
    /// resolved against this schema alone? Used to decide which join side
    /// a predicate belongs to.
    pub fn covers(&self, expr: &Expr) -> bool {
        let mut ok = true;
        expr.walk(&mut |e| {
            if let Expr::Column { table, name } = e {
                match self.resolve(table.as_deref(), name) {
                    Ok(Some(_)) => {}
                    _ => ok = false,
                }
            }
        });
        ok
    }
}

/// Logical plan nodes for the data-producing part of a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Base-table scan. `qualifier` is the alias (or table name).
    Scan { table: String, qualifier: String },
    /// Primary-key index scan: emit only the rows the `bounds` select,
    /// in base-table row order (so the output is byte-identical to a
    /// filtered full scan). Rewritten from `Filter(Scan)` by the
    /// optimizer when the predicate pins the primary key to literals;
    /// the full predicate is **kept** in a Filter above — the index
    /// probe may be a superset of SQL equality (`Point`) or include
    /// NULLs under a sole upper bound (`Range`), and re-filtering makes
    /// the rewrite unconditionally sound.
    IndexScan { table: String, qualifier: String, bounds: IndexBounds },
    /// Derived table: a subquery in FROM, re-qualified by its alias.
    Derived { query: Box<SelectStmt>, qualifier: String },
    /// Join of two plans. RIGHT joins have been normalized to LEFT.
    ///
    /// `emit` is the column-pruning list: when set, only those indices of
    /// the concatenated (left + right) schema are materialized per output
    /// row — an empty list means the join emits zero-width rows (shared,
    /// allocation-free), which is what `SELECT COUNT(*)` joins execute.
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        kind: PlanJoinKind,
        on: Option<Expr>,
        emit: Option<Vec<usize>>,
    },
    /// Row filter.
    Filter { input: Box<Plan>, predicate: Expr },
    /// Vectorized-UDF evaluation point. Before the operator above runs its
    /// per-row loop, every expensive function call in `calls` is evaluated
    /// once per *distinct argument tuple* across the input batch via
    /// [`ScalarUdf::invoke_batch`](crate::functions::ScalarUdf), and the
    /// results are stored for per-row lookup. Inserted by the optimizer's
    /// batching rule under filters whose predicates call expensive UDFs;
    /// a pass-through for rows otherwise.
    Batch { input: Box<Plan>, calls: Vec<Expr> },
    /// Column permutation: output column `i` is input column `mapping[i]`.
    /// Emitted by join reordering to restore the query's written column
    /// order after the join tree has been rearranged.
    Permute { input: Box<Plan>, mapping: Vec<usize> },
    /// Morsel-driven parallel execution annotation: the subtree below is
    /// executed by [`crate::exec_parallel`] with up to `partitions` worker
    /// threads — scans/filters/permutes process fixed-size morsels,
    /// hash joins build partitioned tables and probe morsel-parallel.
    /// Inserted (at most once, at the root) by the optimizer's
    /// parallelization rule when [`Catalog::row_count`] statistics say the
    /// input is large enough to amortize coordination; never inserted when
    /// the effective thread count is 1, so `SWAN_THREADS=1` reproduces the
    /// serial engine exactly. Operator output order is morsel-concatenated
    /// input order, so results are byte-identical to serial execution at
    /// every partition count.
    ///
    /// [`Catalog::row_count`]: crate::storage::Catalog::row_count
    Parallel { input: Box<Plan>, partitions: usize },
    /// Zero-column, one-row relation (SELECT without FROM).
    Empty,
}

/// How a [`Plan::IndexScan`] probes the primary key.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexBounds {
    /// Every PK column pinned to a literal: one O(1) hash probe on the
    /// unique PK index ([`Table::pk_row_index`]). `key` is in PK-column
    /// order.
    ///
    /// [`Table::pk_row_index`]: crate::storage::Table::pk_row_index
    Point { key: Vec<crate::value::Value> },
    /// A range over the **first** PK column: binary search on the
    /// PK-sorted row permutation ([`Table::pk_range`]). Each bound is
    /// `(literal, inclusive)`; `None` means unbounded on that side.
    ///
    /// [`Table::pk_range`]: crate::storage::Table::pk_range
    Range {
        lower: Option<(crate::value::Value, bool)>,
        upper: Option<(crate::value::Value, bool)>,
    },
}

/// Join kinds after normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanJoinKind {
    Inner,
    Left,
    Cross,
}

impl Plan {
    /// The output schema of this plan, resolved against `provider`.
    pub fn schema(&self, provider: &dyn SchemaProvider) -> Result<RelSchema> {
        match self {
            Plan::Scan { table, qualifier } | Plan::IndexScan { table, qualifier, .. } => {
                Ok(RelSchema::qualified(qualifier, provider.table_columns(table)?))
            }
            Plan::Derived { query, qualifier } => {
                let names = derived_output_names(query);
                Ok(RelSchema::qualified(qualifier, names))
            }
            Plan::Join { left, right, emit, .. } => {
                let full = left.schema(provider)?.join(&right.schema(provider)?);
                Ok(match emit {
                    None => full,
                    Some(idx) => RelSchema::new(
                        idx.iter().map(|&i| full.cols[i].clone()).collect(),
                    ),
                })
            }
            Plan::Filter { input, .. } => input.schema(provider),
            Plan::Batch { input, .. } => input.schema(provider),
            Plan::Parallel { input, .. } => input.schema(provider),
            Plan::Permute { input, mapping } => {
                let inner = input.schema(provider)?;
                Ok(RelSchema::new(
                    mapping.iter().map(|&i| inner.cols[i].clone()).collect(),
                ))
            }
            Plan::Empty => Ok(RelSchema::default()),
        }
    }
}

/// Column names a derived table exposes, best-effort (aliases, column
/// names, or positional fallbacks). The executor computes the authoritative
/// names; this is only used for static schema reasoning in the optimizer.
pub fn derived_output_names(query: &SelectStmt) -> Vec<String> {
    use crate::ast::{SelectBody, SelectItem};
    fn body_names(body: &SelectBody) -> Vec<String> {
        match body {
            SelectBody::Simple(core) => core
                .projection
                .iter()
                .enumerate()
                .map(|(i, item)| match item {
                    SelectItem::Expr { alias: Some(a), .. } => a.clone(),
                    SelectItem::Expr { expr: Expr::Column { name, .. }, .. } => name.clone(),
                    SelectItem::Expr { .. } => format!("column{}", i + 1),
                    SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                        // Unknown statically; executor will fill in.
                        format!("column{}", i + 1)
                    }
                })
                .collect(),
            SelectBody::Compound { left, .. } => body_names(left),
        }
    }
    body_names(&query.body)
}

/// Lower a FROM clause + WHERE predicate to a plan.
///
/// RIGHT joins are normalized to LEFT joins by swapping inputs (column
/// order of the join output changes, but downstream resolution is by name,
/// and wildcard projection order for RIGHT joins is rarely relied on).
pub fn plan_from(from: Option<&TableRef>, filter: Option<&Expr>) -> Result<Plan> {
    let base = match from {
        None => Plan::Empty,
        Some(t) => plan_table_ref(t)?,
    };
    Ok(match filter {
        Some(pred) => Plan::Filter { input: Box::new(base), predicate: pred.clone() },
        None => base,
    })
}

fn plan_table_ref(t: &TableRef) -> Result<Plan> {
    match t {
        TableRef::Table { name, alias } => Ok(Plan::Scan {
            table: name.clone(),
            qualifier: alias.clone().unwrap_or_else(|| name.clone()),
        }),
        TableRef::Subquery { query, alias } => {
            Ok(Plan::Derived { query: query.clone(), qualifier: alias.clone() })
        }
        TableRef::Join { left, right, kind, on } => {
            let (l, r, k) = match kind {
                JoinKind::Inner => (left, right, PlanJoinKind::Inner),
                JoinKind::Left => (left, right, PlanJoinKind::Left),
                // RIGHT JOIN a b == LEFT JOIN b a.
                JoinKind::Right => (right, left, PlanJoinKind::Left),
                JoinKind::Cross => (left, right, PlanJoinKind::Cross),
            };
            Ok(Plan::Join {
                left: Box::new(plan_table_ref(l)?),
                right: Box::new(plan_table_ref(r)?),
                kind: k,
                on: on.clone(),
                emit: None,
            })
        }
    }
}

/// Split a predicate into its top-level AND conjuncts.
pub fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    fn rec(e: &Expr, out: &mut Vec<Expr>) {
        if let Expr::Binary { op: crate::ast::BinaryOp::And, left, right } = e {
            rec(left, out);
            rec(right, out);
        } else {
            out.push(e.clone());
        }
    }
    rec(expr, &mut out);
    out
}

/// Rebuild a conjunction from parts (`None` if empty).
pub fn conjoin(parts: Vec<Expr>) -> Option<Expr> {
    let mut it = parts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, e| Expr::Binary {
        op: crate::ast::BinaryOp::And,
        left: Box::new(acc),
        right: Box::new(e),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expression, parse_statement};

    fn from_of(sql: &str) -> (Option<TableRef>, Option<Expr>) {
        let crate::ast::Statement::Select(s) = parse_statement(sql).unwrap() else { panic!() };
        let crate::ast::SelectBody::Simple(core) = s.body else { panic!() };
        (core.from, core.filter)
    }

    #[test]
    fn scan_uses_alias_as_qualifier() {
        let (from, _) = from_of("SELECT * FROM superhero AS T1");
        let p = plan_from(from.as_ref(), None).unwrap();
        assert_eq!(p, Plan::Scan { table: "superhero".into(), qualifier: "T1".into() });
    }

    #[test]
    fn right_join_normalizes_to_left() {
        let (from, _) = from_of("SELECT * FROM a RIGHT JOIN b ON a.x = b.y");
        let p = plan_from(from.as_ref(), None).unwrap();
        let Plan::Join { left, right, kind, .. } = p else { panic!() };
        assert_eq!(kind, PlanJoinKind::Left);
        assert_eq!(*left, Plan::Scan { table: "b".into(), qualifier: "b".into() });
        assert_eq!(*right, Plan::Scan { table: "a".into(), qualifier: "a".into() });
    }

    #[test]
    fn where_becomes_filter() {
        let (from, filter) = from_of("SELECT * FROM t WHERE x > 3");
        let p = plan_from(from.as_ref(), filter.as_ref()).unwrap();
        assert!(matches!(p, Plan::Filter { .. }));
    }

    #[test]
    fn split_and_rejoin_conjuncts() {
        let e = parse_expression("a = 1 AND b = 2 AND (c = 3 OR d = 4)").unwrap();
        let parts = split_conjuncts(&e);
        assert_eq!(parts.len(), 3);
        let rebuilt = conjoin(parts.clone()).unwrap();
        assert_eq!(split_conjuncts(&rebuilt), parts);
        assert!(conjoin(vec![]).is_none());
    }

    #[test]
    fn schema_resolution_and_ambiguity() {
        let schema = RelSchema::new(vec![
            ColRef::new(Some("t1".into()), "id"),
            ColRef::new(Some("t2".into()), "id"),
            ColRef::new(Some("t2".into()), "name"),
        ]);
        assert_eq!(schema.resolve(Some("t1"), "id").unwrap(), Some(0));
        assert_eq!(schema.resolve(Some("T2"), "ID").unwrap(), Some(1));
        assert_eq!(schema.resolve(None, "name").unwrap(), Some(2));
        assert!(schema.resolve(None, "id").is_err(), "ambiguous");
        assert_eq!(schema.resolve(None, "missing").unwrap(), None);
    }

    #[test]
    fn covers_checks_all_columns() {
        let schema = RelSchema::qualified("t", vec!["a".to_string(), "b".to_string()]);
        assert!(schema.covers(&parse_expression("t.a + b").unwrap()));
        assert!(!schema.covers(&parse_expression("t.a + u.c").unwrap()));
    }

    #[test]
    fn join_schema_concatenates() {
        let l = RelSchema::qualified("a", vec!["x".to_string()]);
        let r = RelSchema::qualified("b", vec!["y".to_string()]);
        let j = l.join(&r);
        assert_eq!(j.len(), 2);
        assert_eq!(j.resolve(Some("b"), "y").unwrap(), Some(1));
    }
}
