//! SQL tokenizer.
//!
//! Produces a flat `Vec<Token>` for the recursive-descent parser. Keywords
//! are case-insensitive; identifiers may be quoted with double quotes or
//! backticks; string literals use single quotes with `''` escaping, as in
//! SQLite.

use crate::error::{Error, Result};

/// A lexical token plus its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token classes. Keywords are folded to uppercase in `Keyword`.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Reserved word, uppercased (`SELECT`, `FROM`, ...).
    Keyword(String),
    /// Bare or quoted identifier, original case preserved.
    Ident(String),
    /// Integer literal.
    Integer(i64),
    /// Floating-point literal.
    Real(f64),
    /// Single-quoted string literal, escapes resolved.
    Str(String),
    /// Punctuation / operator.
    Symbol(Symbol),
    /// End of input sentinel.
    Eof,
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Concat,
}

/// Words treated as keywords by the parser. Anything else is an identifier.
const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "OFFSET", "AS", "ON",
    "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "AND", "OR", "NOT", "NULL", "IS", "IN",
    "LIKE", "BETWEEN", "EXISTS", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "DISTINCT", "ALL",
    "ASC", "DESC", "UNION", "EXCEPT", "INTERSECT", "CREATE", "TABLE", "DROP", "ALTER", "ADD",
    "COLUMN", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "PRIMARY", "KEY", "UNIQUE",
    "IF", "TRUE", "FALSE", "GLOB", "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION",
];

/// Tokenize `sql` into a vector ending with an [`TokenKind::Eof`] token.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::with_capacity(sql.len() / 4 + 4);
    let mut i = 0;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment: skip to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(Error::lex(start, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_single_quoted(sql, i)?;
                tokens.push(Token { kind: TokenKind::Str(s), offset: i });
                i = next;
            }
            '"' | '`' => {
                let (s, next) = lex_quoted_ident(sql, i, c)?;
                tokens.push(Token { kind: TokenKind::Ident(s), offset: i });
                i = next;
            }
            '0'..='9' => {
                let (kind, next) = lex_number(sql, i)?;
                tokens.push(Token { kind, offset: i });
                i = next;
            }
            '.' if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) => {
                let (kind, next) = lex_number(sql, i)?;
                tokens.push(Token { kind, offset: i });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &sql[start..i];
                let upper = word.to_ascii_uppercase();
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(word.to_string())
                };
                tokens.push(Token { kind, offset: start });
            }
            _ => {
                let (sym, width) = lex_symbol(bytes, i)?;
                tokens.push(Token { kind: TokenKind::Symbol(sym), offset: i });
                i += width;
            }
        }
    }

    tokens.push(Token { kind: TokenKind::Eof, offset: sql.len() });
    Ok(tokens)
}

fn lex_single_quoted(sql: &str, start: usize) -> Result<(String, usize)> {
    let bytes = sql.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    loop {
        if i >= bytes.len() {
            return Err(Error::lex(start, "unterminated string literal"));
        }
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Copy one UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&sql[i..i + ch_len]);
            i += ch_len;
        }
    }
}

fn lex_quoted_ident(sql: &str, start: usize, quote: char) -> Result<(String, usize)> {
    let bytes = sql.as_bytes();
    let q = quote as u8;
    let mut out = String::new();
    let mut i = start + 1;
    loop {
        if i >= bytes.len() {
            return Err(Error::lex(start, "unterminated quoted identifier"));
        }
        if bytes[i] == q {
            if bytes.get(i + 1) == Some(&q) {
                out.push(quote);
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&sql[i..i + ch_len]);
            i += ch_len;
        }
    }
}

fn lex_number(sql: &str, start: usize) -> Result<(TokenKind, usize)> {
    let bytes = sql.as_bytes();
    let mut i = start;
    let mut is_real = false;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' {
        is_real = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_real = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &sql[start..i];
    if is_real {
        let v = text
            .parse::<f64>()
            .map_err(|_| Error::lex(start, format!("bad real literal '{text}'")))?;
        Ok((TokenKind::Real(v), i))
    } else {
        match text.parse::<i64>() {
            Ok(v) => Ok((TokenKind::Integer(v), i)),
            // Overflowing integer literals degrade to real, as in SQLite.
            Err(_) => {
                let v = text
                    .parse::<f64>()
                    .map_err(|_| Error::lex(start, format!("bad numeric literal '{text}'")))?;
                Ok((TokenKind::Real(v), i))
            }
        }
    }
}

fn lex_symbol(bytes: &[u8], i: usize) -> Result<(Symbol, usize)> {
    let two = |a: u8, b: u8| bytes[i] == a && bytes.get(i + 1) == Some(&b);
    if two(b'<', b'=') {
        return Ok((Symbol::LtEq, 2));
    }
    if two(b'>', b'=') {
        return Ok((Symbol::GtEq, 2));
    }
    if two(b'<', b'>') || two(b'!', b'=') {
        return Ok((Symbol::NotEq, 2));
    }
    if two(b'|', b'|') {
        return Ok((Symbol::Concat, 2));
    }
    if two(b'=', b'=') {
        return Ok((Symbol::Eq, 2));
    }
    let sym = match bytes[i] {
        b'(' => Symbol::LParen,
        b')' => Symbol::RParen,
        b',' => Symbol::Comma,
        b'.' => Symbol::Dot,
        b';' => Symbol::Semicolon,
        b'+' => Symbol::Plus,
        b'-' => Symbol::Minus,
        b'*' => Symbol::Star,
        b'/' => Symbol::Slash,
        b'%' => Symbol::Percent,
        b'=' => Symbol::Eq,
        b'<' => Symbol::Lt,
        b'>' => Symbol::Gt,
        other => {
            return Err(Error::lex(i, format!("unexpected character '{}'", other as char)));
        }
    };
    Ok((sym, 1))
}

#[inline]
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_fold_case_identifiers_keep_case() {
        let k = kinds("select Hero_Name from Superhero");
        assert_eq!(k[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(k[1], TokenKind::Ident("Hero_Name".into()));
        assert_eq!(k[2], TokenKind::Keyword("FROM".into()));
        assert_eq!(k[3], TokenKind::Ident("Superhero".into()));
    }

    #[test]
    fn string_literals_escape_quotes() {
        let k = kinds("'it''s'");
        assert_eq!(k[0], TokenKind::Str("it's".into()));
    }

    #[test]
    fn quoted_identifiers() {
        let k = kinds("\"weird name\" `back tick`");
        assert_eq!(k[0], TokenKind::Ident("weird name".into()));
        assert_eq!(k[1], TokenKind::Ident("back tick".into()));
    }

    #[test]
    fn numbers_integer_real_exponent() {
        let k = kinds("42 3.5 1e3 .25 10000000000000000000");
        assert_eq!(k[0], TokenKind::Integer(42));
        assert_eq!(k[1], TokenKind::Real(3.5));
        assert_eq!(k[2], TokenKind::Real(1000.0));
        assert_eq!(k[3], TokenKind::Real(0.25));
        // Too big for i64: degrades to real.
        assert!(matches!(k[4], TokenKind::Real(_)));
    }

    #[test]
    fn two_char_operators() {
        let k = kinds("<= >= <> != || ==");
        assert_eq!(
            k[..6],
            [
                TokenKind::Symbol(Symbol::LtEq),
                TokenKind::Symbol(Symbol::GtEq),
                TokenKind::Symbol(Symbol::NotEq),
                TokenKind::Symbol(Symbol::NotEq),
                TokenKind::Symbol(Symbol::Concat),
                TokenKind::Symbol(Symbol::Eq),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("SELECT -- the works\n 1 /* inline */ + 2");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Integer(1),
                TokenKind::Symbol(Symbol::Plus),
                TokenKind::Integer(2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        match tokenize("SELECT 'oops") {
            Err(Error::Lex { pos, .. }) => assert_eq!(pos, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("/* never closed").is_err());
    }

    #[test]
    fn unicode_in_strings_survives() {
        let k = kinds("'héroïne — ok'");
        assert_eq!(k[0], TokenKind::Str("héroïne — ok".into()));
    }

    #[test]
    fn eof_is_always_last() {
        assert_eq!(kinds("").last(), Some(&TokenKind::Eof));
        assert_eq!(kinds("   ").last(), Some(&TokenKind::Eof));
    }
}
