//! # swan-sqlengine
//!
//! An embedded, in-memory relational SQL engine built as the substrate for
//! *hybrid querying over relational databases and large language models*
//! (the SWAN benchmark / HQDL paper, CIDR 2025).
//!
//! The engine plays the role SQLite plays in the paper:
//!
//! * a SQLite-flavoured SQL dialect — dynamic typing, `LIKE`/`GLOB`,
//!   three-valued logic, joins, grouping, compound selects, subqueries;
//! * DDL/DML (`CREATE`/`DROP`/`ALTER TABLE`, `INSERT`, `UPDATE`, `DELETE`)
//!   so HQDL can *materialize* LLM-generated tables (schema expansion);
//! * a scalar-UDF registry with an *expensive-function* cost hint, so
//!   BlendSQL-style LLM functions participate in optimization — the
//!   optimizer pushes cheap predicates down and orders LLM predicates last
//!   to minimize calls (paper §4.2–4.3);
//! * a **zero-copy execution core**: text values are interned
//!   (`Value::Text(Arc<str>)`), rows are shared (`Row = Arc<[Value]>`),
//!   hash joins build on the smaller side, and INNER-join chains are
//!   reordered by catalog row-count statistics — see `PERF.md` for the
//!   representation notes and measured numbers;
//! * **columnar execution** ([`columnar`], [`OptimizerConfig::columnar`],
//!   default on; `SWAN_COLUMNAR=0` flips the default): each table lazily
//!   caches typed column vectors with validity bitmaps (dictionary-encoded
//!   text, raw `i64`/`f64`/bool), and supported scan predicates, GROUP BY
//!   keys, hash-join keys and plain-column aggregates run as
//!   word-at-a-time Kleene-logic / tight-loop kernels over the column
//!   slices, materializing `Row`s lazily only at the engine boundary.
//!   `columnar: false` is bit-for-bit the row path, and the differential
//!   harness pins columnar ≡ row at 1 and 8 threads (PERF.md, "Columnar
//!   execution", for the measured 1.7–2.2× scan/aggregate speedups);
//! * **morsel-driven parallel execution** ([`exec_parallel`]): the
//!   optimizer annotates large plans with `Plan::Parallel { partitions }`
//!   from catalog row counts, and filters, partitioned hash-join
//!   build/probe, two-phase GROUP BY/aggregation and top-k selection fan
//!   out over the shared `swan_pool` worker pool — with results
//!   **byte-identical** to the serial engine at every thread count
//!   (`SWAN_THREADS=1` reproduces serial execution exactly; the
//!   `parallel_diff` differential harness enforces equivalence at 1, 2
//!   and 8 threads);
//! * a **concurrently shareable database** ([`SharedDb`]): an
//!   `Arc`-cloneable handle whose sessions read O(tables) snapshots
//!   without blocking writers, while writers serialize per table and
//!   atomically install new `Arc<Table>` versions — no lost updates, no
//!   poisoned locks, and UDF single-flight/answer stores shared across
//!   sessions;
//! * **multi-statement transactions** (`BEGIN` / `COMMIT` / `ROLLBACK`):
//!   a [`Database`] session or a [`SharedDb`] [`Session`] runs whole
//!   statement spans under **snapshot isolation** — `BEGIN` pins an
//!   O(tables) snapshot, reads see the snapshot plus the session's own
//!   uncommitted writes, and `COMMIT` installs every written table
//!   atomically behind a **row-level first-committer-wins** check:
//!   every commit records its per-primary-key write set in a bounded
//!   history, validation intersects the committing transaction's write
//!   set with every commit since its snapshot, transactions that
//!   touched **disjoint rows** of the same table rebase and commit
//!   (no false conflicts), and only true row overlaps — or
//!   table-granular writes like DDL and writes to PK-less tables —
//!   abort with an [`Error::Conflict`] that names the overlapping rows
//!   (the caller retries). A watermark GC truncates the write-set
//!   history past the oldest live snapshot, so memory stays bounded
//!   under churn ([`SharedDb::mvcc_stats`] exposes
//!   [`MvccStats`] for the invariants);
//! * **crash durability** ([`Database::open`] / [`SharedDb::open`]): every
//!   commit appends a checksummed `Begin/Delta/Commit` record group to an
//!   append-only write-ahead log and fsyncs *before* installing; recovery
//!   replays the longest intact prefix, truncates torn tails, and
//!   auto-checkpoints compact the log past a configurable size
//!   ([`DurabilityConfig`]) — see [`wal`] and [`txn`];
//! * **paged on-disk storage** ([`pager`], [`btree`], [`bufpool`];
//!   [`DurabilityConfig::paged`], default on, `SWAN_PAGER=0` flips it):
//!   durable state lives in 4 KiB slotted pages (id/epoch/type/CRC
//!   header, double-slot shadow paging) behind a buffer pool with
//!   pinned-page accounting and clock eviction; tables with a primary
//!   key are B-trees keyed by the encoded pk, commits apply row patches
//!   as tree upserts, and a checkpoint flushes only **dirty** pages —
//!   O(changes), not O(database) — before committing the slot flip
//!   through an atomically renamed meta file. The planner serves
//!   `WHERE pk = ?` as an index point probe, pk ranges as ordered
//!   B-tree-order scans and `ORDER BY pk LIMIT k` without sorting
//!   ([`OptimizerConfig::index_scan`]); `SWAN_PAGER=0` is bit-for-bit
//!   the legacy whole-image engine, and `tests/paged_storage.rs`
//!   asserts the O(k·pages) checkpoint byte bound (PERF.md, "Paged
//!   storage", for the measured ~870× point-probe speedup on 1M rows);
//! * **group commit** (on by default, [`DurabilityConfig::group_commit`]):
//!   concurrent [`SharedDb`] committers enqueue their framed record
//!   groups and one leader appends the whole batch with a **single
//!   fsync**, installs every group atomically, and wakes the batch — the
//!   WAL mutex is held only by the leader, so the next batch accumulates
//!   during the fsync and commit throughput multiplies under contention
//!   ([`SharedDb::commit_stats`] reports the commits-per-fsync ratio);
//! * a **virtual filesystem seam** ([`vfs`]): all WAL and checkpoint I/O
//!   goes through a [`Vfs`] — [`RealFs`] in production, and the
//!   fault-injecting [`SimFs`] in tests, which records every
//!   write/fsync/rename and can deterministically fail or *crash* (with
//!   a torn in-flight write) at any operation index. The `crash_sim`
//!   harness sweeps every fault through every operation index of
//!   commit, checkpoint, group-commit and recovery schedules and proves
//!   recovery is always a clean prefix of acknowledged commits
//!   ([`Database::open_on`] / [`SharedDb::open_on`] accept an explicit
//!   `Vfs`);
//! * **statement timeouts & cooperative cancellation**: a
//!   `statement_timeout` set on a [`Database`], a [`SharedDb`] (the
//!   shared default) or a single [`Session`] (override) arms every
//!   statement with a deadline-bearing `swan_pool::CancelToken`,
//!   installed as the thread's current token for the statement's whole
//!   span. The serial and morsel-parallel executors check it between
//!   morsels, long-running UDFs cooperate via
//!   `swan_pool::cancel::check_current()`, and a caller-installed token
//!   scopes a whole batch (or cancels from another thread). A tripped
//!   deadline surfaces as [`Error::Deadline`] with pinned wording —
//!   `statement timeout: deadline exceeded` (`tests/slt/errors.slt`
//!   locks it in at 1 and 8 threads);
//! * **surfaced script transactions**: [`SharedDb::execute_script`]
//!   refuses to silently drop a transaction a script leaves open — it
//!   rolls back and errors, unless
//!   [`ScriptOptions::autocommit_on_end`] (via
//!   [`SharedDb::execute_script_with`]) opts into committing the open
//!   span.
//!
//! ## Transactions quick start
//!
//! ```
//! use swan_sqlengine::SharedDb;
//!
//! let db = SharedDb::new();
//! db.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)").unwrap();
//! db.execute("INSERT INTO acct VALUES (1, 100), (2, 0)").unwrap();
//!
//! let mut session = db.session();
//! session.execute("BEGIN").unwrap();
//! session.execute("UPDATE acct SET bal = bal - 40 WHERE id = 1").unwrap();
//! session.execute("UPDATE acct SET bal = bal + 40 WHERE id = 2").unwrap();
//! // Nothing is visible to other sessions until ...
//! session.execute("COMMIT").unwrap();
//!
//! let r = db.query("SELECT bal FROM acct ORDER BY id").unwrap();
//! assert_eq!(r.rows[0][0].render(), "60");
//! assert_eq!(r.rows[1][0].render(), "40");
//! ```
//!
//! ## Quick start
//!
//! ```
//! use swan_sqlengine::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE superhero (hero_name TEXT PRIMARY KEY, full_name TEXT)").unwrap();
//! db.execute("INSERT INTO superhero VALUES ('Spider-Man', 'Peter Parker')").unwrap();
//! let r = db.query("SELECT full_name FROM superhero WHERE hero_name = 'Spider-Man'").unwrap();
//! assert_eq!(r.rows[0][0].render(), "Peter Parker");
//! ```
//!
//! ## Enforced seams
//!
//! The engine's locks are ranked (`swan_pool::lockrank`) and validated
//! at runtime by the lockdep layer in the `parking_lot` shim: a rank
//! inversion or lock-order cycle panics with the lock names involved,
//! in debug builds and whenever `SWAN_LOCKDEP=1`. Statically,
//! `swan-analyze` lints this crate for raw `std::fs`/clock/thread use
//! outside the [`vfs`]/`Clock`/pool seams, unranked locks, and
//! panic-family calls on the commit/recovery files. `ANALYSIS.md` at
//! the workspace root documents the rules, the allowlist syntax, and
//! the who-holds-what lock table.

pub mod ast;
pub mod btree;
pub mod bufpool;
pub mod columnar;
pub mod db;
pub mod display;
pub mod error;
pub mod eval;
pub mod exec;
pub mod exec_parallel;
pub mod functions;
pub mod hash;
pub mod lexer;
pub mod optimizer;
pub mod pager;
pub mod parser;
pub mod plan;
pub mod shared;
pub mod storage;
pub mod txn;
pub mod value;
pub mod vfs;
pub mod wal;

pub use db::{Database, QueryResult};
pub use error::{Error, Result};
pub use functions::{ScalarUdf, UdfRegistry};
pub use bufpool::PoolStats;
pub use optimizer::OptimizerConfig;
pub use pager::PagerStats;
pub use shared::{CommitStats, ScriptOptions, Session, SharedDb};
pub use txn::MvccStats;
pub use storage::{Catalog, Column, Table, TableStats};
pub use value::{Row, Value};
pub use vfs::{FaultKind, RealFs, SimFs, Torn, Vfs, VfsFile};
pub use wal::DurabilityConfig;
