//! Rendering expressions and results back to SQL-ish text.
//!
//! `expr_to_sql` is used to name unaliased projection columns (the way
//! SQLite names them after their source text) and in debugging output.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::exec::Relation;
use crate::value::Value;

/// Render an expression as SQL text.
pub fn expr_to_sql(e: &Expr) -> String {
    match e {
        Expr::Literal(Value::Null) => "NULL".into(),
        Expr::Literal(Value::Text(s)) => format!("'{}'", s.replace('\'', "''")),
        Expr::Literal(v) => v.render(),
        Expr::Column { table: Some(t), name } => format!("{t}.{name}"),
        Expr::Column { table: None, name } => name.clone(),
        // Executor-internal bound references; only visible in debug output.
        Expr::BoundColumn(i) => format!("#{i}"),
        Expr::Unary { op, expr } => match op {
            UnaryOp::Neg => format!("-{}", expr_to_sql(expr)),
            UnaryOp::Not => format!("NOT {}", expr_to_sql(expr)),
        },
        Expr::Binary { op, left, right } => {
            format!("{} {} {}", expr_to_sql(left), binop_str(*op), expr_to_sql(right))
        }
        Expr::Function { name, args, distinct, star } => {
            if *star {
                format!("{name}(*)")
            } else {
                let args: Vec<String> = args.iter().map(expr_to_sql).collect();
                let d = if *distinct { "DISTINCT " } else { "" };
                format!("{name}({d}{})", args.join(", "))
            }
        }
        Expr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::Like { expr, pattern, negated, glob } => format!(
            "{} {}{} {}",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" },
            if *glob { "GLOB" } else { "LIKE" },
            expr_to_sql(pattern)
        ),
        Expr::Between { expr, low, high, negated } => format!(
            "{} {}BETWEEN {} AND {}",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" },
            expr_to_sql(low),
            expr_to_sql(high)
        ),
        Expr::InList { expr, list, negated } => {
            let items: Vec<String> = list.iter().map(expr_to_sql).collect();
            format!(
                "{} {}IN ({})",
                expr_to_sql(expr),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        Expr::InSubquery { expr, negated, .. } => format!(
            "{} {}IN (SELECT ...)",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::Exists { negated, .. } => {
            format!("{}EXISTS (SELECT ...)", if *negated { "NOT " } else { "" })
        }
        Expr::ScalarSubquery(_) => "(SELECT ...)".into(),
        Expr::Case { .. } => "CASE ... END".into(),
        Expr::Cast { expr, type_name } => {
            format!("CAST({} AS {type_name})", expr_to_sql(expr))
        }
    }
}

fn binop_str(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
        BinaryOp::Rem => "%",
        BinaryOp::Eq => "=",
        BinaryOp::NotEq => "<>",
        BinaryOp::Lt => "<",
        BinaryOp::LtEq => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::GtEq => ">=",
        BinaryOp::And => "AND",
        BinaryOp::Or => "OR",
        BinaryOp::Concat => "||",
    }
}

/// Format a relation as an aligned text table (for examples and debugging).
pub fn format_table(rel: &Relation) -> String {
    let headers = rel.column_names();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    let rendered: Vec<Vec<String>> = rel
        .rows
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(i, v)| {
                    let s = if v.is_null() { "NULL".to_string() } else { v.render() };
                    if i < widths.len() {
                        widths[i] = widths[i].max(s.len());
                    }
                    s
                })
                .collect()
        })
        .collect();
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        let row: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(&row.join(" | "));
        out.push('\n');
    };
    line(&mut out, &headers);
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&mut out, &sep);
    for row in &rendered {
        line(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;

    #[test]
    fn round_trips_common_shapes() {
        for sql in [
            "a + b * c",
            "t.x = 1",
            "name LIKE '%man%'",
            "x BETWEEN 1 AND 5",
            "COUNT(*)",
            "COUNT(DISTINCT x)",
            "x IS NOT NULL",
            "CAST(x AS REAL)",
        ] {
            let e = parse_expression(sql).unwrap();
            let rendered = expr_to_sql(&e);
            // Re-parse of the rendering must produce the same AST.
            let e2 = parse_expression(&rendered).unwrap();
            assert_eq!(e, e2, "{sql} -> {rendered}");
        }
    }

    #[test]
    fn string_literals_escape() {
        let e = parse_expression("'it''s'").unwrap();
        assert_eq!(expr_to_sql(&e), "'it''s'");
    }

    #[test]
    fn format_table_aligns() {
        use crate::exec::Relation;
        use crate::plan::RelSchema;
        let rel = Relation {
            schema: RelSchema::qualified("t", vec!["name".to_string(), "n".to_string()]),
            rows: vec![
                vec!["Spider-Man".into(), 1.into()].into(),
                vec![crate::value::Value::Null, 22.into()].into(),
            ],
        };
        let s = format_table(&rel);
        assert!(s.contains("Spider-Man"));
        assert!(s.contains("NULL"));
        assert!(s.lines().count() == 4);
    }
}
