//! Rule-based plan optimizer.
//!
//! Three rules matter for hybrid queries:
//!
//! 1. **Predicate pushdown** — WHERE conjuncts move below joins to the side
//!    that can evaluate them, shrinking join inputs.
//! 2. **Expensive-predicate ordering** — within a filter, conjuncts that
//!    call expensive UDFs (LLM functions) are evaluated *last*, so cheap
//!    database predicates prune rows before any LLM call happens. This is
//!    the §4.2 optimization ("pushing down predicates to avoid generating
//!    unnecessary data entries").
//! 3. **Constant folding** — literal arithmetic/comparisons collapse, which
//!    also lets trivially-true filters disappear.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::functions::UdfRegistry;
use crate::plan::{conjoin, split_conjuncts, Plan, PlanJoinKind};
use crate::value::Value;
use crate::error::Result;

/// Optimizer configuration; rules can be toggled for ablation benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerConfig {
    pub pushdown: bool,
    pub order_expensive_last: bool,
    pub fold_constants: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig { pushdown: true, order_expensive_last: true, fold_constants: true }
    }
}

/// Optimize a plan. `lookup` resolves table names to column lists for
/// schema reasoning (needed to decide which join side covers a predicate).
pub fn optimize(
    plan: Plan,
    udfs: &UdfRegistry,
    config: &OptimizerConfig,
    lookup: &dyn Fn(&str) -> Result<Vec<String>>,
) -> Result<Plan> {
    let plan = if config.fold_constants { fold_plan(plan) } else { plan };
    let plan = if config.pushdown { pushdown(plan, lookup)? } else { plan };
    let plan = if config.order_expensive_last { order_filters(plan, udfs) } else { plan };
    Ok(plan)
}

// ---- rule 1: predicate pushdown ---------------------------------------

fn pushdown(plan: Plan, lookup: &dyn Fn(&str) -> Result<Vec<String>>) -> Result<Plan> {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = pushdown(*input, lookup)?;
            push_predicate_into(input, split_conjuncts(&predicate), lookup)
        }
        Plan::Join { left, right, kind, on } => Ok(Plan::Join {
            left: Box::new(pushdown(*left, lookup)?),
            right: Box::new(pushdown(*right, lookup)?),
            kind,
            on,
        }),
        other => Ok(other),
    }
}

/// Push each conjunct as deep as it can go; conjuncts that cannot move stay
/// in a filter above `plan`.
fn push_predicate_into(
    plan: Plan,
    conjuncts: Vec<Expr>,
    lookup: &dyn Fn(&str) -> Result<Vec<String>>,
) -> Result<Plan> {
    match plan {
        Plan::Join { left, right, kind, on } => {
            let left_schema = left.schema(lookup)?;
            let right_schema = right.schema(lookup)?;
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut stay = Vec::new();
            for c in conjuncts {
                if expr_has_subquery(&c) {
                    // Subqueries may be correlated with the full row; keep up top.
                    stay.push(c);
                } else if left_schema.covers(&c) {
                    to_left.push(c);
                } else if right_schema.covers(&c) {
                    // Pushing below the null-supplying side of a LEFT join
                    // changes semantics (it would filter before padding);
                    // keep such predicates above the join.
                    if kind == PlanJoinKind::Left {
                        stay.push(c);
                    } else {
                        to_right.push(c);
                    }
                } else {
                    stay.push(c);
                }
            }
            let new_left = if to_left.is_empty() {
                *left
            } else {
                push_predicate_into(*left, to_left, lookup)?
            };
            let new_right = if to_right.is_empty() {
                *right
            } else {
                push_predicate_into(*right, to_right, lookup)?
            };
            let joined = Plan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                kind,
                on,
            };
            Ok(wrap_filter(joined, stay))
        }
        Plan::Filter { input, predicate } => {
            // Merge with an existing filter and keep pushing.
            let mut all = split_conjuncts(&predicate);
            all.extend(conjuncts);
            push_predicate_into(*input, all, lookup)
        }
        leaf @ (Plan::Scan { .. } | Plan::Derived { .. } | Plan::Empty) => {
            Ok(wrap_filter(leaf, conjuncts))
        }
    }
}

fn wrap_filter(plan: Plan, conjuncts: Vec<Expr>) -> Plan {
    match conjoin(conjuncts) {
        Some(pred) => Plan::Filter { input: Box::new(plan), predicate: pred },
        None => plan,
    }
}

fn expr_has_subquery(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if matches!(
            x,
            Expr::ScalarSubquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. }
        ) {
            found = true;
        }
    });
    found
}

// ---- rule 2: expensive predicates last ---------------------------------

fn order_filters(plan: Plan, udfs: &UdfRegistry) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = Box::new(order_filters(*input, udfs));
            let mut parts = split_conjuncts(&predicate);
            // Stable partition: cheap predicates first, expensive last,
            // preserving the relative order inside each class.
            parts.sort_by_key(|p| expr_cost(p, udfs));
            Plan::Filter { input, predicate: conjoin(parts).expect("non-empty") }
        }
        Plan::Join { left, right, kind, on } => Plan::Join {
            left: Box::new(order_filters(*left, udfs)),
            right: Box::new(order_filters(*right, udfs)),
            kind,
            on,
        },
        other => other,
    }
}

/// Cost class of a predicate: 0 = cheap, 1 = contains a subquery,
/// 2 = calls an expensive UDF.
pub fn expr_cost(e: &Expr, udfs: &UdfRegistry) -> u8 {
    let mut cost = 0u8;
    e.walk(&mut |x| match x {
        Expr::Function { name, .. } if udfs.is_expensive(name) => cost = cost.max(2),
        Expr::ScalarSubquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. } => {
            cost = cost.max(1)
        }
        _ => {}
    });
    cost
}

// ---- rule 3: constant folding ------------------------------------------

fn fold_plan(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let folded = fold_expr(predicate);
            // A literally-true filter disappears.
            if let Expr::Literal(v) = &folded {
                if v.truthiness() == Some(true) {
                    return fold_plan(*input);
                }
            }
            Plan::Filter { input: Box::new(fold_plan(*input)), predicate: folded }
        }
        Plan::Join { left, right, kind, on } => Plan::Join {
            left: Box::new(fold_plan(*left)),
            right: Box::new(fold_plan(*right)),
            kind,
            on: on.map(fold_expr),
        },
        other => other,
    }
}

/// Fold literal subtrees bottom-up. Only pure, error-free operations fold;
/// anything that could raise (overflow, type error) is left for runtime.
pub fn fold_expr(e: Expr) -> Expr {
    match e {
        Expr::Binary { op, left, right } => {
            let left = fold_expr(*left);
            let right = fold_expr(*right);
            if let (Expr::Literal(a), Expr::Literal(b)) = (&left, &right) {
                if let Some(v) = fold_binary(op, a, b) {
                    return Expr::Literal(v);
                }
            }
            Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
        }
        Expr::Unary { op, expr } => {
            let inner = fold_expr(*expr);
            if let Expr::Literal(v) = &inner {
                match op {
                    UnaryOp::Neg => {
                        if let Ok(out) = v.neg() {
                            return Expr::Literal(out);
                        }
                    }
                    UnaryOp::Not => match v.truthiness() {
                        Some(b) => return Expr::Literal(Value::Integer(!b as i64)),
                        None => return Expr::Literal(Value::Null),
                    },
                }
            }
            Expr::Unary { op, expr: Box::new(inner) }
        }
        Expr::Case { operand, branches, else_expr } => Expr::Case {
            operand: operand.map(|b| Box::new(fold_expr(*b))),
            branches: branches
                .into_iter()
                .map(|(w, t)| (fold_expr(w), fold_expr(t)))
                .collect(),
            else_expr: else_expr.map(|b| Box::new(fold_expr(*b))),
        },
        Expr::Function { name, args, distinct, star } => Expr::Function {
            name,
            args: args.into_iter().map(fold_expr).collect(),
            distinct,
            star,
        },
        other => other,
    }
}

fn fold_binary(op: BinaryOp, a: &Value, b: &Value) -> Option<Value> {
    let bool_val = |o: Option<bool>| match o {
        Some(t) => Value::Integer(t as i64),
        None => Value::Null,
    };
    match op {
        BinaryOp::Add => a.add(b).ok(),
        BinaryOp::Sub => a.sub(b).ok(),
        BinaryOp::Mul => a.mul(b).ok(),
        BinaryOp::Div => a.div(b).ok(),
        BinaryOp::Rem => a.rem(b).ok(),
        BinaryOp::Eq => Some(bool_val(a.sql_eq(b))),
        BinaryOp::NotEq => Some(bool_val(a.sql_eq(b).map(|t| !t))),
        BinaryOp::Lt => Some(bool_val(a.sql_cmp(b).map(|o| o.is_lt()))),
        BinaryOp::LtEq => Some(bool_val(a.sql_cmp(b).map(|o| o.is_le()))),
        BinaryOp::Gt => Some(bool_val(a.sql_cmp(b).map(|o| o.is_gt()))),
        BinaryOp::GtEq => Some(bool_val(a.sql_cmp(b).map(|o| o.is_ge()))),
        BinaryOp::Concat => {
            if a.is_null() || b.is_null() {
                Some(Value::Null)
            } else {
                Some(Value::Text(format!("{}{}", a.render(), b.render())))
            }
        }
        // AND/OR folding would need three-valued short-circuit care with
        // non-literal siblings; the gain is negligible, so skip.
        BinaryOp::And | BinaryOp::Or => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;
    use crate::plan::{plan_from, ColRef};
    use crate::ast::{Statement, SelectBody};
    use crate::parser::parse_statement;
    use std::sync::Arc;

    fn lookup(name: &str) -> Result<Vec<String>> {
        match name {
            "a" => Ok(vec!["x".into(), "ax".into()]),
            "b" => Ok(vec!["y".into(), "bz".into()]),
            other => Err(crate::error::Error::NotFound(other.into())),
        }
    }

    fn plan_of(sql: &str) -> Plan {
        let Statement::Select(s) = parse_statement(sql).unwrap() else { panic!() };
        let SelectBody::Simple(core) = s.body else { panic!() };
        plan_from(core.from.as_ref(), core.filter.as_ref()).unwrap()
    }

    #[test]
    fn pushdown_splits_filter_across_join() {
        let p = plan_of("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.ax = 1 AND b.bz = 2");
        let opt = optimize(p, &UdfRegistry::new(), &OptimizerConfig::default(), &lookup).unwrap();
        // Both conjuncts moved below the join: top node is the join itself.
        let Plan::Join { left, right, .. } = opt else { panic!("expected join on top, got filter") };
        assert!(matches!(*left, Plan::Filter { .. }));
        assert!(matches!(*right, Plan::Filter { .. }));
    }

    #[test]
    fn cross_side_predicate_stays_above() {
        let p = plan_of("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.ax = b.bz");
        let opt = optimize(p, &UdfRegistry::new(), &OptimizerConfig::default(), &lookup).unwrap();
        let Plan::Filter { input, .. } = opt else { panic!("cross predicate must stay") };
        assert!(matches!(*input, Plan::Join { .. }));
    }

    #[test]
    fn left_join_right_side_predicate_not_pushed() {
        let p = plan_of("SELECT * FROM a LEFT JOIN b ON a.x = b.y WHERE b.bz = 2");
        let opt = optimize(p, &UdfRegistry::new(), &OptimizerConfig::default(), &lookup).unwrap();
        let Plan::Filter { input, .. } = opt else {
            panic!("predicate on null-supplying side must stay above the join")
        };
        assert!(matches!(*input, Plan::Join { .. }));
    }

    #[test]
    fn pushdown_disabled_keeps_filter_on_top() {
        let p = plan_of("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.ax = 1");
        let cfg = OptimizerConfig { pushdown: false, ..Default::default() };
        let opt = optimize(p, &UdfRegistry::new(), &cfg, &lookup).unwrap();
        assert!(matches!(opt, Plan::Filter { .. }));
    }

    #[test]
    fn expensive_udf_predicate_ordered_last() {
        struct Llm;
        impl crate::functions::ScalarUdf for Llm {
            fn name(&self) -> &str {
                "llm"
            }
            fn invoke(&self, _: &[Value]) -> Result<Value> {
                Ok(Value::Null)
            }
            fn is_expensive(&self) -> bool {
                true
            }
        }
        let mut udfs = UdfRegistry::new();
        udfs.register(Arc::new(Llm));
        let p = plan_of("SELECT * FROM a WHERE llm(a.x) = 'Yes' AND a.ax = 1");
        let opt = optimize(p, &udfs, &OptimizerConfig::default(), &lookup).unwrap();
        let Plan::Filter { predicate, .. } = opt else { panic!() };
        let parts = split_conjuncts(&predicate);
        assert_eq!(parts.len(), 2);
        assert_eq!(expr_cost(&parts[0], &udfs), 0, "cheap predicate first");
        assert_eq!(expr_cost(&parts[1], &udfs), 2, "LLM predicate last");
    }

    #[test]
    fn constant_folding_collapses_literals() {
        let e = fold_expr(parse_expression("1 + 2 * 3").unwrap());
        assert_eq!(e, Expr::Literal(Value::Integer(7)));
        let e = fold_expr(parse_expression("'a' || 'b'").unwrap());
        assert_eq!(e, Expr::Literal(Value::text("ab")));
        let e = fold_expr(parse_expression("1 < 2").unwrap());
        assert_eq!(e, Expr::Literal(Value::Integer(1)));
        // Columns do not fold.
        let e = fold_expr(parse_expression("x + 1").unwrap());
        assert!(matches!(e, Expr::Binary { .. }));
    }

    #[test]
    fn trivially_true_filter_removed() {
        let p = plan_of("SELECT * FROM a WHERE 1 = 1");
        let opt = optimize(p, &UdfRegistry::new(), &OptimizerConfig::default(), &lookup).unwrap();
        assert!(matches!(opt, Plan::Scan { .. }));
    }

    #[test]
    fn subquery_predicates_are_not_pushed() {
        let p = plan_of(
            "SELECT * FROM a JOIN b ON a.x = b.y WHERE a.ax IN (SELECT y FROM b)",
        );
        let opt = optimize(p, &UdfRegistry::new(), &OptimizerConfig::default(), &lookup).unwrap();
        let Plan::Filter { input, .. } = opt else { panic!("subquery predicate must stay") };
        assert!(matches!(*input, Plan::Join { .. }));
    }

    #[test]
    fn schema_of_plan_tracks_join() {
        let p = plan_of("SELECT * FROM a JOIN b ON a.x = b.y");
        let schema = p.schema(&lookup).unwrap();
        assert_eq!(schema.len(), 4);
        assert_eq!(schema.cols[0], ColRef::new(Some("a".into()), "x"));
    }
}
