//! Rule-based plan optimizer.
//!
//! Four rules matter for hybrid queries:
//!
//! 1. **Predicate pushdown** — WHERE conjuncts move below joins to the side
//!    that can evaluate them, shrinking join inputs.
//! 2. **Statistics-driven join reordering** — chains of INNER/CROSS joins
//!    are flattened and greedily re-ordered by catalog row counts, smallest
//!    (and connected) relations first, so intermediate results stay small;
//!    a [`Plan::Permute`] on top restores the query's written column order.
//!    Comma-joins benefit doubly: their WHERE equi-conjuncts are folded
//!    into join conditions, upgrading nested-loop cross products to hash
//!    joins.
//! 3. **Expensive-predicate ordering** — within a filter, conjuncts that
//!    call expensive UDFs (LLM functions) are evaluated *last*, so cheap
//!    database predicates prune rows before any LLM call happens. This is
//!    the §4.2 optimization ("pushing down predicates to avoid generating
//!    unnecessary data entries").
//! 4. **Constant folding** — literal arithmetic/comparisons collapse, which
//!    also lets trivially-true filters disappear.
//! 5. **Batched expensive-call marking** — filters whose predicates call
//!    expensive UDFs are split so the cheap conjuncts filter first, then a
//!    [`Plan::Batch`] node vectorizes the expensive calls (one
//!    `invoke_batch` over the surviving rows' distinct argument tuples)
//!    before the per-row expensive filter runs.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::error::Result;
use crate::functions::UdfRegistry;
use crate::plan::{conjoin, split_conjuncts, Plan, PlanJoinKind, RelSchema, SchemaProvider};
use crate::value::Value;

/// Optimizer configuration; rules can be toggled for ablation benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerConfig {
    pub pushdown: bool,
    pub order_expensive_last: bool,
    pub fold_constants: bool,
    /// Reorder INNER/CROSS join chains by catalog row-count statistics.
    pub reorder_joins: bool,
    /// Prune join output columns to what the SELECT level actually reads
    /// (a `COUNT(*)` join then emits zero-width shared rows).
    pub prune_columns: bool,
    /// Evaluate expensive UDF calls vectorized: mark call sites
    /// ([`Plan::Batch`]) so each operator issues one
    /// [`ScalarUdf::invoke_batch`](crate::functions::ScalarUdf) over the
    /// distinct argument tuples of its input batch instead of one call
    /// per row.
    pub batch_expensive_udfs: bool,
    /// Worker threads for morsel-driven parallel execution. `0` means
    /// auto: the `SWAN_THREADS` environment variable when set, otherwise
    /// the machine's available parallelism. `1` disables parallel
    /// execution entirely (the plan never grows a [`Plan::Parallel`]
    /// node, reproducing the serial engine exactly).
    pub threads: usize,
    /// Minimum base-table cardinality (from [`Catalog::row_count`]
    /// statistics) before a plan is worth parallelizing; below it the
    /// coordination overhead outweighs the work. Tests drop this to 1 to
    /// exercise the parallel operators on small tables.
    ///
    /// [`Catalog::row_count`]: crate::storage::Catalog::row_count
    pub parallel_threshold: usize,
    /// Use the columnar execution path ([`crate::columnar`]): scans serve
    /// cached typed column vectors, filters over base tables run as
    /// vectorized three-valued-logic kernels, GROUP BY keys, hash-join
    /// keys and `COUNT`/`SUM`/`AVG`/`MIN`/`MAX` read columns directly,
    /// and rows materialize lazily at the engine boundary. `false`
    /// reproduces the row-at-a-time engine bit-for-bit (the differential
    /// oracle). Defaults to the `SWAN_COLUMNAR` environment variable
    /// (unset or anything but `0` = on).
    pub columnar: bool,
    /// Rewrite `Filter(Scan)` to `Filter(IndexScan)` when the predicate
    /// pins the primary key to literals: all-column equality becomes an
    /// O(1) hash probe, a range on the first PK column becomes an
    /// O(log n + k) binary search — `WHERE pk = ?` and
    /// `WHERE pk BETWEEN ? AND ?` stop scanning the table. The full
    /// predicate stays in the filter above, so the rewrite never changes
    /// results. Defaults to the `SWAN_PAGER` environment variable (unset
    /// or anything but `0` = on), so `SWAN_PAGER=0` reproduces the
    /// scan-only planner bit-for-bit.
    pub index_scan: bool,
}

/// Default for [`OptimizerConfig::parallel_threshold`]: roughly four
/// morsels' worth of rows, the point where fan-out stops being noise.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 4096;

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            pushdown: true,
            order_expensive_last: true,
            fold_constants: true,
            reorder_joins: true,
            prune_columns: true,
            batch_expensive_udfs: true,
            threads: 0,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            columnar: default_columnar(),
            index_scan: default_index_scan(),
        }
    }
}

/// Default for [`OptimizerConfig::columnar`]: the `SWAN_COLUMNAR`
/// environment variable, read once per process (`0` = off, anything else
/// or unset = on). The CI harness flips it to pin both representations.
fn default_columnar() -> bool {
    static COLUMNAR: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *COLUMNAR.get_or_init(|| std::env::var("SWAN_COLUMNAR").map_or(true, |v| v != "0"))
}

/// Default for [`OptimizerConfig::index_scan`]: the `SWAN_PAGER`
/// environment variable, read once per process (`0` = off, anything else
/// or unset = on) — the same switch that gates the paged storage layer,
/// so one variable flips the whole PR's behavior for differential runs.
fn default_index_scan() -> bool {
    static INDEX_SCAN: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *INDEX_SCAN.get_or_init(|| std::env::var("SWAN_PAGER").map_or(true, |v| v != "0"))
}

/// A column the SELECT level reads: `(qualifier, name)`, matched
/// case-insensitively. `None` qualifier matches any column of that name.
pub type NeededCol = (Option<String>, String);

/// Optimize a plan. `provider` resolves table names to column lists (for
/// schema reasoning) and row counts (for join ordering). `needed` lists
/// the columns the enclosing SELECT reads from the plan's output — `None`
/// means "everything" (wildcards, subqueries in the projection) and
/// disables column pruning.
pub fn optimize(
    plan: Plan,
    udfs: &UdfRegistry,
    config: &OptimizerConfig,
    provider: &dyn SchemaProvider,
    needed: Option<&[NeededCol]>,
) -> Result<Plan> {
    let plan = if config.fold_constants { fold_plan(plan) } else { plan };
    let plan = if config.pushdown { pushdown(plan, provider)? } else { plan };
    let plan = if config.reorder_joins { reorder_joins(plan, provider)? } else { plan };
    let plan = if config.order_expensive_last { order_filters(plan, udfs) } else { plan };
    let plan = if config.index_scan { index_scans(plan, provider) } else { plan };
    let plan = match (config.prune_columns, needed) {
        (true, Some(needed)) => prune_columns(plan, Some(needed.to_vec()), provider)?,
        _ => plan,
    };
    let plan = if config.batch_expensive_udfs { batch_expensive_calls(plan, udfs) } else { plan };
    let threads = crate::exec_parallel::effective_threads(config);
    let plan = if threads > 1 {
        parallelize(plan, provider, threads, config.parallel_threshold)
    } else {
        plan
    };
    Ok(plan)
}

// ---- rule 6: morsel-driven parallelization ------------------------------

/// Annotate the plan root with [`Plan::Parallel`] when the catalog's
/// row-count statistics say the input is large enough to amortize fan-out.
/// Runs last (after batching), so the parallel executor sees the final
/// operator tree; never runs when the effective thread count is 1.
fn parallelize(
    plan: Plan,
    provider: &dyn SchemaProvider,
    threads: usize,
    threshold: usize,
) -> Plan {
    if matches!(plan, Plan::Empty) {
        return plan;
    }
    if plan_input_rows(&plan, provider) < threshold {
        return plan;
    }
    Plan::Parallel { input: Box::new(plan), partitions: threads }
}

/// Upper-bound cardinality of a plan's inputs: the largest base-table row
/// count in the tree ([`SchemaProvider::table_rows`], i.e.
/// `Catalog::row_count`). Derived tables and unknown tables count as
/// unbounded — a wrapped plan over a small derived input costs one morsel
/// dispatch, while an unwrapped plan over a large one costs the whole
/// speedup.
fn plan_input_rows(plan: &Plan, provider: &dyn SchemaProvider) -> usize {
    match plan {
        Plan::Scan { table, .. } => provider.table_rows(table).unwrap_or(usize::MAX),
        // An index scan reads O(matches), not O(table) — never worth
        // morsel fan-out on its own.
        Plan::IndexScan { .. } => 0,
        Plan::Derived { .. } => usize::MAX,
        Plan::Join { left, right, .. } => {
            plan_input_rows(left, provider).max(plan_input_rows(right, provider))
        }
        Plan::Filter { input, .. }
        | Plan::Batch { input, .. }
        | Plan::Permute { input, .. }
        | Plan::Parallel { input, .. } => plan_input_rows(input, provider),
        Plan::Empty => 0,
    }
}

// ---- rule 1: predicate pushdown ---------------------------------------

fn pushdown(plan: Plan, provider: &dyn SchemaProvider) -> Result<Plan> {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = pushdown(*input, provider)?;
            push_predicate_into(input, split_conjuncts(&predicate), provider)
        }
        Plan::Join { left, right, kind, on, emit } => Ok(Plan::Join {
            left: Box::new(pushdown(*left, provider)?),
            right: Box::new(pushdown(*right, provider)?),
            kind,
            on,
            emit,
        }),
        other => Ok(other),
    }
}

/// Push each conjunct as deep as it can go; conjuncts that cannot move stay
/// in a filter above `plan`.
fn push_predicate_into(
    plan: Plan,
    conjuncts: Vec<Expr>,
    provider: &dyn SchemaProvider,
) -> Result<Plan> {
    match plan {
        Plan::Join { left, right, kind, on, emit } => {
            let left_schema = left.schema(provider)?;
            let right_schema = right.schema(provider)?;
            let combined = left_schema.join(&right_schema);
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut stay = Vec::new();
            for c in conjuncts {
                if expr_has_subquery(&c) {
                    // Subqueries may be correlated with the full row; keep up top.
                    stay.push(c);
                } else if !unambiguous_in(&c, &combined) {
                    // An unqualified name ambiguous in the *combined* schema
                    // must not silently bind to whichever side resolves it:
                    // leave it up top so runtime evaluation raises the same
                    // ambiguity error the unoptimized plan does.
                    stay.push(c);
                } else if left_schema.covers(&c) {
                    to_left.push(c);
                } else if right_schema.covers(&c) {
                    // Pushing below the null-supplying side of a LEFT join
                    // changes semantics (it would filter before padding);
                    // keep such predicates above the join.
                    if kind == PlanJoinKind::Left {
                        stay.push(c);
                    } else {
                        to_right.push(c);
                    }
                } else {
                    stay.push(c);
                }
            }
            let new_left = if to_left.is_empty() {
                *left
            } else {
                push_predicate_into(*left, to_left, provider)?
            };
            let new_right = if to_right.is_empty() {
                *right
            } else {
                push_predicate_into(*right, to_right, provider)?
            };
            let joined = Plan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                kind,
                on,
                emit,
            };
            Ok(wrap_filter(joined, stay))
        }
        Plan::Filter { input, predicate } => {
            // Merge with an existing filter and keep pushing.
            let mut all = split_conjuncts(&predicate);
            all.extend(conjuncts);
            push_predicate_into(*input, all, provider)
        }
        // `Parallel` and `IndexScan` never exist while pushdown runs
        // (those rules come later), but the match stays total for safety.
        leaf @ (Plan::Scan { .. }
        | Plan::IndexScan { .. }
        | Plan::Derived { .. }
        | Plan::Permute { .. }
        | Plan::Batch { .. }
        | Plan::Parallel { .. }
        | Plan::Empty) => Ok(wrap_filter(leaf, conjuncts)),
    }
}

fn wrap_filter(plan: Plan, conjuncts: Vec<Expr>) -> Plan {
    match conjoin(conjuncts) {
        Some(pred) => Plan::Filter { input: Box::new(plan), predicate: pred },
        None => plan,
    }
}

pub(crate) fn expr_has_subquery(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if matches!(
            x,
            Expr::ScalarSubquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. }
        ) {
            found = true;
        }
    });
    found
}

/// True iff no column reference in `expr` is *ambiguous* against `schema`
/// (unknown names are fine — they may resolve in an outer scope). Rules
/// that move predicates below a join must not let an ambiguous unqualified
/// name silently bind to one side.
fn unambiguous_in(expr: &Expr, schema: &RelSchema) -> bool {
    let mut ok = true;
    expr.walk(&mut |e| {
        if let Expr::Column { table, name } = e {
            if schema.resolve(table.as_deref(), name).is_err() {
                ok = false;
            }
        }
    });
    ok
}

// ---- rule 2: statistics-driven join reordering --------------------------

/// Row-count estimate for leaves whose cardinality the catalog cannot
/// answer (derived tables, opaque subtrees). Large enough to sort after
/// every known table, small enough to leave arithmetic headroom.
const UNKNOWN_ROWS: f64 = 1e15;

/// Per-conjunct selectivity guess for filtered scans. The exact value is
/// uncritical: it only has to rank a filtered big table below the raw one.
const FILTER_SELECTIVITY: f64 = 0.3;

fn reorder_joins(plan: Plan, provider: &dyn SchemaProvider) -> Result<Plan> {
    match plan {
        Plan::Filter { input, predicate } => {
            if matches!(*input, Plan::Join { .. }) {
                // Fold the filter's conjuncts into the chain so residual
                // equi-predicates (e.g. comma-join WHERE clauses) become
                // join conditions.
                reorder_chain(*input, split_conjuncts(&predicate), provider)
            } else {
                Ok(Plan::Filter {
                    input: Box::new(reorder_joins(*input, provider)?),
                    predicate,
                })
            }
        }
        join @ Plan::Join { .. } => reorder_chain(join, Vec::new(), provider),
        other => Ok(other),
    }
}

/// Flatten a chain of INNER/CROSS joins (plus any pooled filter conjuncts),
/// greedily rebuild it smallest-and-connected-first, and restore the
/// original output column order with a [`Plan::Permute`].
fn reorder_chain(
    join: Plan,
    filter_pool: Vec<Expr>,
    provider: &dyn SchemaProvider,
) -> Result<Plan> {
    // Kept around in case the chain turns out not to be safely poolable.
    let original = join.clone();

    let mut leaves = Vec::new();
    let mut on_pool = Vec::new();
    flatten_chain(join, &mut leaves, &mut on_pool);

    // Recursively reorder inside each leaf (e.g. an inner chain under a
    // LEFT join subtree).
    let mut reordered_leaves = Vec::with_capacity(leaves.len());
    for leaf in leaves {
        reordered_leaves.push(match leaf {
            j @ Plan::Join { .. } => reorder_inside_join(j, provider)?,
            other => reorder_joins(other, provider)?,
        });
    }
    let leaves = reordered_leaves;

    let schemas: Vec<RelSchema> = leaves
        .iter()
        .map(|l| l.schema(provider))
        .collect::<Result<_>>()?;
    let full_schema = schemas
        .iter()
        .fold(RelSchema::default(), |acc, s| acc.join(s));

    // An ON conjunct can be unambiguous at its own join level yet
    // ambiguous against the whole chain (another leaf reusing the name);
    // re-attaching it anywhere else would change which column it binds to.
    // Such chains are left in their written shape.
    if on_pool.iter().any(|c| !unambiguous_in(c, &full_schema)) {
        let j = reorder_inside_join(original, provider)?;
        return Ok(wrap_filter(j, filter_pool));
    }

    // Filter conjuncts were always evaluated against the full row: an
    // ambiguous one must keep raising its runtime ambiguity error from a
    // filter on top rather than silently binding to one leaf. Subquery
    // conjuncts never move into join conditions either.
    let mut stay: Vec<Expr> = Vec::new();
    let mut preds: Vec<Expr> = on_pool;
    for c in filter_pool {
        if expr_has_subquery(&c) || !unambiguous_in(&c, &full_schema) {
            stay.push(c);
        } else {
            preds.push(c);
        }
    }
    let (subq_preds, mut preds): (Vec<Expr>, Vec<Expr>) =
        preds.into_iter().partition(expr_has_subquery);
    stay.extend(subq_preds);

    let estimates: Vec<f64> = leaves.iter().map(|l| estimate_rows(l, provider)).collect();

    // Only chains of three or more relations gain from reordering: for a
    // two-way join the executor already picks the smaller build side at
    // run time, and skipping the rewrite avoids a needless Permute. And
    // without at least one *genuinely known* cardinality (a scan the
    // catalog can count — a filtered derived table's discounted sentinel
    // does not count), the written order stands.
    let any_known = leaves.iter().any(|l| has_known_cardinality(l, provider));
    let order: Vec<usize> = if leaves.len() >= 3 && any_known {
        greedy_order(&schemas, &estimates, &preds)
    } else {
        (0..leaves.len()).collect()
    };

    // Rebuild left-deep in the chosen order, attaching each pooled
    // conjunct at the first join where its columns are all available.
    let mut iter = order.iter();
    let &first = iter.next().expect("chain has at least one leaf");
    let mut current_schema = schemas[first].clone();
    let mut indexed: Vec<(usize, Plan)> = leaves.into_iter().enumerate().collect();
    let take = |indexed: &mut Vec<(usize, Plan)>, want: usize| -> Plan {
        let pos = indexed.iter().position(|(i, _)| *i == want).expect("leaf present");
        indexed.remove(pos).1
    };
    let first_preds = drain_covered(&mut preds, &current_schema);
    let mut tree = wrap_filter(take(&mut indexed, first), first_preds);

    for &next in iter {
        let leaf_schema = &schemas[next];
        // Conjuncts answerable by the new leaf alone filter it before the
        // join; the rest of the newly-covered conjuncts become the ON.
        let leaf_only = drain_covered(&mut preds, leaf_schema);
        let leaf_plan = wrap_filter(take(&mut indexed, next), leaf_only);
        let combined = current_schema.join(leaf_schema);
        let on_parts = drain_covered(&mut preds, &combined);
        let kind = if on_parts.is_empty() { PlanJoinKind::Cross } else { PlanJoinKind::Inner };
        tree = Plan::Join {
            left: Box::new(tree),
            right: Box::new(leaf_plan),
            kind,
            on: conjoin(on_parts),
            emit: None,
        };
        current_schema = combined;
    }

    // Restore the written column order if the chain moved.
    let identity: Vec<usize> = (0..order.len()).collect();
    if order != identity {
        let mut new_offsets = vec![0usize; order.len()];
        let mut off = 0;
        for &leaf in &order {
            new_offsets[leaf] = off;
            off += schemas[leaf].len();
        }
        let mut mapping = Vec::with_capacity(off);
        for (leaf, schema) in schemas.iter().enumerate() {
            mapping.extend((0..schema.len()).map(|c| new_offsets[leaf] + c));
        }
        tree = Plan::Permute { input: Box::new(tree), mapping };
    }

    // Anything not attachable (correlated/outer references), ambiguous
    // names, and subquery predicates stay in a filter on top.
    preds.extend(stay);
    Ok(wrap_filter(tree, preds))
}

/// Recurse into a join subtree that is itself a chain boundary (LEFT join):
/// reorder each side independently, leave the join itself alone.
fn reorder_inside_join(plan: Plan, provider: &dyn SchemaProvider) -> Result<Plan> {
    match plan {
        Plan::Join { left, right, kind, on, emit } => Ok(Plan::Join {
            left: Box::new(reorder_joins(*left, provider)?),
            right: Box::new(reorder_joins(*right, provider)?),
            kind,
            on,
            emit,
        }),
        other => reorder_joins(other, provider),
    }
}

/// Collect the maximal INNER/CROSS chain rooted at `plan` into `leaves`,
/// pooling every ON conjunct. LEFT joins are chain boundaries (reordering
/// across them changes NULL-padding semantics) and stay as leaves.
fn flatten_chain(plan: Plan, leaves: &mut Vec<Plan>, pool: &mut Vec<Expr>) {
    match plan {
        Plan::Join { left, right, kind, on, emit: None }
            if kind == PlanJoinKind::Inner || kind == PlanJoinKind::Cross =>
        {
            flatten_chain(*left, leaves, pool);
            flatten_chain(*right, leaves, pool);
            if let Some(on) = on {
                pool.extend(split_conjuncts(&on));
            }
        }
        other => leaves.push(other),
    }
}

/// Does this leaf bottom out in a table whose row count the catalog can
/// actually answer? (Filters/permutes only scale an estimate; they don't
/// make an unknown one known.)
fn has_known_cardinality(leaf: &Plan, provider: &dyn SchemaProvider) -> bool {
    match leaf {
        Plan::Scan { table, .. } => provider.table_rows(table).is_some(),
        Plan::Filter { input, .. } | Plan::Permute { input, .. } => {
            has_known_cardinality(input, provider)
        }
        _ => false,
    }
}

/// Cardinality estimate for a chain leaf.
fn estimate_rows(leaf: &Plan, provider: &dyn SchemaProvider) -> f64 {
    match leaf {
        Plan::Scan { table, .. } => provider
            .table_rows(table)
            .map(|r| r as f64)
            .unwrap_or(UNKNOWN_ROWS),
        Plan::Filter { input, predicate } => {
            let conjuncts = split_conjuncts(predicate).len() as i32;
            estimate_rows(input, provider) * FILTER_SELECTIVITY.powi(conjuncts)
        }
        Plan::Permute { input, .. } => estimate_rows(input, provider),
        _ => UNKNOWN_ROWS,
    }
}

/// Greedy ordering: start from the smallest leaf, then repeatedly add the
/// smallest leaf *connected* to the current set by a pooled predicate
/// (falling back to the overall smallest when nothing connects). Ties keep
/// written order, so the rewrite is a no-op on equal-size chains.
fn greedy_order(schemas: &[RelSchema], estimates: &[f64], preds: &[Expr]) -> Vec<usize> {
    let n = schemas.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);

    let start = *remaining
        .iter()
        .min_by(|&&a, &&b| estimates[a].total_cmp(&estimates[b]))
        .expect("non-empty chain");
    remaining.retain(|&i| i != start);
    order.push(start);
    let mut current = schemas[start].clone();

    while !remaining.is_empty() {
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                let combined = current.join(&schemas[i]);
                preds
                    .iter()
                    .any(|p| combined.covers(p) && !current.covers(p) && !schemas[i].covers(p))
            })
            .collect();
        let pick_from: &[usize] = if connected.is_empty() { &remaining } else { &connected };
        let pick = *pick_from
            .iter()
            .min_by(|&&a, &&b| estimates[a].total_cmp(&estimates[b]))
            .expect("non-empty candidate set");
        remaining.retain(|&i| i != pick);
        current = current.join(&schemas[pick]);
        order.push(pick);
    }
    order
}

/// Remove and return every conjunct fully covered by `schema`.
fn drain_covered(preds: &mut Vec<Expr>, schema: &RelSchema) -> Vec<Expr> {
    let mut covered = Vec::new();
    let mut rest = Vec::new();
    for p in preds.drain(..) {
        if schema.covers(&p) {
            covered.push(p);
        } else {
            rest.push(p);
        }
    }
    *preds = rest;
    covered
}

// ---- column pruning ------------------------------------------------------

/// Collect the columns an expression reads; `None` when the expression
/// contains a subquery (whose correlated references are invisible to
/// `Expr::walk`), which forces "keep everything".
pub fn expr_columns(e: &Expr) -> Option<Vec<NeededCol>> {
    if expr_has_subquery(e) {
        return None;
    }
    let mut out = Vec::new();
    e.walk(&mut |x| {
        if let Expr::Column { table, name } = x {
            out.push((table.clone(), name.clone()));
        }
    });
    Some(out)
}

fn col_needed(qualifier: Option<&str>, name: &str, needed: &[NeededCol]) -> bool {
    needed.iter().any(|(nq, nn)| {
        name.eq_ignore_ascii_case(nn)
            && match (qualifier, nq.as_deref()) {
                (_, None) | (None, _) => true,
                (Some(q), Some(n)) => q.eq_ignore_ascii_case(n),
            }
    })
}

/// Top-down column pruning: each join materializes only the columns the
/// operators above it read. `needed == None` keeps everything below this
/// point. A [`Plan::Permute`] (from join reordering) is a pruning
/// boundary — its index mapping assumes full child widths.
fn prune_columns(
    plan: Plan,
    needed: Option<Vec<NeededCol>>,
    provider: &dyn SchemaProvider,
) -> Result<Plan> {
    match plan {
        Plan::Filter { input, predicate } => {
            let needed = match (needed, expr_columns(&predicate)) {
                (Some(mut n), Some(mut cs)) => {
                    n.append(&mut cs);
                    Some(n)
                }
                _ => None,
            };
            Ok(Plan::Filter {
                input: Box::new(prune_columns(*input, needed, provider)?),
                predicate,
            })
        }
        Plan::Join { left, right, kind, on, emit: None } => {
            let Some(needed) = needed else {
                // Keep everything; still recurse so nested prunable joins
                // under an unprunable one are left intact (needed = None).
                return Ok(Plan::Join {
                    left: Box::new(prune_columns(*left, None, provider)?),
                    right: Box::new(prune_columns(*right, None, provider)?),
                    kind,
                    on,
                    emit: None,
                });
            };
            // The children must still provide the join keys; the join's own
            // output only carries what the operators above read.
            let on_cols = match on.as_ref().map(expr_columns) {
                Some(None) => None, // subquery in ON: give up below here
                Some(Some(cs)) => Some(cs),
                None => Some(Vec::new()),
            };
            let child_needed = on_cols.map(|mut cs| {
                cs.extend(needed.iter().cloned());
                cs
            });
            // Prune the children *first*: the emit indices below must be
            // computed against the children's post-prune output schemas,
            // or they would go stale the moment a nested join narrows.
            let left = prune_columns(*left, child_needed.clone(), provider)?;
            let right = prune_columns(*right, child_needed, provider)?;
            let full = left.schema(provider)?.join(&right.schema(provider)?);
            let emit: Vec<usize> = full
                .cols
                .iter()
                .enumerate()
                .filter(|(_, c)| col_needed(c.qualifier.as_deref(), &c.name, &needed))
                .map(|(i, _)| i)
                .collect();
            let emit = if emit.len() == full.len() { None } else { Some(emit) };
            Ok(Plan::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
                emit,
            })
        }
        Plan::Permute { input, mapping } => {
            let Some(needed) = needed else {
                return Ok(Plan::Permute {
                    input: Box::new(prune_columns(*input, None, provider)?),
                    mapping,
                });
            };
            // Translate the needed-set through the permutation so the two
            // flagship rules compose: prune the reordered chain underneath,
            // then rewrite the mapping against the narrowed input. Columns
            // sharing a (qualifier, name) share pruning fate (the match is
            // by name), so aligning the pre/post schemas positionally with
            // a forward scan is unambiguous.
            let pre = input.schema(provider)?;
            let pruned = prune_columns(*input, Some(needed.clone()), provider)?;
            let post = pruned.schema(provider)?;
            let mut post_of_pre: Vec<Option<usize>> = vec![None; pre.len()];
            let mut j = 0;
            for (i, c) in pre.cols.iter().enumerate() {
                if j < post.len() && post.cols[j] == *c {
                    post_of_pre[i] = Some(j);
                    j += 1;
                }
            }
            let mut new_mapping = Vec::new();
            for &m in &mapping {
                let col = &pre.cols[m];
                if col_needed(col.qualifier.as_deref(), &col.name, &needed) {
                    if let Some(p) = post_of_pre[m] {
                        new_mapping.push(p);
                    }
                }
            }
            let identity = new_mapping.len() == post.len()
                && new_mapping.iter().enumerate().all(|(i, &p)| i == p);
            if identity {
                Ok(pruned)
            } else {
                Ok(Plan::Permute { input: Box::new(pruned), mapping: new_mapping })
            }
        }
        other => Ok(other),
    }
}

// ---- rule 3: expensive predicates last ---------------------------------

fn order_filters(plan: Plan, udfs: &UdfRegistry) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = Box::new(order_filters(*input, udfs));
            let mut parts = split_conjuncts(&predicate);
            // Stable partition: cheap predicates first, expensive last,
            // preserving the relative order inside each class.
            parts.sort_by_key(|p| expr_cost(p, udfs));
            Plan::Filter { input, predicate: conjoin(parts).expect("non-empty") }
        }
        Plan::Join { left, right, kind, on, emit } => Plan::Join {
            left: Box::new(order_filters(*left, udfs)),
            right: Box::new(order_filters(*right, udfs)),
            kind,
            on,
            emit,
        },
        Plan::Permute { input, mapping } => {
            Plan::Permute { input: Box::new(order_filters(*input, udfs)), mapping }
        }
        other => other,
    }
}

/// Cost class of a predicate: 0 = cheap, 1 = contains a subquery,
/// 2 = calls an expensive UDF.
pub fn expr_cost(e: &Expr, udfs: &UdfRegistry) -> u8 {
    let mut cost = 0u8;
    e.walk(&mut |x| match x {
        Expr::Function { name, .. } if udfs.is_expensive(name) => cost = cost.max(2),
        Expr::ScalarSubquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. } => {
            cost = cost.max(1)
        }
        _ => {}
    });
    cost
}

// ---- rule 7: primary-key index scans ------------------------------------

/// Rewrite `Filter(pred, Scan(t))` to `Filter(pred, IndexScan(t, bounds))`
/// when `pred`'s conjuncts pin `t`'s primary key to non-NULL literals.
/// Runs after pushdown and filter ordering (so filters sit directly on
/// their scans) and before parallelization. The predicate is kept whole:
/// the index probe only narrows the row set the filter inspects, so the
/// rewrite is unconditionally sound — any probe imprecision (group-key
/// equality being coarser than SQL `=`, NULLs under a sole upper bound)
/// is re-checked row by row.
fn index_scans(plan: Plan, provider: &dyn SchemaProvider) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = index_scans(*input, provider);
            if let Plan::Scan { table, qualifier } = &input {
                if let Some(bounds) = pk_bounds(&predicate, table, qualifier, provider) {
                    return Plan::Filter {
                        input: Box::new(Plan::IndexScan {
                            table: table.clone(),
                            qualifier: qualifier.clone(),
                            bounds,
                        }),
                        predicate,
                    };
                }
            }
            Plan::Filter { input: Box::new(input), predicate }
        }
        Plan::Join { left, right, kind, on, emit } => Plan::Join {
            left: Box::new(index_scans(*left, provider)),
            right: Box::new(index_scans(*right, provider)),
            kind,
            on,
            emit,
        },
        Plan::Batch { input, calls } => {
            Plan::Batch { input: Box::new(index_scans(*input, provider)), calls }
        }
        Plan::Permute { input, mapping } => {
            Plan::Permute { input: Box::new(index_scans(*input, provider)), mapping }
        }
        Plan::Parallel { input, partitions } => {
            Plan::Parallel { input: Box::new(index_scans(*input, provider)), partitions }
        }
        other => other,
    }
}

/// Extract primary-key bounds from a predicate's top-level conjuncts.
/// All PK columns pinned by equality → `Point`; otherwise any comparison
/// or non-negated BETWEEN on the *first* PK column → `Range` (an
/// equality there doubles as an inclusive two-sided bound). Only
/// conjuncts of the shape `col op literal` / `literal op col` with a
/// non-NULL literal participate; everything else is left to the filter.
fn pk_bounds(
    predicate: &Expr,
    table: &str,
    qualifier: &str,
    provider: &dyn SchemaProvider,
) -> Option<crate::plan::IndexBounds> {
    use crate::plan::IndexBounds;
    let pk = provider.table_primary_key(table)?;
    // Which PK position (if any) a column expression names on this scan.
    let pk_pos = |e: &Expr| -> Option<usize> {
        let Expr::Column { table: q, name } = e else { return None };
        if q.as_deref().is_some_and(|q| !q.eq_ignore_ascii_case(qualifier)) {
            return None;
        }
        pk.iter().position(|p| p.eq_ignore_ascii_case(name))
    };
    fn lit(e: &Expr) -> Option<&Value> {
        match e {
            Expr::Literal(v) if !v.is_null() => Some(v),
            _ => None,
        }
    }
    let mut eq: Vec<Option<Value>> = vec![None; pk.len()];
    let mut lower: Option<(Value, bool)> = None;
    let mut upper: Option<(Value, bool)> = None;
    // Keep the tighter of two same-side bounds (sort_cmp agrees with SQL
    // comparison on non-NULL values, so "tighter" is well-defined); on a
    // tie the exclusive bound wins.
    let tighten_lower = |cur: &mut Option<(Value, bool)>, v: &Value, incl: bool| {
        let replace = match cur {
            None => true,
            Some((old, old_incl)) => match v.sort_cmp(old) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => *old_incl && !incl,
                std::cmp::Ordering::Less => false,
            },
        };
        if replace {
            *cur = Some((v.clone(), incl));
        }
    };
    let tighten_upper = |cur: &mut Option<(Value, bool)>, v: &Value, incl: bool| {
        let replace = match cur {
            None => true,
            Some((old, old_incl)) => match v.sort_cmp(old) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => *old_incl && !incl,
                std::cmp::Ordering::Greater => false,
            },
        };
        if replace {
            *cur = Some((v.clone(), incl));
        }
    };
    for c in split_conjuncts(predicate) {
        match &c {
            Expr::Binary { op, left, right } => {
                // Normalize to `col op lit`, flipping the operator when
                // the literal is on the left.
                let (pos, v, op) = match (pk_pos(left), lit(right)) {
                    (Some(p), Some(v)) => (p, v, *op),
                    _ => match (lit(left), pk_pos(right)) {
                        (Some(v), Some(p)) => {
                            let flipped = match *op {
                                BinaryOp::Lt => BinaryOp::Gt,
                                BinaryOp::LtEq => BinaryOp::GtEq,
                                BinaryOp::Gt => BinaryOp::Lt,
                                BinaryOp::GtEq => BinaryOp::LtEq,
                                other => other,
                            };
                            (p, v, flipped)
                        }
                        _ => continue,
                    },
                };
                match op {
                    BinaryOp::Eq => {
                        if eq[pos].is_none() {
                            eq[pos] = Some(v.clone());
                        }
                        if pos == 0 {
                            tighten_lower(&mut lower, v, true);
                            tighten_upper(&mut upper, v, true);
                        }
                    }
                    BinaryOp::Gt if pos == 0 => tighten_lower(&mut lower, v, false),
                    BinaryOp::GtEq if pos == 0 => tighten_lower(&mut lower, v, true),
                    BinaryOp::Lt if pos == 0 => tighten_upper(&mut upper, v, false),
                    BinaryOp::LtEq if pos == 0 => tighten_upper(&mut upper, v, true),
                    _ => {}
                }
            }
            Expr::Between { expr, low, high, negated: false } => {
                if pk_pos(expr) == Some(0) {
                    if let (Some(lo), Some(hi)) = (lit(low), lit(high)) {
                        tighten_lower(&mut lower, lo, true);
                        tighten_upper(&mut upper, hi, true);
                    }
                }
            }
            _ => {}
        }
    }
    if eq.iter().all(Option::is_some) {
        return Some(IndexBounds::Point {
            key: eq.into_iter().map(|v| v.expect("checked")).collect(),
        });
    }
    if lower.is_some() || upper.is_some() {
        return Some(IndexBounds::Range { lower, upper });
    }
    None
}

// ---- rule 5: batched expensive-call marking -----------------------------

/// Insert [`Plan::Batch`] nodes under filters that call expensive UDFs.
///
/// `Filter(cheap AND expensive)` becomes
/// `Filter(expensive) ← Batch(expensive) ← Filter(cheap)`: the cheap
/// conjuncts keep pruning rows first (preserving rule 3's
/// cheap-predicates-first cost behaviour), the batch node then answers the
/// expensive calls for all *surviving* rows in one vectorized
/// `invoke_batch`, and the per-row expensive filter evaluates against the
/// prefetched results. Runs last, so no other rule ever sees a Batch node.
fn batch_expensive_calls(plan: Plan, udfs: &UdfRegistry) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = Box::new(batch_expensive_calls(*input, udfs));
            let (expensive, cheap): (Vec<Expr>, Vec<Expr>) = split_conjuncts(&predicate)
                .into_iter()
                .partition(|c| expr_cost(c, udfs) >= 2);
            if expensive.is_empty() {
                return Plan::Filter { input, predicate };
            }
            let below = wrap_filter(*input, cheap);
            let marked = Plan::Batch { input: Box::new(below), calls: expensive.clone() };
            Plan::Filter {
                input: Box::new(marked),
                predicate: conjoin(expensive).expect("non-empty"),
            }
        }
        Plan::Join { left, right, kind, on, emit } => Plan::Join {
            left: Box::new(batch_expensive_calls(*left, udfs)),
            right: Box::new(batch_expensive_calls(*right, udfs)),
            kind,
            on,
            emit,
        },
        Plan::Permute { input, mapping } => {
            Plan::Permute { input: Box::new(batch_expensive_calls(*input, udfs)), mapping }
        }
        other => other,
    }
}

// ---- rule 4: constant folding ------------------------------------------

fn fold_plan(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let folded = fold_expr(predicate);
            // A literally-true filter disappears.
            if let Expr::Literal(v) = &folded {
                if v.truthiness() == Some(true) {
                    return fold_plan(*input);
                }
            }
            Plan::Filter { input: Box::new(fold_plan(*input)), predicate: folded }
        }
        Plan::Join { left, right, kind, on, emit } => Plan::Join {
            left: Box::new(fold_plan(*left)),
            right: Box::new(fold_plan(*right)),
            kind,
            on: on.map(fold_expr),
            emit,
        },
        Plan::Permute { input, mapping } => {
            Plan::Permute { input: Box::new(fold_plan(*input)), mapping }
        }
        other => other,
    }
}

/// Fold literal subtrees bottom-up. Only pure, error-free operations fold;
/// anything that could raise (overflow, type error) is left for runtime.
pub fn fold_expr(e: Expr) -> Expr {
    match e {
        Expr::Binary { op, left, right } => {
            let left = fold_expr(*left);
            let right = fold_expr(*right);
            if let (Expr::Literal(a), Expr::Literal(b)) = (&left, &right) {
                if let Some(v) = fold_binary(op, a, b) {
                    return Expr::Literal(v);
                }
            }
            Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
        }
        Expr::Unary { op, expr } => {
            let inner = fold_expr(*expr);
            if let Expr::Literal(v) = &inner {
                match op {
                    UnaryOp::Neg => {
                        if let Ok(out) = v.neg() {
                            return Expr::Literal(out);
                        }
                    }
                    UnaryOp::Not => match v.truthiness() {
                        Some(b) => return Expr::Literal(Value::Integer(!b as i64)),
                        None => return Expr::Literal(Value::Null),
                    },
                }
            }
            Expr::Unary { op, expr: Box::new(inner) }
        }
        Expr::Case { operand, branches, else_expr } => Expr::Case {
            operand: operand.map(|b| Box::new(fold_expr(*b))),
            branches: branches
                .into_iter()
                .map(|(w, t)| (fold_expr(w), fold_expr(t)))
                .collect(),
            else_expr: else_expr.map(|b| Box::new(fold_expr(*b))),
        },
        Expr::Function { name, args, distinct, star } => Expr::Function {
            name,
            args: args.into_iter().map(fold_expr).collect(),
            distinct,
            star,
        },
        other => other,
    }
}

fn fold_binary(op: BinaryOp, a: &Value, b: &Value) -> Option<Value> {
    let bool_val = |o: Option<bool>| match o {
        Some(t) => Value::Integer(t as i64),
        None => Value::Null,
    };
    match op {
        BinaryOp::Add => a.add(b).ok(),
        BinaryOp::Sub => a.sub(b).ok(),
        BinaryOp::Mul => a.mul(b).ok(),
        BinaryOp::Div => a.div(b).ok(),
        BinaryOp::Rem => a.rem(b).ok(),
        BinaryOp::Eq => Some(bool_val(a.sql_eq(b))),
        BinaryOp::NotEq => Some(bool_val(a.sql_eq(b).map(|t| !t))),
        BinaryOp::Lt => Some(bool_val(a.sql_cmp(b).map(|o| o.is_lt()))),
        BinaryOp::LtEq => Some(bool_val(a.sql_cmp(b).map(|o| o.is_le()))),
        BinaryOp::Gt => Some(bool_val(a.sql_cmp(b).map(|o| o.is_gt()))),
        BinaryOp::GtEq => Some(bool_val(a.sql_cmp(b).map(|o| o.is_ge()))),
        BinaryOp::Concat => {
            if a.is_null() || b.is_null() {
                Some(Value::Null)
            } else {
                Some(Value::text(format!("{}{}", a.render(), b.render())))
            }
        }
        // AND/OR folding would need three-valued short-circuit care with
        // non-literal siblings; the gain is negligible, so skip.
        BinaryOp::And | BinaryOp::Or => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{SelectBody, Statement};
    use crate::parser::{parse_expression, parse_statement};
    use crate::plan::{plan_from, ColRef, IndexBounds};
    use std::sync::Arc;

    /// Two small tables (a: 1000 rows, b: 10 rows) plus a large `fact`
    /// (100k) and tiny `dim` (100) for reorder tests.
    struct Fixture;

    impl SchemaProvider for Fixture {
        fn table_columns(&self, name: &str) -> Result<Vec<String>> {
            match name {
                "a" => Ok(vec!["x".into(), "ax".into()]),
                "b" => Ok(vec!["y".into(), "bz".into()]),
                "fact" => Ok(vec!["id".into(), "grp".into()]),
                "dim" => Ok(vec!["id".into(), "label".into()]),
                "tiny" => Ok(vec!["id".into(), "tag".into()]),
                other => Err(crate::error::Error::NotFound(other.into())),
            }
        }

        fn table_rows(&self, name: &str) -> Option<usize> {
            match name {
                "a" => Some(1000),
                "b" => Some(10),
                "fact" => Some(100_000),
                "dim" => Some(100),
                "tiny" => Some(5),
                _ => None,
            }
        }
    }

    fn plan_of(sql: &str) -> Plan {
        let Statement::Select(s) = parse_statement(sql).unwrap() else { panic!() };
        let SelectBody::Simple(core) = s.body else { panic!() };
        plan_from(core.from.as_ref(), core.filter.as_ref()).unwrap()
    }

    fn opt(sql: &str) -> Plan {
        optimize(plan_of(sql), &UdfRegistry::new(), &OptimizerConfig::default(), &Fixture, None)
            .unwrap()
    }

    #[test]
    fn pushdown_splits_filter_across_join() {
        let opt = opt("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.ax = 1 AND b.bz = 2");
        // Both conjuncts moved below the join: top node is the join itself.
        let Plan::Join { left, right, .. } = opt else { panic!("expected join on top, got filter") };
        assert!(matches!(*left, Plan::Filter { .. }));
        assert!(matches!(*right, Plan::Filter { .. }));
    }

    #[test]
    fn cross_side_predicate_stays_with_the_join() {
        let opt = opt("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.ax = b.bz");
        // The two-sided conjunct either stays in a filter above the join or
        // (post join-reordering) is folded into the join condition; both
        // keep it out of the single-table inputs.
        match opt {
            Plan::Filter { input, .. } => assert!(matches!(*input, Plan::Join { .. })),
            Plan::Join { on, .. } => assert!(on.is_some()),
            other => panic!("unexpected top node: {other:?}"),
        }
    }

    #[test]
    fn left_join_right_side_predicate_not_pushed() {
        let opt = opt("SELECT * FROM a LEFT JOIN b ON a.x = b.y WHERE b.bz = 2");
        let Plan::Filter { input, .. } = opt else {
            panic!("predicate on null-supplying side must stay above the join")
        };
        assert!(matches!(*input, Plan::Join { .. }));
    }

    #[test]
    fn pushdown_disabled_keeps_filter_on_top() {
        let p = plan_of("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.ax = 1");
        let cfg = OptimizerConfig {
            pushdown: false,
            reorder_joins: false,
            ..Default::default()
        };
        let opt = optimize(p, &UdfRegistry::new(), &cfg, &Fixture, None).unwrap();
        assert!(matches!(opt, Plan::Filter { .. }));
    }

    struct Llm;
    impl crate::functions::ScalarUdf for Llm {
        fn name(&self) -> &str {
            "llm"
        }
        fn invoke(&self, _: &[Value]) -> Result<Value> {
            Ok(Value::Null)
        }
        fn is_expensive(&self) -> bool {
            true
        }
    }

    fn llm_registry() -> UdfRegistry {
        let mut udfs = UdfRegistry::new();
        udfs.register(Arc::new(Llm));
        udfs
    }

    #[test]
    fn expensive_udf_predicate_ordered_last() {
        let udfs = llm_registry();
        let p = plan_of("SELECT * FROM a WHERE llm(a.x) = 'Yes' AND a.ax = 1");
        let cfg = OptimizerConfig { batch_expensive_udfs: false, ..Default::default() };
        let opt = optimize(p, &udfs, &cfg, &Fixture, None).unwrap();
        let Plan::Filter { predicate, .. } = opt else { panic!() };
        let parts = split_conjuncts(&predicate);
        assert_eq!(parts.len(), 2);
        assert_eq!(expr_cost(&parts[0], &udfs), 0, "cheap predicate first");
        assert_eq!(expr_cost(&parts[1], &udfs), 2, "LLM predicate last");
    }

    /// Rule 5: an expensive filter is split into cheap filter → Batch →
    /// expensive filter, so the cheap conjunct still prunes before any
    /// batched call and the expensive conjunct is marked for vectorized
    /// evaluation over the survivors.
    #[test]
    fn expensive_filter_gets_batch_node() {
        let udfs = llm_registry();
        let p = plan_of("SELECT * FROM a WHERE llm(a.x) = 'Yes' AND a.ax = 1");
        let opt = optimize(p, &udfs, &OptimizerConfig::default(), &Fixture, None).unwrap();
        let Plan::Filter { input, predicate } = opt else { panic!("expensive filter on top") };
        assert_eq!(expr_cost(&predicate, &udfs), 2);
        let Plan::Batch { input, calls } = *input else { panic!("Batch under it") };
        assert_eq!(calls.len(), 1);
        assert_eq!(expr_cost(&calls[0], &udfs), 2);
        let Plan::Filter { predicate, .. } = *input else { panic!("cheap filter below") };
        assert_eq!(expr_cost(&predicate, &udfs), 0);
    }

    #[test]
    fn batching_disabled_leaves_plan_unmarked() {
        let udfs = llm_registry();
        let p = plan_of("SELECT * FROM a WHERE llm(a.x) = 'Yes'");
        let cfg = OptimizerConfig { batch_expensive_udfs: false, ..Default::default() };
        let opt = optimize(p, &udfs, &cfg, &Fixture, None).unwrap();
        fn has_batch(p: &Plan) -> bool {
            match p {
                Plan::Batch { .. } => true,
                Plan::Filter { input, .. } | Plan::Permute { input, .. } => has_batch(input),
                Plan::Join { left, right, .. } => has_batch(left) || has_batch(right),
                _ => false,
            }
        }
        assert!(!has_batch(&opt));
    }

    /// A filter with only cheap conjuncts never grows a Batch node.
    #[test]
    fn cheap_filter_not_marked() {
        let udfs = llm_registry();
        let p = plan_of("SELECT * FROM a WHERE a.ax = 1");
        let opt = optimize(p, &udfs, &OptimizerConfig::default(), &Fixture, None).unwrap();
        assert!(matches!(opt, Plan::Filter { .. }), "got {opt:?}");
    }

    #[test]
    fn constant_folding_collapses_literals() {
        let e = fold_expr(parse_expression("1 + 2 * 3").unwrap());
        assert_eq!(e, Expr::Literal(Value::Integer(7)));
        let e = fold_expr(parse_expression("'a' || 'b'").unwrap());
        assert_eq!(e, Expr::Literal(Value::text("ab")));
        let e = fold_expr(parse_expression("1 < 2").unwrap());
        assert_eq!(e, Expr::Literal(Value::Integer(1)));
        // Columns do not fold.
        let e = fold_expr(parse_expression("x + 1").unwrap());
        assert!(matches!(e, Expr::Binary { .. }));
    }

    #[test]
    fn trivially_true_filter_removed() {
        let opt = opt("SELECT * FROM a WHERE 1 = 1");
        assert!(matches!(opt, Plan::Scan { .. }));
    }

    #[test]
    fn subquery_predicates_are_not_pushed() {
        let opt = opt("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.ax IN (SELECT y FROM b)");
        let Plan::Filter { input, .. } = opt else { panic!("subquery predicate must stay") };
        assert!(matches!(*input, Plan::Join { .. }));
    }

    #[test]
    fn schema_of_plan_tracks_join() {
        let p = plan_of("SELECT * FROM a JOIN b ON a.x = b.y");
        let schema = p.schema(&Fixture).unwrap();
        assert_eq!(schema.len(), 4);
        assert_eq!(schema.cols[0], ColRef::new(Some("a".into()), "x"));
    }

    // ---- join reordering ----------------------------------------------

    /// The chain `fact ⋈ dim ⋈ tiny` (100k, 100, 5 rows) must be rebuilt
    /// smallest-first with a Permute restoring the written column order.
    #[test]
    fn three_way_chain_reordered_smallest_first() {
        let opt = opt(
            "SELECT * FROM fact f JOIN dim d ON f.grp = d.id JOIN tiny t ON d.id = t.id",
        );
        let Plan::Permute { input, mapping } = opt else {
            panic!("expected a Permute restoring column order, got {opt:?}")
        };
        // Written order: f(0,1) d(2,3) t(4,5); execution order tiny, dim,
        // fact → offsets t=0, d=2, f=4.
        assert_eq!(mapping, vec![4, 5, 2, 3, 0, 1]);
        // Left-deep: ((tiny ⋈ dim) ⋈ fact).
        let Plan::Join { left, right, kind, .. } = *input else { panic!() };
        assert_eq!(kind, PlanJoinKind::Inner);
        assert!(matches!(*right, Plan::Scan { ref table, .. } if table == "fact"));
        let Plan::Join { left: ll, right: lr, .. } = *left else { panic!() };
        assert!(matches!(*ll, Plan::Scan { ref table, .. } if table == "tiny"));
        assert!(matches!(*lr, Plan::Scan { ref table, .. } if table == "dim"));
    }

    #[test]
    fn permuted_schema_matches_written_order() {
        let written = plan_of(
            "SELECT * FROM fact f JOIN dim d ON f.grp = d.id JOIN tiny t ON d.id = t.id",
        )
        .schema(&Fixture)
        .unwrap();
        let optimized = opt(
            "SELECT * FROM fact f JOIN dim d ON f.grp = d.id JOIN tiny t ON d.id = t.id",
        )
        .schema(&Fixture)
        .unwrap();
        assert_eq!(written, optimized, "Permute must restore the written column order");
    }

    #[test]
    fn two_way_join_left_alone() {
        let opt = opt("SELECT * FROM fact f JOIN dim d ON f.grp = d.id");
        // Two-way joins are not reordered (the executor picks the build
        // side at run time), so no Permute appears.
        assert!(matches!(opt, Plan::Join { .. }), "got {opt:?}");
    }

    #[test]
    fn comma_join_where_becomes_join_condition() {
        let opt = opt("SELECT * FROM fact f, dim d, tiny t WHERE f.grp = d.id AND d.id = t.id");
        // The WHERE equi-conjuncts must end up as INNER join conditions,
        // not a filter over a cross product.
        fn count_inner_with_on(p: &Plan) -> usize {
            match p {
                Plan::Join { left, right, kind, on, .. } => {
                    let here =
                        (*kind == PlanJoinKind::Inner && on.is_some()) as usize;
                    here + count_inner_with_on(left) + count_inner_with_on(right)
                }
                Plan::Filter { input, .. } | Plan::Permute { input, .. } => {
                    count_inner_with_on(input)
                }
                _ => 0,
            }
        }
        assert_eq!(count_inner_with_on(&opt), 2, "both equi-conjuncts attached: {opt:?}");
    }

    #[test]
    fn left_join_is_a_reorder_boundary() {
        let opt = opt(
            "SELECT * FROM fact f LEFT JOIN dim d ON f.grp = d.id",
        );
        let Plan::Join { kind, left, right, .. } = opt else { panic!() };
        assert_eq!(kind, PlanJoinKind::Left);
        assert!(matches!(*left, Plan::Scan { ref table, .. } if table == "fact"));
        assert!(matches!(*right, Plan::Scan { ref table, .. } if table == "dim"));
    }

    #[test]
    fn reorder_disabled_keeps_written_order() {
        let p = plan_of(
            "SELECT * FROM fact f JOIN dim d ON f.grp = d.id JOIN tiny t ON d.id = t.id",
        );
        let cfg = OptimizerConfig { reorder_joins: false, ..Default::default() };
        let opt = optimize(p, &UdfRegistry::new(), &cfg, &Fixture, None).unwrap();
        let Plan::Join { left, .. } = opt else { panic!() };
        let Plan::Join { left: ll, .. } = *left else { panic!() };
        assert!(matches!(*ll, Plan::Scan { ref table, .. } if table == "fact"));
    }

    #[test]
    fn filtered_scan_estimate_shrinks() {
        let scan = Plan::Scan { table: "fact".into(), qualifier: "f".into() };
        let filtered = Plan::Filter {
            input: Box::new(scan.clone()),
            predicate: parse_expression("f.grp = 1").unwrap(),
        };
        assert!(estimate_rows(&filtered, &Fixture) < estimate_rows(&scan, &Fixture));
    }

    // ---- rule 7: primary-key index scans ------------------------------

    /// Fixture where `k` has a single-column PK (id) and `kk` a composite
    /// PK (a, b). `a`/`b` etc. stay PK-less so the other tests' plans are
    /// untouched by rule 7.
    struct PkFixture;

    impl SchemaProvider for PkFixture {
        fn table_columns(&self, name: &str) -> Result<Vec<String>> {
            match name {
                "k" => Ok(vec!["id".into(), "v".into()]),
                "kk" => Ok(vec!["a".into(), "b".into(), "v".into()]),
                other => Err(crate::error::Error::NotFound(other.into())),
            }
        }

        fn table_rows(&self, name: &str) -> Option<usize> {
            match name {
                "k" | "kk" => Some(1000),
                _ => None,
            }
        }

        fn table_primary_key(&self, table: &str) -> Option<Vec<String>> {
            match table {
                "k" => Some(vec!["id".into()]),
                "kk" => Some(vec!["a".into(), "b".into()]),
                _ => None,
            }
        }
    }

    fn pk_opt(sql: &str) -> Plan {
        let cfg = OptimizerConfig { index_scan: true, ..Default::default() };
        optimize(plan_of(sql), &UdfRegistry::new(), &cfg, &PkFixture, None).unwrap()
    }

    /// Unwrap `Filter(IndexScan)` — the rewrite must always keep the full
    /// predicate above the index scan.
    fn index_bounds_of(plan: Plan) -> IndexBounds {
        let Plan::Filter { input, .. } = plan else {
            panic!("predicate must stay above the index scan: {plan:?}")
        };
        let Plan::IndexScan { bounds, .. } = *input else {
            panic!("expected IndexScan under the filter: {input:?}")
        };
        bounds
    }

    #[test]
    fn pk_equality_becomes_point_probe() {
        let bounds = index_bounds_of(pk_opt("SELECT * FROM k WHERE id = 42"));
        assert_eq!(bounds, IndexBounds::Point { key: vec![Value::Integer(42)] });
    }

    #[test]
    fn pk_comparisons_become_range() {
        let bounds = index_bounds_of(pk_opt("SELECT * FROM k WHERE id > 10 AND id <= 20"));
        assert_eq!(
            bounds,
            IndexBounds::Range {
                lower: Some((Value::Integer(10), false)),
                upper: Some((Value::Integer(20), true)),
            }
        );
    }

    #[test]
    fn pk_between_is_inclusive_both_sides() {
        let bounds = index_bounds_of(pk_opt("SELECT * FROM k WHERE id BETWEEN 5 AND 9"));
        assert_eq!(
            bounds,
            IndexBounds::Range {
                lower: Some((Value::Integer(5), true)),
                upper: Some((Value::Integer(9), true)),
            }
        );
    }

    #[test]
    fn flipped_literal_side_normalized() {
        // `10 < id` is the same lower bound as `id > 10`.
        let bounds = index_bounds_of(pk_opt("SELECT * FROM k WHERE 10 < id"));
        assert_eq!(
            bounds,
            IndexBounds::Range { lower: Some((Value::Integer(10), false)), upper: None }
        );
    }

    #[test]
    fn redundant_bounds_keep_the_tighter_one() {
        let bounds =
            index_bounds_of(pk_opt("SELECT * FROM k WHERE id >= 3 AND id > 3 AND id < 100"));
        // Exclusive wins the tie on the lower side.
        assert_eq!(
            bounds,
            IndexBounds::Range {
                lower: Some((Value::Integer(3), false)),
                upper: Some((Value::Integer(100), false)),
            }
        );
    }

    #[test]
    fn composite_pk_full_equality_is_point() {
        let bounds = index_bounds_of(pk_opt("SELECT * FROM kk WHERE b = 2 AND a = 1"));
        assert_eq!(
            bounds,
            IndexBounds::Point { key: vec![Value::Integer(1), Value::Integer(2)] }
        );
    }

    #[test]
    fn composite_pk_prefix_equality_is_range_on_first_column() {
        // Only `a` pinned: probe the first PK column as an inclusive range.
        let bounds = index_bounds_of(pk_opt("SELECT * FROM kk WHERE a = 7"));
        assert_eq!(
            bounds,
            IndexBounds::Range {
                lower: Some((Value::Integer(7), true)),
                upper: Some((Value::Integer(7), true)),
            }
        );
    }

    #[test]
    fn non_pk_predicate_not_rewritten() {
        let opt = pk_opt("SELECT * FROM k WHERE v = 42");
        let Plan::Filter { input, .. } = opt else { panic!("got {opt:?}") };
        assert!(matches!(*input, Plan::Scan { .. }), "got {input:?}");
    }

    #[test]
    fn null_literal_never_bounds() {
        // `id = NULL` matches nothing at runtime, but the rewrite must not
        // turn it into a probe for a NULL key.
        let opt = pk_opt("SELECT * FROM k WHERE id = NULL");
        let Plan::Filter { input, .. } = opt else { panic!("got {opt:?}") };
        assert!(matches!(*input, Plan::Scan { .. }), "got {input:?}");
    }

    #[test]
    fn index_scan_disabled_reproduces_scan_plan() {
        let cfg = OptimizerConfig { index_scan: false, ..Default::default() };
        let p = plan_of("SELECT * FROM k WHERE id = 42");
        let opt = optimize(p, &UdfRegistry::new(), &cfg, &PkFixture, None).unwrap();
        let Plan::Filter { input, .. } = opt else { panic!("got {opt:?}") };
        assert!(matches!(*input, Plan::Scan { .. }), "got {input:?}");
    }

    #[test]
    fn qualified_alias_still_matches_pk() {
        let bounds = index_bounds_of(pk_opt("SELECT * FROM k t WHERE t.id = 5"));
        assert_eq!(bounds, IndexBounds::Point { key: vec![Value::Integer(5)] });
    }

    #[test]
    fn negated_between_not_rewritten() {
        let opt = pk_opt("SELECT * FROM k WHERE id NOT BETWEEN 5 AND 9");
        let Plan::Filter { input, .. } = opt else { panic!("got {opt:?}") };
        assert!(matches!(*input, Plan::Scan { .. }), "got {input:?}");
    }
}
