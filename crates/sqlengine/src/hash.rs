//! A fast, non-cryptographic hasher for the executor's hot hash maps
//! (join build tables, GROUP BY partitions, DISTINCT/compound sets).
//!
//! The standard library's SipHash is DoS-resistant but costs real time per
//! key; join and grouping keys here are engine-internal (never attacker-
//! controlled buckets that outlive a query), so an FxHash-style
//! multiply-xor hash is the right trade. The implementation mirrors the
//! widely-used `rustc-hash` algorithm.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Pre-sized [`FxHashMap`].
pub fn map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

/// Pre-sized [`FxHashSet`].
pub fn set_with_capacity<T>(capacity: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash: for each word, `state = (state rotl 5 ^ word) * SEED`.
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            // Tag the remainder length into the always-zero high byte so a
            // short zero-filled tail cannot collide with no tail at all.
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    // Derived `Hash` impls route signed discriminants through the signed
    // writers; without these overrides they fall back to the generic
    // byte-chunking path.
    #[inline]
    fn write_i8(&mut self, v: i8) {
        self.add(v as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.add(v as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreading() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"superhero"), hash(b"superhero"));
        assert_ne!(hash(b"superhero"), hash(b"superherp"));
        assert_ne!(hash(b""), hash(b"\0"));

        // Low collision rate over a small integer domain.
        let mut seen = FxHashSet::default();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on sequential u64s");
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<String, i32> = map_with_capacity(4);
        m.insert("a".into(), 1);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = set_with_capacity(4);
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
