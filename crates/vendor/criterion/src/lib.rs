//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace benches use — `Criterion`,
//! `bench_function`, `Bencher::iter`, `black_box`, `criterion_group!`,
//! `criterion_main!` — as a plain wall-clock harness:
//!
//! * warms up, then measures for a fixed window and reports the mean
//!   time per iteration (plus min, as a jitter hint);
//! * honours a substring filter argument (as `cargo bench <filter>` passes
//!   through with `harness = false`);
//! * `--quick` (or `CRITERION_QUICK=1`) shrinks the measurement window
//!   ~10× for smoke runs such as `scripts/bench_smoke.sh`.
//!
//! There are no statistical comparisons, plots, or saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver. Parses CLI args on construction.
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut quick = std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false);
        for arg in std::env::args().skip(1) {
            if arg == "--quick" {
                quick = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
            // All other flags (--bench, --save-baseline, …) are accepted
            // and ignored so `cargo bench` invocations keep working.
        }
        Criterion { filter, quick }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filt) = &self.filter {
            if !name.contains(filt.as_str()) {
                return self;
            }
        }
        let mut b = Bencher::new(self.quick);
        f(&mut b);
        match b.result {
            Some(r) => println!(
                "{name:<40} time: [{}]  (min {}, {} iters)",
                format_ns(r.mean_ns),
                format_ns(r.min_ns),
                r.iters,
            ),
            None => println!("{name:<40} (no measurement)"),
        }
        self
    }
}

struct Measurement {
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
}

/// Timer handle passed to the closure of `bench_function`.
pub struct Bencher {
    warmup: Duration,
    window: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    fn new(quick: bool) -> Self {
        if quick {
            Bencher {
                warmup: Duration::from_millis(20),
                window: Duration::from_millis(120),
                result: None,
            }
        } else {
            Bencher {
                warmup: Duration::from_millis(150),
                window: Duration::from_millis(1200),
                result: None,
            }
        }
    }

    /// Measure `f` repeatedly; the mean over the measurement window wins.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also yields a first estimate of the per-iter cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Batch so each timing sample is ≥ ~50µs, amortizing timer cost.
        let batch = ((50e-6 / est.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut min_ns = f64::INFINITY;
        while total < self.window {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let sample = t.elapsed();
            let per_iter_ns = sample.as_nanos() as f64 / batch as f64;
            if per_iter_ns < min_ns {
                min_ns = per_iter_ns;
            }
            total += sample;
            iters += batch;
        }
        self.result = Some(Measurement {
            mean_ns: total.as_nanos() as f64 / iters.max(1) as f64,
            min_ns,
            iters,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Bundle bench functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut b = Bencher::new(true);
        b.iter(|| black_box(3u64).wrapping_mul(7));
        let r = b.result.expect("measured");
        assert!(r.iters > 0);
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.mean_ns * 1.5);
    }

    #[test]
    fn format_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
    }
}
