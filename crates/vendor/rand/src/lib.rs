//! Offline stand-in for the `rand` crate (the subset this workspace uses).
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64, the
//! same construction real `rand` uses for its small RNG), and the
//! [`Rng`] / [`SeedableRng`] traits with `gen`, `gen_range`, and
//! `gen_bool`. The streams are deterministic per seed, which is all the
//! synthetic benchmark generators require; they do not bit-match the
//! upstream crate.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `u64` convenience entry point).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible "from thin air" by an RNG (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges an RNG can sample uniformly from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing RNG extension trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for synthetic data.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1..=12);
            assert!((1..=12).contains(&w));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "unbiased-ish: {heads}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
