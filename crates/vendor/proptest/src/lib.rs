//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of proptest its test-suites use: the [`proptest!`] macro,
//! `prop_assert*`/`prop_assume!`, [`Strategy`] implementations for integer
//! ranges, tuples, [`Just`], `prop_oneof!`, `collection::vec`, [`any`],
//! and string strategies driven by a small regex subset (`[a-z]{0,6}`,
//! `.{0,200}`, …).
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (derived from the test name), there is **no
//! shrinking**, and failures report the raw assertion. Case count defaults
//! to 64 and can be overridden with `PROPTEST_CASES`.

// ---- deterministic RNG (xoshiro256++, private copy) -----------------------

/// Deterministic test RNG handed to strategies by the [`proptest!`] macro.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        Self::seeded(name, 0)
    }

    /// Seed deterministically from a test name mixed with an explicit
    /// seed. `seed == 0` is the per-name default; any other value shifts
    /// every property onto a fresh deterministic case stream (CI can
    /// fuzz with `SWAN_SEED=$RANDOM` and replay a failure by exporting
    /// the value the failure report printed).
    pub fn seeded(name: &str, seed: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut x = h;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Number of cases each property runs (env `PROPTEST_CASES`, default 64).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The run's property seed (env `SWAN_SEED`, default 0). Every
/// [`proptest!`] body mixes this into its per-test RNG, so one exported
/// variable replays a whole CI run's case streams deterministically.
pub fn swan_seed() -> u64 {
    std::env::var("SWAN_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Failure reporter armed by the [`proptest!`] macro: if the test body
/// panics, `Drop` runs while the thread is panicking and prints the
/// `SWAN_SEED` (and case number) that reproduces the failing stream.
pub struct SeedReport {
    name: &'static str,
    seed: u64,
    /// Last case index started (cases before it passed).
    pub case: std::cell::Cell<u32>,
}

impl SeedReport {
    pub fn new(name: &'static str, seed: u64) -> Self {
        SeedReport { name, seed, case: std::cell::Cell::new(0) }
    }
}

impl Drop for SeedReport {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "[proptest] property '{}' failed on case {} of the SWAN_SEED={} stream; \
                 re-run with `SWAN_SEED={} cargo test {}` to replay deterministically",
                self.name,
                self.case.get(),
                self.seed,
                self.seed,
                self.name,
            );
        }
    }
}

// ---- Strategy --------------------------------------------------------------

pub mod strategy {
    use super::TestRng;

    /// A value generator. Object-safe; no shrinking.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    /// String literals are regex-subset strategies, as in real proptest.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::regex::generate(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::regex::generate(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

// ---- any / Arbitrary -------------------------------------------------------

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: keep arithmetic properties exercisable.
        let v = f64::from_bits(rng.next_u64());
        if v.is_finite() {
            v
        } else {
            (rng.next_u64() >> 11) as f64
        }
    }
}

/// Strategy wrapper returned by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

// ---- collection ------------------------------------------------------------

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// `proptest::collection::vec(element, len_range)`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- regex-subset string generation ----------------------------------------

mod regex {
    use super::TestRng;

    enum Atom {
        Class(Vec<(char, char)>),
        AnyPrintable,
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Parse the regex subset: atoms are `[...]` classes (with ranges),
    /// `.`, or literal chars; quantifiers are `{m}`, `{m,n}`, `*`, `+`,
    /// `?`. Anything else is treated literally.
    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    i += 1; // closing ']'
                    Atom::Class(ranges)
                }
                '.' => {
                    i += 1;
                    Atom::AnyPrintable
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                        match close {
                            Some(close) => {
                                let body: String = chars[i + 1..close].iter().collect();
                                i = close + 1;
                                match body.split_once(',') {
                                    Some((m, n)) => {
                                        let m = m.trim().parse().unwrap_or(0);
                                        let n = n.trim().parse().unwrap_or(m + 8);
                                        (m, n)
                                    }
                                    None => {
                                        let m = body.trim().parse().unwrap_or(1);
                                        (m, m)
                                    }
                                }
                            }
                            None => (1, 1),
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::AnyPrintable => {
                // Printable ASCII (space..tilde).
                char::from_u32(0x20 + (rng.next_u64() % 0x5F) as u32).unwrap()
            }
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(lo, hi)| (hi as u64).saturating_sub(lo as u64) + 1)
                    .sum();
                let mut k = rng.next_u64() % total.max(1);
                for &(lo, hi) in ranges {
                    let span = (hi as u64).saturating_sub(lo as u64) + 1;
                    if k < span {
                        return char::from_u32(lo as u32 + k as u32).unwrap_or(lo);
                    }
                    k -= span;
                }
                ranges.first().map(|&(lo, _)| lo).unwrap_or('a')
            }
        }
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let span = (piece.max - piece.min + 1) as u64;
            let n = piece.min + (rng.next_u64() % span) as usize;
            for _ in 0..n {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

// ---- macros ----------------------------------------------------------------

/// The property-test macro: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` looping [`case_count`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::case_count();
                let __proptest_seed = $crate::swan_seed();
                let __proptest_report =
                    $crate::SeedReport::new(stringify!($name), __proptest_seed);
                let mut __proptest_rng =
                    $crate::TestRng::seeded(stringify!($name), __proptest_seed);
                for __proptest_case in 0..cases {
                    __proptest_report.case.set(__proptest_case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )+
    };
}

/// Assert inside a property (no shrinking; plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip cases that don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::{any, Arbitrary, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = TestRng::seeded("prop", 0);
        let mut b = TestRng::deterministic("prop");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64(), "seed 0 is the per-name default");
        }
        let mut c = TestRng::seeded("prop", 1);
        let mut d = TestRng::seeded("prop", 0);
        assert_ne!(
            (0..4).map(|_| c.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| d.next_u64()).collect::<Vec<_>>(),
            "a non-zero SWAN_SEED shifts the case stream"
        );
        let mut e = TestRng::seeded("prop", 7);
        let mut f = TestRng::seeded("prop", 7);
        for _ in 0..16 {
            assert_eq!(e.next_u64(), f.next_u64(), "same seed replays the same stream");
        }
    }

    #[test]
    fn regex_classes_and_quantifiers() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = "[a-c]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");

            let t = "[ -~]{0,12}".generate(&mut rng);
            assert!(t.len() <= 12);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));

            let d = ".{0,200}".generate(&mut rng);
            assert!(d.chars().count() <= 200);

            let m = "[A-Za-z0-9 .-]{1,12}".generate(&mut rng);
            assert!(!m.is_empty() && m.chars().count() <= 12);
            assert!(m
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '.' || c == '-'));
        }
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(a in -50i64..50, k in 0usize..10) {
            prop_assert!((-50i64..50).contains(&a));
            prop_assert!(k < 10);
        }

        #[test]
        fn vec_and_tuple_strategies(
            rows in crate::collection::vec((any::<i64>(), 0i64..5, "[ab]{0,2}"), 0..40)
        ) {
            prop_assert!(rows.len() < 40);
            for (_, n, s) in &rows {
                prop_assert!((0i64..5).contains(n));
                prop_assert!(s.len() <= 2);
                prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            }
        }

        #[test]
        fn oneof_and_assume(pick in prop_oneof![Just(1i64), Just(2i64), Just(3i64)]) {
            prop_assume!(pick != 2i64);
            prop_assert!(pick == 1i64 || pick == 3i64);
        }
    }
}
