//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the tiny subset of `parking_lot` it uses: a [`Mutex`] and an [`RwLock`]
//! whose `lock()`/`read()`/`write()` return the guard directly (no
//! poisoning), backed by the std primitives. A poisoned std lock is
//! recovered transparently, matching parking_lot's panic-transparent
//! semantics closely enough for this codebase — in particular, a panic in
//! one `SharedDb` session can never poison the catalog for its siblings.

use std::sync;

/// A mutual-exclusion lock without lock poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type; identical to the std guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock without lock poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard; identical to the std guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard; identical to the std guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 84, "concurrent readers");
        assert!(l.try_write().is_none(), "writer blocked by readers");
        drop((r1, r2));
        assert!(l.try_write().is_some());
    }

    #[test]
    fn rwlock_recovers_from_panicking_writer() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *l.write() += 1;
        assert_eq!(*l.read(), 1);
    }
}
