//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the tiny subset of `parking_lot` it uses: a [`Mutex`] whose `lock()`
//! returns the guard directly (no poisoning), backed by `std::sync::Mutex`.
//! A poisoned std lock is recovered transparently, matching parking_lot's
//! panic-transparent semantics closely enough for this codebase.

use std::sync;

/// A mutual-exclusion lock without lock poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type; identical to the std guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
