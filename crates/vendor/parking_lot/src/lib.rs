//! Offline stand-in for the `parking_lot` crate, plus a runtime lock-order
//! validator ("lockdep").
//!
//! The build environment has no network access, so this workspace vendors
//! the tiny subset of `parking_lot` it uses: a [`Mutex`], an [`RwLock`] and
//! a [`Condvar`] whose `lock()`/`read()`/`write()` return the guard directly
//! (no poisoning), backed by the std primitives. A poisoned std lock is
//! recovered transparently, matching parking_lot's panic-transparent
//! semantics closely enough for this codebase — in particular, a panic in
//! one `SharedDb` session can never poison the catalog for its siblings.
//!
//! # Lockdep
//!
//! Long-lived engine locks are constructed with [`Mutex::with_rank`] /
//! [`RwLock::with_rank`], which place them in a named, ranked lock class
//! (the workspace hierarchy lives in `swan_pool::lockrank` and is documented
//! in `ANALYSIS.md`). When validation is active, every acquisition is
//! checked against a thread-local stack of currently held locks:
//!
//! - **Rank inversion** — acquiring a lock whose rank is *lower* than any
//!   rank already held panics immediately, before blocking on the inner
//!   lock, so an ordering bug is a diagnostic instead of a deadlock.
//!   Same-rank acquisitions are allowed (the per-table writer locks share
//!   one class and are taken in sorted name order).
//! - **Order cycles** — every observed "held A while acquiring B" pair is
//!   recorded as an edge A→B in a global, class-level order graph. An
//!   acquisition that would close a cycle (B→…→A exists and A is held while
//!   taking B) panics with the full path, even across threads and runs of
//!   the same process: it is enough for two orderings to *ever* be observed,
//!   they do not need to race.
//!
//! Validation is on under `cfg(debug_assertions)` (so every `cargo test`
//! run is a lock-order sweep) and off in release builds; `SWAN_LOCKDEP=1`
//! forces it on and `SWAN_LOCKDEP=0` forces it off. Untracked locks
//! (constructed with plain `new`) and the disabled path cost one atomic
//! load and a branch per acquisition.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub mod lockdep {
    //! Runtime lock-order validation: thread-local held stack + global
    //! class-level order graph. See the crate docs for the model.

    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex as StdMutex, OnceLock};

    /// Identity of a ranked lock: a class name shared by all locks created
    /// at the same construction site, and its rank in the documented
    /// hierarchy (lower rank = outer lock, acquired first).
    #[derive(Clone, Copy, Debug)]
    pub struct LockMeta {
        pub name: &'static str,
        pub rank: u32,
    }

    /// Handle for one tracked acquisition; popped from the held stack when
    /// released. `0` means the acquisition was not tracked.
    #[derive(Debug)]
    pub struct Token(u64);

    impl Token {
        pub const UNTRACKED: Token = Token(0);
    }

    /// Whether lock-order validation is active for this process.
    ///
    /// `SWAN_LOCKDEP=1` forces it on, `SWAN_LOCKDEP=0` forces it off, and
    /// when unset it follows `cfg(debug_assertions)`.
    pub fn enabled() -> bool {
        static ENABLED: OnceLock<bool> = OnceLock::new();
        *ENABLED.get_or_init(|| match std::env::var("SWAN_LOCKDEP") {
            Ok(v) if v == "0" => false,
            Ok(v) if !v.is_empty() => true,
            _ => cfg!(debug_assertions),
        })
    }

    struct Held {
        token: u64,
        class: usize,
        rank: u32,
        name: &'static str,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

    /// Global lock-class registry and order graph. Class ids are assigned
    /// at first acquisition; edges accumulate for the process lifetime.
    struct Registry {
        ids: HashMap<&'static str, usize>,
        names: Vec<&'static str>,
        ranks: Vec<u32>,
        /// Adjacency: `edges[a]` holds every class ever acquired while `a`
        /// was held.
        edges: Vec<Vec<usize>>,
    }

    impl Registry {
        fn intern(&mut self, meta: LockMeta) -> usize {
            if let Some(&id) = self.ids.get(meta.name) {
                if self.ranks[id] != meta.rank {
                    panic!(
                        "lockdep: lock class '{}' registered with conflicting ranks {} and {}",
                        meta.name, self.ranks[id], meta.rank
                    );
                }
                return id;
            }
            let id = self.names.len();
            self.ids.insert(meta.name, id);
            self.names.push(meta.name);
            self.ranks.push(meta.rank);
            self.edges.push(Vec::new());
            id
        }

        /// Depth-first path search `from -> ... -> to`; returns the class
        /// path (inclusive of both endpoints) if one exists.
        fn path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
            let mut stack = vec![(from, 0usize)];
            let mut trail = vec![from];
            let mut visited = vec![false; self.names.len()];
            visited[from] = true;
            if from == to {
                return Some(trail);
            }
            while let Some((node, next_idx)) = stack.last_mut() {
                if let Some(&succ) = self.edges[*node].get(*next_idx) {
                    *next_idx += 1;
                    if succ == to {
                        trail.push(succ);
                        return Some(trail);
                    }
                    if !visited[succ] {
                        visited[succ] = true;
                        trail.push(succ);
                        stack.push((succ, 0));
                    }
                } else {
                    stack.pop();
                    trail.pop();
                }
            }
            None
        }
    }

    fn registry() -> &'static StdMutex<Registry> {
        static REGISTRY: OnceLock<StdMutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            StdMutex::new(Registry {
                ids: HashMap::new(),
                names: Vec::new(),
                ranks: Vec::new(),
                edges: Vec::new(),
            })
        })
    }

    /// Record an acquisition of `meta`, panicking on a rank inversion or an
    /// order-graph cycle. Returns the token to pass to [`release`].
    ///
    /// `check` is false for `try_*` acquisitions: a non-blocking attempt
    /// cannot deadlock by itself, but a successful one is still pushed onto
    /// the held stack so later blocking acquisitions are checked against it.
    pub(crate) fn acquire(meta: Option<LockMeta>, check: bool) -> Token {
        let Some(meta) = meta else { return Token::UNTRACKED };
        if !enabled() {
            return Token::UNTRACKED;
        }
        HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if check {
                for h in held.iter() {
                    if meta.rank < h.rank {
                        panic!(
                            "lockdep: rank inversion: acquiring '{}' (rank {}) while \
                             holding '{}' (rank {})",
                            meta.name, meta.rank, h.name, h.rank
                        );
                    }
                }
            }
            let class = record_edges(&held, meta, check);
            let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
            held.push(Held { token, class, rank: meta.rank, name: meta.name });
            Token(token)
        })
        .unwrap_or(Token::UNTRACKED)
    }

    /// Intern `meta`'s class and add `held -> meta` edges to the order
    /// graph, panicking (when `check`) on an edge that closes a cycle.
    fn record_edges(held: &[Held], meta: LockMeta, check: bool) -> usize {
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        let class = reg.intern(meta);
        for h in held {
            if h.class == class || reg.edges[h.class].contains(&class) {
                continue;
            }
            if check {
                if let Some(path) = reg.path(class, h.class) {
                    let chain: Vec<&str> =
                        path.iter().map(|&c| reg.names[c]).collect();
                    panic!(
                        "lockdep: lock-order cycle: acquiring '{}' while holding '{}', \
                         but the opposite order was already established: {} -> '{}'",
                        meta.name,
                        h.name,
                        chain
                            .iter()
                            .map(|n| format!("'{n}'"))
                            .collect::<Vec<_>>()
                            .join(" -> "),
                        meta.name
                    );
                }
            }
            reg.edges[h.class].push(class);
        }
        class
    }

    /// Pop a tracked acquisition off this thread's held stack. Tolerates
    /// out-of-order guard drops (searches from the top of the stack).
    pub(crate) fn release(token: &Token) {
        if token.0 == 0 {
            return;
        }
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.token == token.0) {
                held.remove(pos);
            }
        });
    }

    /// Number of tracked locks the current thread holds (test helper).
    pub fn held_count() -> usize {
        HELD.try_with(|held| held.borrow().len()).unwrap_or(0)
    }
}

use lockdep::{LockMeta, Token};

/// A mutual-exclusion lock without lock poisoning, optionally placed in a
/// ranked lockdep class via [`Mutex::with_rank`].
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    meta: Option<LockMeta>,
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releases the lock (and its lockdep entry) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    token: Token,
    meta: Option<LockMeta>,
    // `None` only transiently inside `Condvar::wait` and during drop.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { meta: None, inner: sync::Mutex::new(value) }
    }

    /// A mutex tracked by lockdep: all locks constructed with the same
    /// `name` form one class at rank `rank` in the workspace hierarchy
    /// (see `ANALYSIS.md`).
    pub const fn with_rank(name: &'static str, rank: u32, value: T) -> Self {
        Mutex { meta: Some(LockMeta { name, rank }), inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let token = lockdep::acquire(self.meta, true);
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        MutexGuard { token, meta: self.meta, inner: Some(inner) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        // A non-blocking acquisition cannot invert an order by itself, but
        // it is a real hold: push it so later blocking locks are checked.
        let token = lockdep::acquire(self.meta, false);
        Some(MutexGuard { token, meta: self.meta, inner: Some(inner) })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Mutex");
        if let Some(meta) = self.meta {
            d.field("class", &meta.name).field("rank", &meta.rank);
        }
        d.field("inner", &self.inner).finish()
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("mutex guard accessed while suspended")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("mutex guard accessed while suspended")
    }
}

impl<'a, T: ?Sized> Drop for MutexGuard<'a, T> {
    fn drop(&mut self) {
        self.inner.take();
        lockdep::release(&self.token);
    }
}

/// A reader-writer lock without lock poisoning, optionally placed in a
/// ranked lockdep class via [`RwLock::with_rank`]. Read and write
/// acquisitions are tracked identically: ordering, not sharing, is what
/// lockdep validates.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    meta: Option<LockMeta>,
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    token: Token,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    token: Token,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { meta: None, inner: sync::RwLock::new(value) }
    }

    /// An rwlock tracked by lockdep; see [`Mutex::with_rank`].
    pub const fn with_rank(name: &'static str, rank: u32, value: T) -> Self {
        RwLock { meta: Some(LockMeta { name, rank }), inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let token = lockdep::acquire(self.meta, true);
        let inner = self.inner.read().unwrap_or_else(|p| p.into_inner());
        RwLockReadGuard { token, inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let token = lockdep::acquire(self.meta, true);
        let inner = self.inner.write().unwrap_or_else(|p| p.into_inner());
        RwLockWriteGuard { token, inner }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        let token = lockdep::acquire(self.meta, false);
        Some(RwLockReadGuard { token, inner })
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        let token = lockdep::acquire(self.meta, false);
        Some(RwLockWriteGuard { token, inner })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("RwLock");
        if let Some(meta) = self.meta {
            d.field("class", &meta.name).field("rank", &meta.rank);
        }
        d.field("inner", &self.inner).finish()
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Drop for RwLockReadGuard<'a, T> {
    fn drop(&mut self) {
        lockdep::release(&self.token);
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: ?Sized> Drop for RwLockWriteGuard<'a, T> {
    fn drop(&mut self) {
        lockdep::release(&self.token);
    }
}

/// Condition variable paired with the shim [`Mutex`]. `wait` keeps the
/// lockdep held stack honest: the lock's entry is popped for the duration
/// of the wait (the mutex really is released) and re-checked + re-pushed
/// when the wakeup reacquires it.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let inner = guard
            .inner
            .take()
            .expect("condvar wait on a suspended guard");
        let meta = guard.meta;
        lockdep::release(&guard.token);
        guard.token = Token::UNTRACKED;
        drop(guard);
        let inner = self.inner.wait(inner).unwrap_or_else(|p| p.into_inner());
        let token = lockdep::acquire(meta, true);
        MutexGuard { token, meta, inner: Some(inner) }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let inner = guard
            .inner
            .take()
            .expect("condvar wait on a suspended guard");
        let meta = guard.meta;
        lockdep::release(&guard.token);
        guard.token = Token::UNTRACKED;
        drop(guard);
        let (inner, timeout) = match self.inner.wait_timeout(inner, dur) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(p) => {
                let (g, t) = p.into_inner();
                (g, t.timed_out())
            }
        };
        let token = lockdep::acquire(meta, true);
        (MutexGuard { token, meta, inner: Some(inner) }, timeout)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 84, "concurrent readers");
        assert!(l.try_write().is_none(), "writer blocked by readers");
        drop((r1, r2));
        assert!(l.try_write().is_some());
    }

    #[test]
    fn rwlock_recovers_from_panicking_writer() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *l.write() += 1;
        assert_eq!(*l.read(), 1);
    }

    #[test]
    fn ranked_locks_track_held_stack() {
        if !lockdep::enabled() {
            return;
        }
        let outer = Mutex::with_rank("test_stack_outer", 1, ());
        let inner = Mutex::with_rank("test_stack_inner", 2, ());
        assert_eq!(lockdep::held_count(), 0);
        let a = outer.lock();
        assert_eq!(lockdep::held_count(), 1);
        let b = inner.lock();
        assert_eq!(lockdep::held_count(), 2);
        // Out-of-order drop keeps the stack consistent.
        drop(a);
        assert_eq!(lockdep::held_count(), 1);
        drop(b);
        assert_eq!(lockdep::held_count(), 0);
    }

    #[test]
    fn rank_inversion_panics_with_both_names() {
        if !lockdep::enabled() {
            return;
        }
        let low = Mutex::with_rank("test_inv_low", 1, ());
        let high = Mutex::with_rank("test_inv_high", 2, ());
        let _g = high.lock();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = low.lock();
        }))
        .expect_err("acquiring a lower rank while holding a higher one must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a formatted message");
        assert!(msg.contains("test_inv_low"), "message names the acquired lock: {msg}");
        assert!(msg.contains("test_inv_high"), "message names the held lock: {msg}");
        assert!(msg.contains("rank inversion"), "message states the violation: {msg}");
        // The panic happened before the hold was recorded.
        assert_eq!(lockdep::held_count(), 1);
    }

    #[test]
    fn equal_rank_same_class_is_allowed() {
        if !lockdep::enabled() {
            return;
        }
        // The per-table writer pattern: several locks in one class, taken
        // in sorted order.
        let a = Mutex::with_rank("test_sorted_writers", 5, ());
        let b = Mutex::with_rank("test_sorted_writers", 5, ());
        let c = Mutex::with_rank("test_sorted_writers", 5, ());
        let _ga = a.lock();
        let _gb = b.lock();
        let _gc = c.lock();
        assert_eq!(lockdep::held_count(), 3);
    }

    #[test]
    fn order_cycle_between_equal_ranks_panics_with_path() {
        if !lockdep::enabled() {
            return;
        }
        let a = Mutex::with_rank("test_cycle_a", 7, ());
        let b = Mutex::with_rank("test_cycle_b", 7, ());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // establishes a -> b
        }
        let _gb = b.lock();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = a.lock(); // b -> a closes the cycle
        }))
        .expect_err("closing an order cycle must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a formatted message");
        assert!(msg.contains("test_cycle_a") && msg.contains("test_cycle_b"), "{msg}");
        assert!(msg.contains("cycle"), "{msg}");
    }

    #[test]
    fn conflicting_rank_for_one_class_panics() {
        if !lockdep::enabled() {
            return;
        }
        let a = Mutex::with_rank("test_conflicting_rank", 3, ());
        let b = Mutex::with_rank("test_conflicting_rank", 4, ());
        drop(a.lock());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = b.lock();
        }))
        .expect_err("one class must have one rank");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a formatted message");
        assert!(msg.contains("conflicting ranks"), "{msg}");
    }

    #[test]
    fn condvar_wait_keeps_stack_balanced() {
        use std::sync::Arc;
        if !lockdep::enabled() {
            return;
        }
        let pair = Arc::new((Mutex::with_rank("test_cv_mutex", 9, false), Condvar::new()));
        let pair2 = pair.clone();
        let waker = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            g = cv.wait(g);
        }
        assert_eq!(lockdep::held_count(), 1, "reacquired lock is tracked");
        drop(g);
        assert_eq!(lockdep::held_count(), 0);
        waker.join().expect("waker thread");
    }

    #[test]
    fn try_lock_is_tracked_but_not_checked() {
        if !lockdep::enabled() {
            return;
        }
        let low = Mutex::with_rank("test_try_low", 1, ());
        let high = Mutex::with_rank("test_try_high", 2, ());
        let _gh = high.lock();
        // try_lock of a lower rank succeeds (it cannot deadlock) ...
        let gl = low.try_lock().expect("uncontended try_lock");
        assert_eq!(lockdep::held_count(), 2, "... but the hold is tracked");
        drop(gl);
    }
}
