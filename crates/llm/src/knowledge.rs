//! The knowledge-base abstraction behind the simulated language model.
//!
//! A real LLM answers beyond-database questions from its pre-training
//! corpus. The simulator answers them from a [`KnowledgeBase`] — ground
//! truth (in the benchmark: the *original*, un-curated databases) passed
//! through the calibrated noise channel in [`crate::noise`]. DESIGN.md
//! documents this substitution; everything downstream of the
//! [`LanguageModel`](crate::model::LanguageModel) trait is agnostic to it.

use std::collections::HashMap;

/// How an attribute's values behave, which drives both prompt construction
/// and the error model (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrClass {
    /// Value must be chosen from a closed list (e.g. publisher names).
    /// Easier for LLMs: the list is in the prompt.
    ValueSelection,
    /// Open-ended generation (e.g. a school URL). Harder.
    FreeForm,
    /// One key maps to a set of values (e.g. a hero's powers); evaluated
    /// with F1 rather than exact match.
    MultiValue,
}

/// A ground-truth answer for one (entity, attribute) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KnownValue {
    /// Single value (possibly empty when the original cell was NULL).
    One(String),
    /// One-to-many relationship: the full set of values.
    Many(Vec<String>),
}

impl KnownValue {
    /// Flatten to display text the way HQDL condenses one-to-many values
    /// (comma-separated, §4.1 "Data Extraction").
    pub fn condensed(&self) -> String {
        match self {
            KnownValue::One(v) => v.clone(),
            KnownValue::Many(vs) => vs.join(", "),
        }
    }
}

/// World knowledge the simulated model can consult.
///
/// Keys are the "meaningful keys" the benchmark curates for LLM
/// consumption (§3.4): human-readable attribute combinations, never
/// surrogate integer ids.
pub trait KnowledgeBase: Send + Sync {
    /// Ground truth for `attribute` of the entity identified by `key`
    /// within database `db`. `None` when the entity is unknown.
    fn lookup(&self, db: &str, key: &[String], attribute: &str) -> Option<KnownValue>;

    /// Map a natural-language question to the attribute it asks about
    /// (the simulator's stand-in for language understanding). Paraphrases
    /// of the same question resolve to the same attribute.
    fn resolve_question(&self, db: &str, question: &str) -> Option<String>;

    /// Popularity of the entity in [0, 1]; 1 = extremely well-known.
    /// Models the paper's observation (§5.3) that LLMs are more accurate
    /// on prominent, high-socioeconomic-status entities.
    fn popularity(&self, db: &str, key: &[String]) -> f64;

    /// The value class of an attribute.
    fn attribute_class(&self, db: &str, attribute: &str) -> AttrClass;

    /// Plausible-but-possibly-wrong candidate values for an attribute
    /// (used to draw hallucinated answers).
    fn candidates(&self, db: &str, attribute: &str) -> Vec<String>;
}

/// An in-memory [`KnowledgeBase`] built from explicit facts; the benchmark
/// crates construct one from the original databases, and unit tests build
/// small ones by hand.
#[derive(Debug, Default)]
pub struct StaticKnowledge {
    facts: HashMap<(String, Vec<String>, String), KnownValue>,
    questions: HashMap<(String, String), String>,
    popularity: HashMap<(String, Vec<String>), f64>,
    classes: HashMap<(String, String), AttrClass>,
    candidates: HashMap<(String, String), Vec<String>>,
}

impl StaticKnowledge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_fact(
        &mut self,
        db: &str,
        key: &[String],
        attribute: &str,
        value: KnownValue,
    ) -> &mut Self {
        self.facts
            .insert((db.to_string(), key.to_vec(), attribute.to_string()), value);
        self
    }

    pub fn add_question(&mut self, db: &str, question: &str, attribute: &str) -> &mut Self {
        self.questions
            .insert((db.to_string(), normalize_question(question)), attribute.to_string());
        self
    }

    pub fn set_popularity(&mut self, db: &str, key: &[String], pop: f64) -> &mut Self {
        self.popularity.insert((db.to_string(), key.to_vec()), pop.clamp(0.0, 1.0));
        self
    }

    pub fn set_class(&mut self, db: &str, attribute: &str, class: AttrClass) -> &mut Self {
        self.classes.insert((db.to_string(), attribute.to_string()), class);
        self
    }

    pub fn set_candidates(&mut self, db: &str, attribute: &str, cands: Vec<String>) -> &mut Self {
        self.candidates.insert((db.to_string(), attribute.to_string()), cands);
        self
    }

    /// Number of stored facts (diagnostics).
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }
}

/// Normalize question text so paraphrases with identical wording modulo
/// case/punctuation/whitespace resolve identically.
pub fn normalize_question(q: &str) -> String {
    // A leading "[tag]" marks which benchmark question a phrasing came
    // from; it is metadata, not language — resolution ignores it.
    let q = match (q.trim_start().strip_prefix('['), q.find(']')) {
        (Some(_), Some(end)) => &q[end + 1..],
        _ => q,
    };
    let mut out = String::with_capacity(q.len());
    let mut last_space = true;
    for ch in q.chars() {
        if ch.is_alphanumeric() {
            out.extend(ch.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

impl KnowledgeBase for StaticKnowledge {
    fn lookup(&self, db: &str, key: &[String], attribute: &str) -> Option<KnownValue> {
        self.facts
            .get(&(db.to_string(), key.to_vec(), attribute.to_string()))
            .cloned()
    }

    fn resolve_question(&self, db: &str, question: &str) -> Option<String> {
        self.questions
            .get(&(db.to_string(), normalize_question(question)))
            .cloned()
    }

    fn popularity(&self, db: &str, key: &[String]) -> f64 {
        self.popularity
            .get(&(db.to_string(), key.to_vec()))
            .copied()
            .unwrap_or(0.5)
    }

    fn attribute_class(&self, db: &str, attribute: &str) -> AttrClass {
        self.classes
            .get(&(db.to_string(), attribute.to_string()))
            .copied()
            .unwrap_or(AttrClass::FreeForm)
    }

    fn candidates(&self, db: &str, attribute: &str) -> Vec<String> {
        self.candidates
            .get(&(db.to_string(), attribute.to_string()))
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> StaticKnowledge {
        let mut kb = StaticKnowledge::new();
        let key = vec!["Spider-Man".to_string(), "Peter Parker".to_string()];
        kb.add_fact("superhero", &key, "publisher_name", KnownValue::One("Marvel Comics".into()));
        kb.add_fact(
            "superhero",
            &key,
            "powers",
            KnownValue::Many(vec!["Agility".into(), "Wall Crawling".into()]),
        );
        kb.add_question("superhero", "Which publisher is the hero from?", "publisher_name");
        kb.set_popularity("superhero", &key, 0.95);
        kb.set_class("superhero", "publisher_name", AttrClass::ValueSelection);
        kb.set_class("superhero", "powers", AttrClass::MultiValue);
        kb.set_candidates(
            "superhero",
            "publisher_name",
            vec!["Marvel Comics".into(), "DC Comics".into()],
        );
        kb
    }

    #[test]
    fn lookup_roundtrip() {
        let kb = kb();
        let key = vec!["Spider-Man".to_string(), "Peter Parker".to_string()];
        assert_eq!(
            kb.lookup("superhero", &key, "publisher_name"),
            Some(KnownValue::One("Marvel Comics".into()))
        );
        assert_eq!(kb.lookup("superhero", &key, "missing"), None);
        assert_eq!(kb.lookup("other_db", &key, "publisher_name"), None);
    }

    #[test]
    fn question_resolution_is_punctuation_insensitive() {
        let kb = kb();
        for q in [
            "Which publisher is the hero from?",
            "which publisher is the hero from",
            "  Which  publisher, is the hero from?! ",
        ] {
            assert_eq!(
                kb.resolve_question("superhero", q).as_deref(),
                Some("publisher_name"),
                "{q}"
            );
        }
        assert_eq!(kb.resolve_question("superhero", "What color is it?"), None);
    }

    #[test]
    fn normalize_question_examples() {
        assert_eq!(normalize_question("Is the hero TALL?"), "is the hero tall");
        assert_eq!(normalize_question("a--b  c"), "a b c");
        assert_eq!(normalize_question(""), "");
    }

    #[test]
    fn defaults_for_unknown_entities() {
        let kb = kb();
        let nobody = vec!["Nobody".to_string()];
        assert_eq!(kb.popularity("superhero", &nobody), 0.5);
        assert_eq!(kb.attribute_class("superhero", "unknown"), AttrClass::FreeForm);
        assert!(kb.candidates("superhero", "unknown").is_empty());
    }

    #[test]
    fn condensed_joins_multivalues() {
        assert_eq!(
            KnownValue::Many(vec!["A".into(), "B".into()]).condensed(),
            "A, B"
        );
        assert_eq!(KnownValue::One("X".into()).condensed(), "X");
    }

    #[test]
    fn popularity_clamped() {
        let mut kb = StaticKnowledge::new();
        kb.set_popularity("d", &["k".to_string()], 7.0);
        assert_eq!(kb.popularity("d", &["k".to_string()]), 1.0);
    }
}
