//! # swan-llm
//!
//! The language-model layer of the SWAN / HQDL reproduction: a
//! [`LanguageModel`] trait (text prompt in, completion + token usage out),
//! the prompt templates both hybrid-querying solutions use, and a
//! **calibrated simulated model** standing in for the paper's GPT-3.5
//! Turbo / GPT-4 Turbo endpoints.
//!
//! ## The simulation substitution
//!
//! The paper calls OpenAI APIs; this repository cannot. Instead,
//! [`sim::SimulatedModel`] answers prompts from a [`knowledge::KnowledgeBase`]
//! (ground truth: the original, un-curated benchmark databases) passed
//! through the deterministic noise channel in [`noise`]. The channel is
//! calibrated so the paper's relative findings (GPT-4 above GPT-3.5,
//! few-shot above zero-shot, value-selection above free-form, popularity
//! bias, batching degradation, zero-shot format errors) *emerge from
//! execution*.
//! Determinism doubles as temperature-0 semantics: identical prompts give
//! identical completions.
//!
//! ## Module map
//!
//! | module | role |
//! |---|---|
//! | [`model`] | `LanguageModel` trait, `ModelKind`, errors |
//! | [`prompt`] | HQDL row-completion and UDF batch prompts + parsers |
//! | [`tokenizer`] | approximate sub-word token counting |
//! | [`usage`] | usage meters, Table-5 style reports, pricing |
//! | [`knowledge`] | ground-truth oracle abstraction |
//! | [`noise`] | the calibrated error channel |
//! | [`sim`] | the simulated model |
//! | [`cache`] | exact / normalized prompt caches (§4.3, §5.5) |
//! | [`parallel`] | multi-threaded prompt fan-out (§6), deadline-aware |
//! | [`transport`] | the model-call seam: real passthrough + deterministic fault-injecting `SimTransport` |
//! | [`resilience`] | retries, per-call timeouts, circuit breaker, statement-deadline observance (see RESILIENCE.md) |

pub mod cache;
pub mod knowledge;
pub mod model;
pub mod noise;
pub mod parallel;
pub mod prompt;
pub mod resilience;
pub mod sim;
pub mod tokenizer;
pub mod transport;
pub mod usage;

pub use cache::{CachePolicy, CacheStats, CachedModel};
pub use knowledge::{AttrClass, KnowledgeBase, KnownValue, StaticKnowledge};
pub use model::{Completion, LanguageModel, LlmError, LlmResult, ModelHandle, ModelKind};
pub use noise::{CellContext, NoiseModel, Pathway};
pub use prompt::{RowCompletionPrompt, RowExample, UdfExample, UdfPrompt};
pub use resilience::{
    BreakerPolicy, BreakerState, ResilienceStats, ResilientModel, RetryPolicy,
};
pub use sim::SimulatedModel;
pub use tokenizer::{count_tokens, TokenCount};
pub use transport::{DirectTransport, ModelFault, ModelTransport, SimTransport};
pub use usage::{Pricing, UsageMeter, UsageReport};
