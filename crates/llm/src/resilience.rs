//! The resilient model-call layer: per-call timeouts, capped
//! exponential backoff with deterministic jitter, and a per-endpoint
//! circuit breaker — wrapped around any [`ModelTransport`] and exposed
//! as a plain [`LanguageModel`], so everything downstream (UDF runner,
//! caches, parallel fan-out) composes unchanged.
//!
//! # Deadlines
//!
//! [`ResilientModel::complete`] observes the **statement-scoped cancel
//! token** ([`swan_pool::cancel::current`]) installed by the SQL
//! executor: every attempt's budget is clamped to the time remaining,
//! a backoff sleep that would cross the deadline is not taken, and once
//! the deadline passes the call fails with [`LlmError::Deadline`] —
//! which the UDF layer maps to the engine's statement-timeout error
//! rather than degrading it to NULL.
//!
//! # Breaker semantics
//!
//! Classic three-state per-endpoint breaker. *Closed*: calls flow;
//! `failure_threshold` consecutive endpoint failures (backend error,
//! timeout, rate limit — never bad prompts or blown deadlines) open it.
//! *Open*: calls fail fast with [`LlmError::CircuitOpen`] until
//! `cooldown` elapses on the wrapper's clock. *Half-open*: exactly one
//! probe attempt is admitted; success closes the breaker, failure
//! re-opens it for another cooldown. All transitions are deterministic
//! under [`SimClock`](swan_pool::SimClock) and observable via
//! [`ResilientModel::breaker_state`] (surfaced through `UdfStats`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use swan_pool::{cancel, lockrank, CancelToken, ClockHandle, RealClock};

use crate::model::{Completion, LanguageModel, LlmError, LlmResult, ModelHandle};
use crate::transport::{DirectTransport, ModelTransport};
use crate::usage::UsageMeter;

/// Retry/timeout knobs for one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (≥ 1).
    pub max_attempts: u32,
    /// Per-attempt budget; a slower attempt is abandoned as a timeout.
    pub call_timeout: Duration,
    /// First backoff sleep; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            call_timeout: Duration::from_secs(10),
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// Circuit-breaker knobs for one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive endpoint failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy { failure_threshold: 5, cooldown: Duration::from_secs(10) }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

struct BreakerCore {
    state: BreakerState,
    consecutive_failures: u32,
    /// Clock time the breaker last opened.
    opened_at: Duration,
    /// A half-open probe is in flight; concurrent calls are rejected.
    probe_in_flight: bool,
}

/// What the breaker decided for an attempt.
enum Admission {
    /// Proceed; `probe` marks the half-open trial call.
    Admit { probe: bool },
    Reject,
}

/// Counters the resilience layer accumulates (monotonic, lock-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Logical `complete` calls.
    pub calls: u64,
    /// Transport attempts (≥ calls).
    pub attempts: u64,
    /// Attempts that were retries of a failed attempt.
    pub retries: u64,
    /// Attempts lost to the per-call timeout.
    pub timeouts: u64,
    /// Attempts rejected by rate limiting.
    pub rate_limited: u64,
    /// Calls rejected by an open breaker without touching the endpoint.
    pub breaker_rejections: u64,
    /// Closed→Open transitions.
    pub breaker_opens: u64,
    /// Calls that ultimately failed (after retries/deadline/breaker).
    pub failed_calls: u64,
}

#[derive(Default)]
struct Counters {
    calls: AtomicU64,
    attempts: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    rate_limited: AtomicU64,
    breaker_rejections: AtomicU64,
    breaker_opens: AtomicU64,
    failed_calls: AtomicU64,
}

/// A [`LanguageModel`] wrapping a transport with retries, timeouts and
/// a circuit breaker. Deliberately non-generic (`Arc<dyn …>` inside) so
/// handles can be stored and inspected without downcasting.
pub struct ResilientModel {
    name: String,
    transport: Arc<dyn ModelTransport>,
    clock: ClockHandle,
    retry: RetryPolicy,
    breaker_policy: BreakerPolicy,
    breaker: Mutex<BreakerCore>,
    counters: Counters,
    meter: UsageMeter,
}

impl ResilientModel {
    pub fn new(
        transport: Arc<dyn ModelTransport>,
        clock: ClockHandle,
        retry: RetryPolicy,
        breaker: BreakerPolicy,
    ) -> Self {
        assert!(retry.max_attempts >= 1, "at least one attempt");
        ResilientModel {
            name: format!("resilient({})", transport.endpoint()),
            transport,
            clock,
            retry,
            breaker_policy: breaker,
            breaker: Mutex::with_rank("llm_breaker", lockrank::LLM_BREAKER, BreakerCore {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Duration::ZERO,
                probe_in_flight: false,
            }),
            counters: Counters::default(),
            meter: UsageMeter::new(),
        }
    }

    /// Production wrapper: direct transport, real clock, default
    /// policies.
    pub fn wrap(model: ModelHandle) -> Arc<ResilientModel> {
        Arc::new(ResilientModel::new(
            Arc::new(DirectTransport::new(model)),
            RealClock::handle(),
            RetryPolicy::default(),
            BreakerPolicy::default(),
        ))
    }

    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.lock().state
    }

    pub fn stats(&self) -> ResilienceStats {
        let c = &self.counters;
        ResilienceStats {
            calls: c.calls.load(Ordering::Relaxed),
            attempts: c.attempts.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            rate_limited: c.rate_limited.load(Ordering::Relaxed),
            breaker_rejections: c.breaker_rejections.load(Ordering::Relaxed),
            breaker_opens: c.breaker_opens.load(Ordering::Relaxed),
            failed_calls: c.failed_calls.load(Ordering::Relaxed),
        }
    }

    /// Does this error count against the breaker? Endpoint health is
    /// about the *endpoint*: client mistakes (bad prompts) and caller
    /// deadlines say nothing about it.
    fn endpoint_failure(err: &LlmError) -> bool {
        matches!(err, LlmError::Backend(_) | LlmError::Timeout | LlmError::RateLimited)
    }

    fn admit(&self) -> Admission {
        let mut b = self.breaker.lock();
        match b.state {
            BreakerState::Closed => Admission::Admit { probe: false },
            BreakerState::Open => {
                if self.clock.now() >= b.opened_at + self.breaker_policy.cooldown {
                    b.state = BreakerState::HalfOpen;
                    b.probe_in_flight = true;
                    Admission::Admit { probe: true }
                } else {
                    Admission::Reject
                }
            }
            BreakerState::HalfOpen => {
                if b.probe_in_flight {
                    Admission::Reject
                } else {
                    b.probe_in_flight = true;
                    Admission::Admit { probe: true }
                }
            }
        }
    }

    fn record_outcome(&self, probe: bool, ok: bool) {
        let mut b = self.breaker.lock();
        if probe {
            b.probe_in_flight = false;
        }
        if ok {
            b.state = BreakerState::Closed;
            b.consecutive_failures = 0;
        } else if probe {
            // A failed probe re-opens for another full cooldown.
            b.state = BreakerState::Open;
            b.opened_at = self.clock.now();
            self.counters.breaker_opens.fetch_add(1, Ordering::Relaxed);
        } else {
            b.consecutive_failures += 1;
            if b.state == BreakerState::Closed
                && b.consecutive_failures >= self.breaker_policy.failure_threshold
            {
                b.state = BreakerState::Open;
                b.opened_at = self.clock.now();
                self.counters.breaker_opens.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Deterministic jitter in `[0, half]`: a split-mix hash of the call
    /// and attempt indices — stable across runs, decorrelated across
    /// concurrent callers.
    fn jitter(call: u64, attempt: u32, half: Duration) -> Duration {
        let mut x = call.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(attempt as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        let nanos = half.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(x % (nanos + 1))
    }

    fn fail(&self, err: LlmError) -> LlmError {
        self.counters.failed_calls.fetch_add(1, Ordering::Relaxed);
        err
    }

    fn complete_with_token(
        &self,
        prompt: &str,
        token: Option<&CancelToken>,
    ) -> LlmResult<Completion> {
        let call_idx = self.counters.calls.fetch_add(1, Ordering::Relaxed);
        let check = |counted: bool| -> LlmResult<()> {
            match token {
                Some(t) if t.check().is_err() => {
                    if !counted {
                        self.counters.failed_calls.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(LlmError::Deadline)
                }
                _ => Ok(()),
            }
        };
        let mut last_err = LlmError::Backend("no attempt made".into());
        for attempt in 0..self.retry.max_attempts {
            check(false)?;
            let probe = match self.admit() {
                Admission::Admit { probe } => probe,
                Admission::Reject => {
                    self.counters.breaker_rejections.fetch_add(1, Ordering::Relaxed);
                    return Err(self.fail(LlmError::CircuitOpen));
                }
            };
            // Clamp the attempt budget to the statement's remaining time.
            let budget = match token.and_then(|t| t.remaining()) {
                Some(rem) => self.retry.call_timeout.min(rem),
                None => self.retry.call_timeout,
            };
            self.counters.attempts.fetch_add(1, Ordering::Relaxed);
            if attempt > 0 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
            }
            match self.transport.call(prompt, Some(budget)) {
                Ok(completion) => {
                    self.record_outcome(probe, true);
                    self.meter.record(completion.tokens);
                    return Ok(completion);
                }
                Err(err) => {
                    match &err {
                        LlmError::Timeout => {
                            self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                        LlmError::RateLimited => {
                            self.counters.rate_limited.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                    self.record_outcome(probe, !Self::endpoint_failure(&err));
                    if !err.is_retryable() {
                        return Err(self.fail(err));
                    }
                    last_err = err;
                }
            }
            // Last attempt exhausted: no backoff to compute.
            if attempt + 1 == self.retry.max_attempts {
                break;
            }
            check(false)?;
            // Capped exponential backoff: base·2^attempt up to the cap,
            // half fixed + half deterministic jitter.
            let exp = self
                .retry
                .base_backoff
                .saturating_mul(1u32 << attempt.min(20))
                .min(self.retry.max_backoff);
            let sleep = exp / 2 + Self::jitter(call_idx, attempt, exp / 2);
            // Respect the deadline: never sleep past it.
            if let Some(rem) = token.and_then(|t| t.remaining()) {
                if sleep >= rem {
                    return Err(self.fail(LlmError::Deadline));
                }
            }
            self.clock.sleep(sleep);
        }
        Err(self.fail(last_err))
    }
}

impl LanguageModel for ResilientModel {
    fn name(&self) -> &str {
        &self.name
    }

    /// One resilient call: retries, timeouts and breaker applied, the
    /// statement-scoped cancel token (if any) observed throughout.
    fn complete(&self, prompt: &str) -> LlmResult<Completion> {
        let token = cancel::current();
        self.complete_with_token(prompt, token.as_ref())
    }

    fn usage_meter(&self) -> &UsageMeter {
        &self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::TokenCount;
    use crate::transport::{ModelFault, SimTransport};
    use swan_pool::{Clock as _, SimClock};

    struct Fixed(UsageMeter);

    impl LanguageModel for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn complete(&self, prompt: &str) -> LlmResult<Completion> {
            let tokens = TokenCount::of(prompt, "ok");
            self.0.record(tokens);
            Ok(Completion { text: "ok".into(), tokens })
        }
        fn usage_meter(&self) -> &UsageMeter {
            &self.0
        }
    }

    fn rig(retry: RetryPolicy, breaker: BreakerPolicy) -> (ResilientModel, SimTransport, Arc<SimClock>) {
        let clock = SimClock::handle();
        let transport = SimTransport::new(Arc::new(Fixed(UsageMeter::new())), clock.clone());
        let model =
            ResilientModel::new(Arc::new(transport.clone()), clock.clone(), retry, breaker);
        (model, transport, clock)
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            call_timeout: Duration::from_millis(100),
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
        }
    }

    #[test]
    fn clean_path_is_one_attempt() {
        let (m, t, _) = rig(fast_retry(), BreakerPolicy::default());
        assert_eq!(m.complete("p").unwrap().text, "ok");
        assert_eq!(t.calls(), 1);
        let s = m.stats();
        assert_eq!((s.calls, s.attempts, s.retries, s.failed_calls), (1, 1, 0, 0));
        assert_eq!(m.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn transient_failure_is_retried_to_success() {
        let (m, t, clock) = rig(fast_retry(), BreakerPolicy::default());
        t.set_fault(0, ModelFault::Transient);
        assert_eq!(m.complete("p").unwrap().text, "ok");
        assert_eq!(t.calls(), 2);
        assert_eq!(m.stats().retries, 1);
        assert!(clock.now() >= Duration::from_millis(5), "a backoff sleep happened");
    }

    #[test]
    fn exhausted_retries_return_the_last_error() {
        let (m, t, _) = rig(fast_retry(), BreakerPolicy::default());
        t.add_fault_range(0..4, ModelFault::RateLimited);
        assert_eq!(m.complete("p"), Err(LlmError::RateLimited));
        assert_eq!(t.calls(), 4, "max_attempts bounds the attempts");
        assert_eq!(m.stats().failed_calls, 1);
    }

    #[test]
    fn bad_prompt_is_not_retried_and_does_not_trip_the_breaker() {
        struct Picky(UsageMeter);
        impl LanguageModel for Picky {
            fn name(&self) -> &str {
                "picky"
            }
            fn complete(&self, _: &str) -> LlmResult<Completion> {
                Err(LlmError::BadPrompt("nope".into()))
            }
            fn usage_meter(&self) -> &UsageMeter {
                &self.0
            }
        }
        let clock = SimClock::handle();
        let transport = SimTransport::new(Arc::new(Picky(UsageMeter::new())), clock.clone());
        let m = ResilientModel::new(
            Arc::new(transport.clone()),
            clock,
            fast_retry(),
            BreakerPolicy { failure_threshold: 1, cooldown: Duration::from_secs(1) },
        );
        assert!(matches!(m.complete("p"), Err(LlmError::BadPrompt(_))));
        assert_eq!(transport.calls(), 1, "deterministic failures are not retried");
        assert_eq!(m.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let retry = fast_retry();
        let run = || {
            let (m, t, clock) = rig(retry, BreakerPolicy { failure_threshold: 100, cooldown: Duration::from_secs(1) });
            t.add_fault_range(0..4, ModelFault::Transient);
            let _ = m.complete("p");
            clock.now()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same schedule, same virtual elapsed time");
        // 3 backoffs, each ≤ max_backoff.
        assert!(a <= Duration::from_millis(240), "{a:?}");
        assert!(a >= Duration::from_millis(15), "{a:?}");
    }

    #[test]
    fn breaker_opens_half_opens_and_closes() {
        let breaker = BreakerPolicy { failure_threshold: 3, cooldown: Duration::from_secs(5) };
        let (m, t, clock) = rig(
            RetryPolicy { max_attempts: 1, ..fast_retry() },
            breaker,
        );
        t.add_fault_range(0..3, ModelFault::Transient);
        for _ in 0..3 {
            assert!(m.complete("p").is_err());
        }
        assert_eq!(m.breaker_state(), BreakerState::Open);
        assert_eq!(m.stats().breaker_opens, 1);

        // Open: rejected without an attempt.
        let before = t.calls();
        assert_eq!(m.complete("p"), Err(LlmError::CircuitOpen));
        assert_eq!(t.calls(), before, "open breaker must not touch the endpoint");
        assert_eq!(m.stats().breaker_rejections, 1);

        // Cooldown elapses; the next call is the half-open probe and
        // succeeds (fault script exhausted), closing the breaker.
        clock.advance(Duration::from_secs(5));
        assert_eq!(m.complete("p").unwrap().text, "ok");
        assert_eq!(m.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let breaker = BreakerPolicy { failure_threshold: 2, cooldown: Duration::from_secs(5) };
        let (m, t, clock) = rig(RetryPolicy { max_attempts: 1, ..fast_retry() }, breaker);
        t.add_fault_range(0..2, ModelFault::Transient);
        for _ in 0..2 {
            assert!(m.complete("p").is_err());
        }
        assert_eq!(m.breaker_state(), BreakerState::Open);
        clock.advance(Duration::from_secs(5));
        t.add_fault(2, ModelFault::Transient); // the probe fails too
        assert!(m.complete("p").is_err());
        assert_eq!(m.breaker_state(), BreakerState::Open, "failed probe re-opens");
        assert_eq!(m.stats().breaker_opens, 2);
        // Still rejecting inside the second cooldown.
        assert_eq!(m.complete("p"), Err(LlmError::CircuitOpen));
        clock.advance(Duration::from_secs(5));
        assert!(m.complete("p").is_ok());
        assert_eq!(m.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn deadline_stops_retries_without_sleeping_past_it() {
        let (m, t, clock) = rig(fast_retry(), BreakerPolicy::default());
        t.add_fault_range(0..10, ModelFault::Transient);
        let token = CancelToken::with_timeout(clock.clone(), Duration::from_millis(8));
        let r = m.complete_with_token("p", Some(&token));
        assert_eq!(r, Err(LlmError::Deadline));
        // Every backoff is only taken if it finishes before the 8ms
        // deadline, so virtual time never crosses it — and far fewer
        // than max_attempts ran.
        assert!(clock.now() <= Duration::from_millis(8), "never sleeps past the deadline");
        assert!(t.calls() <= 2, "deadline must cut the retry loop short: {}", t.calls());
    }

    #[test]
    fn attempt_budget_is_clamped_to_remaining_deadline() {
        let (m, t, clock) = rig(
            RetryPolicy { max_attempts: 1, call_timeout: Duration::from_secs(10), ..fast_retry() },
            BreakerPolicy::default(),
        );
        t.set_fault(0, ModelFault::Timeout);
        let token = CancelToken::with_timeout(clock.clone(), Duration::from_millis(50));
        let r = m.complete_with_token("p", Some(&token));
        assert!(matches!(r, Err(LlmError::Timeout) | Err(LlmError::Deadline)), "{r:?}");
        assert_eq!(
            clock.now(),
            Duration::from_millis(50),
            "attempt consumed the remaining deadline, not the full call timeout"
        );
    }

    #[test]
    fn cancelled_token_aborts_before_any_attempt() {
        let (m, t, _) = rig(fast_retry(), BreakerPolicy::default());
        let token = CancelToken::unbounded();
        token.cancel();
        assert_eq!(m.complete_with_token("p", Some(&token)), Err(LlmError::Deadline));
        assert_eq!(t.calls(), 0);
    }

    #[test]
    fn current_token_is_observed_through_the_trait_call() {
        let (m, t, clock) = rig(fast_retry(), BreakerPolicy::default());
        t.add_fault_range(0..10, ModelFault::Transient);
        let token = CancelToken::with_timeout(clock.clone(), Duration::from_millis(8));
        let r = cancel::with_current(&token, || m.complete("p"));
        assert_eq!(r, Err(LlmError::Deadline));
    }

    #[test]
    fn usage_meter_records_successful_completions_only() {
        let (m, t, _) = rig(fast_retry(), BreakerPolicy::default());
        t.set_fault(0, ModelFault::Transient);
        m.complete("p").unwrap();
        assert_eq!(m.usage().calls, 1, "one successful completion recorded");
    }
}
