//! Prompt templates and their inverse parsers.
//!
//! Two prompt families, mirroring the paper:
//!
//! * [`RowCompletionPrompt`] — HQDL's schema-expansion prompt (§4.1.1):
//!   given the key attributes of one entity, the model fills in every
//!   missing column of the row ("Target Entry: 'A','B',?,?,…").
//! * [`UdfPrompt`] — the hybrid-query-UDF prompt (§4.2/§5.2): a natural
//!   language question plus a *batch* of keys (BlendSQL's default batch
//!   size is 5); the model answers one value per key.
//!
//! Because the repository's language model is a simulator, each template
//! has a strict `parse` inverse: render → text → parse must round-trip.
//! A real LLM sees exactly the same text.

use crate::model::{LlmError, LlmResult};

// ---- quoted-CSV row handling ----------------------------------------------

/// One field of a quoted row: a value or a `?` placeholder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Field {
    Value(String),
    Missing,
}

/// Render fields as `'a', 'b''c', ?` (single quotes doubled).
pub fn render_row(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| match f {
            Field::Value(v) => format!("'{}'", v.replace('\'', "''")),
            Field::Missing => "?".to_string(),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render a row of plain values.
pub fn render_value_row(values: &[String]) -> String {
    let fields: Vec<Field> = values.iter().map(|v| Field::Value(v.clone())).collect();
    render_row(&fields)
}

/// Parse a quoted row. Tolerates unquoted bare fields (LLM sloppiness),
/// empty fields, and missing markers.
pub fn parse_row(line: &str) -> Vec<Field> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    let n = bytes.len();
    while i < n {
        // Skip leading whitespace.
        while i < n && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if i >= n {
            // Trailing comma produced an empty final field.
            out.push(Field::Value(String::new()));
            break;
        }
        if bytes[i] == b'\'' {
            // Quoted field with '' escaping.
            let mut val = String::new();
            i += 1;
            loop {
                if i >= n {
                    break; // Unterminated quote: accept what we have.
                }
                if bytes[i] == b'\'' {
                    if i + 1 < n && bytes[i + 1] == b'\'' {
                        val.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    let len = utf8_len(bytes[i]);
                    val.push_str(&line[i..i + len]);
                    i += len;
                }
            }
            out.push(Field::Value(val));
            // Skip to the next comma.
            while i < n && bytes[i] != b',' {
                i += 1;
            }
        } else {
            // Bare field up to the next comma.
            let start = i;
            while i < n && bytes[i] != b',' {
                i += 1;
            }
            let raw = line[start..i].trim();
            if raw == "?" {
                out.push(Field::Missing);
            } else {
                out.push(Field::Value(raw.to_string()));
            }
        }
        if i < n && bytes[i] == b',' {
            i += 1;
            if i >= n {
                out.push(Field::Value(String::new()));
            }
        }
    }
    out
}

/// Extract the plain values of a parsed row (missing fields become empty).
pub fn row_values(fields: &[Field]) -> Vec<String> {
    fields
        .iter()
        .map(|f| match f {
            Field::Value(v) => v.clone(),
            Field::Missing => String::new(),
        })
        .collect()
}

#[inline]
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

// ---- row-completion prompt (HQDL) -----------------------------------------

/// A few-shot demonstration for row completion: the key fields and the
/// full answer row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowExample {
    pub key: Vec<String>,
    pub answer: Vec<String>,
}

/// The HQDL schema-expansion prompt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowCompletionPrompt {
    /// Database the entity lives in (e.g. `superhero`).
    pub db: String,
    /// Full column list of the expanded row, key columns first.
    pub columns: Vec<String>,
    /// How many leading columns form the key.
    pub key_len: usize,
    /// Value lists for value-selection columns (paper §3.3).
    pub value_lists: Vec<(String, Vec<String>)>,
    /// Few-shot demonstrations (0 = zero-shot).
    pub examples: Vec<RowExample>,
    /// Key values of the target entity.
    pub target_key: Vec<String>,
}

impl RowCompletionPrompt {
    /// Render to the prompt text sent to the model.
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "Your task is to fill in the missing values in the target entry from the `{}` database.\n",
            self.db
        ));
        s.push_str("Return a single row with no explanation.\n");
        let cols: Vec<String> = self.columns.iter().map(|c| format!("`{c}`")).collect();
        s.push_str(&format!("The columns are: {}.\n", cols.join(", ")));
        for (col, values) in &self.value_lists {
            let vals: Vec<String> =
                values.iter().map(|v| format!("'{}'", v.replace('\'', "''"))).collect();
            s.push_str(&format!(
                "The possible values for `{col}` are [{}].\n",
                vals.join(", ")
            ));
        }
        for ex in &self.examples {
            s.push_str(&format!("Example Entry: {}\n", self.entry_row(&ex.key)));
            s.push_str(&format!("Example Answer: {}\n", render_value_row(&ex.answer)));
        }
        s.push_str(&format!("Target Entry: {}\n", self.entry_row(&self.target_key)));
        s.push_str(&format!(
            "The output should consist of a single row containing {} fields.\n",
            self.columns.len()
        ));
        s.push_str("Answer:");
        s
    }

    fn entry_row(&self, key: &[String]) -> String {
        let mut fields: Vec<Field> = key.iter().map(|k| Field::Value(k.clone())).collect();
        fields.extend(std::iter::repeat_n(Field::Missing, self.columns.len() - self.key_len));
        render_row(&fields)
    }

    /// Parse a rendered prompt back (the simulator's inverse).
    pub fn parse(text: &str) -> LlmResult<RowCompletionPrompt> {
        let mut db = None;
        let mut columns: Vec<String> = Vec::new();
        let mut value_lists = Vec::new();
        let mut examples: Vec<RowExample> = Vec::new();
        let mut pending_example_key: Option<Vec<String>> = None;
        let mut target_key = None;
        let mut key_len = 0usize;

        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix(
                "Your task is to fill in the missing values in the target entry from the `",
            ) {
                db = rest.split('`').next().map(str::to_string);
            } else if let Some(rest) = line.strip_prefix("The columns are: ") {
                columns = rest
                    .trim_end_matches('.')
                    .split(',')
                    .map(|c| c.trim().trim_matches('`').to_string())
                    .filter(|c| !c.is_empty())
                    .collect();
            } else if let Some(rest) = line.strip_prefix("The possible values for `") {
                let mut parts = rest.splitn(2, "` are [");
                let col = parts.next().unwrap_or_default().to_string();
                let vals_raw = parts
                    .next()
                    .ok_or_else(|| LlmError::BadPrompt("malformed value list".into()))?
                    .trim_end_matches(['.', ']'].as_ref());
                let fields = parse_row(vals_raw);
                value_lists.push((col, row_values(&fields)));
            } else if let Some(rest) = line.strip_prefix("Example Entry: ") {
                let fields = parse_row(rest);
                let key: Vec<String> = fields
                    .iter()
                    .take_while(|f| matches!(f, Field::Value(_)))
                    .map(|f| match f {
                        Field::Value(v) => v.clone(),
                        Field::Missing => unreachable!(),
                    })
                    .collect();
                pending_example_key = Some(key);
            } else if let Some(rest) = line.strip_prefix("Example Answer: ") {
                let answer = row_values(&parse_row(rest));
                if let Some(key) = pending_example_key.take() {
                    examples.push(RowExample { key, answer });
                }
            } else if let Some(rest) = line.strip_prefix("Target Entry: ") {
                let fields = parse_row(rest);
                let key: Vec<String> = fields
                    .iter()
                    .take_while(|f| matches!(f, Field::Value(_)))
                    .map(|f| match f {
                        Field::Value(v) => v.clone(),
                        Field::Missing => unreachable!(),
                    })
                    .collect();
                key_len = key.len();
                target_key = Some(key);
            }
        }

        let db = db.ok_or_else(|| LlmError::BadPrompt("missing database line".into()))?;
        if columns.is_empty() {
            return Err(LlmError::BadPrompt("missing column list".into()));
        }
        let target_key =
            target_key.ok_or_else(|| LlmError::BadPrompt("missing target entry".into()))?;
        if key_len == 0 || key_len > columns.len() {
            return Err(LlmError::BadPrompt("target entry has no key fields".into()));
        }
        Ok(RowCompletionPrompt { db, columns, key_len, value_lists, examples, target_key })
    }

    /// Is this prompt in row-completion format? (cheap sniff)
    pub fn matches(text: &str) -> bool {
        text.starts_with("Your task is to fill in the missing values")
    }
}

// ---- UDF prompt (BlendSQL-style) ------------------------------------------

/// A question/answer demonstration pair for the UDF prompt (§5.2: "a
/// natural language question, an example database key, and the answer").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdfExample {
    pub key: Vec<String>,
    pub answer: String,
}

/// The hybrid-query-UDF prompt: one question, a batch of keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdfPrompt {
    pub db: String,
    /// The natural-language question, e.g. "What is the driver code?".
    pub question: String,
    /// Optional value list to select from.
    pub value_list: Option<Vec<String>>,
    /// Few-shot demonstrations.
    pub examples: Vec<UdfExample>,
    /// The batch of keys to answer for (BlendSQL default batch = 5).
    pub keys: Vec<Vec<String>>,
}

impl UdfPrompt {
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "You are answering a question about entities in the `{}` database.\n",
            self.db
        ));
        s.push_str(&format!("Question: {}\n", self.question));
        s.push_str("Answer with exactly one value per key line, in order, with no explanation.\n");
        if let Some(values) = &self.value_list {
            let vals: Vec<String> =
                values.iter().map(|v| format!("'{}'", v.replace('\'', "''"))).collect();
            s.push_str(&format!("The possible values are [{}].\n", vals.join(", ")));
        }
        for ex in &self.examples {
            s.push_str(&format!("Example Key: {}\n", render_value_row(&ex.key)));
            s.push_str(&format!("Example Answer: '{}'\n", ex.answer.replace('\'', "''")));
        }
        s.push_str("Keys:\n");
        for k in &self.keys {
            s.push_str(&format!("{}\n", render_value_row(k)));
        }
        s.push_str("Answer:");
        s
    }

    pub fn parse(text: &str) -> LlmResult<UdfPrompt> {
        let mut db = None;
        let mut question = None;
        let mut value_list = None;
        let mut examples: Vec<UdfExample> = Vec::new();
        let mut pending_key: Option<Vec<String>> = None;
        let mut keys = Vec::new();
        let mut in_keys = false;

        for line in text.lines() {
            let line = line.trim();
            if in_keys {
                if line == "Answer:" {
                    break;
                }
                if !line.is_empty() {
                    keys.push(row_values(&parse_row(line)));
                }
                continue;
            }
            if let Some(rest) =
                line.strip_prefix("You are answering a question about entities in the `")
            {
                db = rest.split('`').next().map(str::to_string);
            } else if let Some(rest) = line.strip_prefix("Question: ") {
                question = Some(rest.to_string());
            } else if let Some(rest) = line.strip_prefix("The possible values are [") {
                let vals_raw = rest.trim_end_matches(['.', ']'].as_ref());
                value_list = Some(row_values(&parse_row(vals_raw)));
            } else if let Some(rest) = line.strip_prefix("Example Key: ") {
                pending_key = Some(row_values(&parse_row(rest)));
            } else if let Some(rest) = line.strip_prefix("Example Answer: ") {
                if let Some(key) = pending_key.take() {
                    let answer = row_values(&parse_row(rest))
                        .into_iter()
                        .next()
                        .unwrap_or_default();
                    examples.push(UdfExample { key, answer });
                }
            } else if line == "Keys:" {
                in_keys = true;
            }
        }

        let db = db.ok_or_else(|| LlmError::BadPrompt("missing database line".into()))?;
        let question =
            question.ok_or_else(|| LlmError::BadPrompt("missing question line".into()))?;
        if keys.is_empty() {
            return Err(LlmError::BadPrompt("no keys in batch".into()));
        }
        Ok(UdfPrompt { db, question, value_list, examples, keys })
    }

    pub fn matches(text: &str) -> bool {
        text.starts_with("You are answering a question about entities in the `")
    }
}

/// Parse a UDF completion: one value per line, optionally quoted.
pub fn parse_udf_response(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| {
            row_values(&parse_row(l))
                .into_iter()
                .next()
                .unwrap_or_default()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_roundtrip() {
        let fields = vec![
            Field::Value("3-D Man".into()),
            Field::Value("Charles Chandler".into()),
            Field::Missing,
            Field::Value("it's".into()),
        ];
        let s = render_row(&fields);
        assert_eq!(s, "'3-D Man', 'Charles Chandler', ?, 'it''s'");
        assert_eq!(parse_row(&s), fields);
    }

    #[test]
    fn parse_row_tolerates_bare_fields() {
        let fields = parse_row("Marvel Comics, 'Good', ?");
        assert_eq!(
            fields,
            vec![
                Field::Value("Marvel Comics".into()),
                Field::Value("Good".into()),
                Field::Missing,
            ]
        );
    }

    #[test]
    fn parse_row_handles_empty_and_unicode() {
        assert_eq!(parse_row(""), Vec::<Field>::new());
        let f = parse_row("'héro — ok', ''");
        assert_eq!(f[0], Field::Value("héro — ok".into()));
        assert_eq!(f[1], Field::Value("".into()));
    }

    fn sample_prompt() -> RowCompletionPrompt {
        RowCompletionPrompt {
            db: "superhero".into(),
            columns: vec![
                "superhero_name".into(),
                "full_name".into(),
                "publisher_name".into(),
                "moral_alignment".into(),
            ],
            key_len: 2,
            value_lists: vec![(
                "publisher_name".into(),
                vec!["Marvel Comics".into(), "DC Comics".into()],
            )],
            examples: vec![RowExample {
                key: vec!["3-D Man".into(), "Charles Chandler".into()],
                answer: vec![
                    "3-D Man".into(),
                    "Charles Chandler".into(),
                    "Marvel Comics".into(),
                    "Good".into(),
                ],
            }],
            target_key: vec!["Batman".into(), "Bruce Wayne".into()],
        }
    }

    #[test]
    fn row_completion_render_parse_roundtrip() {
        let p = sample_prompt();
        let text = p.render();
        assert!(RowCompletionPrompt::matches(&text));
        assert!(!UdfPrompt::matches(&text));
        let back = RowCompletionPrompt::parse(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn zero_shot_prompt_has_no_examples() {
        let mut p = sample_prompt();
        p.examples.clear();
        let text = p.render();
        assert!(!text.contains("Example"));
        assert_eq!(RowCompletionPrompt::parse(&text).unwrap().examples.len(), 0);
    }

    #[test]
    fn prompt_text_matches_paper_shape() {
        let text = sample_prompt().render();
        assert!(text.contains("fill in the missing values"));
        assert!(text.contains("Return a single row with no explanation."), "No-Explanation rule");
        assert!(text.contains("The possible values for `publisher_name`"));
        assert!(text.contains("Target Entry: 'Batman', 'Bruce Wayne', ?, ?"));
        assert!(text.ends_with("Answer:"));
    }

    fn sample_udf_prompt() -> UdfPrompt {
        UdfPrompt {
            db: "formula_1".into(),
            question: "What is the driver code?".into(),
            value_list: None,
            examples: vec![UdfExample {
                key: vec!["Lewis Hamilton".into()],
                answer: "HAM".into(),
            }],
            keys: vec![
                vec!["Max Verstappen".into()],
                vec!["Fernando Alonso".into()],
            ],
        }
    }

    #[test]
    fn udf_render_parse_roundtrip() {
        let p = sample_udf_prompt();
        let text = p.render();
        assert!(UdfPrompt::matches(&text));
        assert!(!RowCompletionPrompt::matches(&text));
        let back = UdfPrompt::parse(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn udf_prompt_with_value_list_roundtrip() {
        let mut p = sample_udf_prompt();
        p.value_list = Some(vec!["Marvel Comics".into(), "DC Comics".into()]);
        let back = UdfPrompt::parse(&p.render()).unwrap();
        assert_eq!(back.value_list, p.value_list);
    }

    #[test]
    fn udf_response_parsing() {
        let vals = parse_udf_response("'VER'\n'ALO'\n");
        assert_eq!(vals, vec!["VER", "ALO"]);
        let vals = parse_udf_response("plain\n'quoted'");
        assert_eq!(vals, vec!["plain", "quoted"]);
        assert!(parse_udf_response("").is_empty());
    }

    #[test]
    fn composite_keys_roundtrip() {
        let mut p = sample_udf_prompt();
        p.keys = vec![vec!["Spider-Man".into(), "Peter Parker".into()]];
        let back = UdfPrompt::parse(&p.render()).unwrap();
        assert_eq!(back.keys[0], vec!["Spider-Man".to_string(), "Peter Parker".to_string()]);
    }

    #[test]
    fn malformed_prompts_error() {
        assert!(RowCompletionPrompt::parse("nonsense").is_err());
        assert!(UdfPrompt::parse("Question: hmm").is_err());
    }
}
