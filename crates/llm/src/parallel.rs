//! Parallel LLM call execution.
//!
//! The paper's future-work list (§6) calls for "asynchronous and parallel
//! hybrid query execution". This module fans a batch of prompts across the
//! workspace-wide **persistent, bounded worker pool** ([`swan_pool`])
//! against one (thread-safe) model, preserving input order in the output.
//!
//! The pool is shared with the SQL executor's morsel-parallel operators:
//! it is created lazily on first use and reused by every subsequent call —
//! no per-call (let alone per-prompt) thread spawning. Each
//! [`complete_many`] submits at most `workers` pool jobs that *steal*
//! prompt indices from a shared counter, so per-call concurrency stays
//! capped at `workers` while latency-skewed batches (one slow prompt next
//! to many fast ones — the norm for LLM traffic) still balance across the
//! whole set. `workers <= 1` runs inline on the caller thread (the
//! sequential baseline for the parallelism ablation), and a call from
//! *inside* a pool worker (a composite/router model, or a model call made
//! by a morsel-parallel SQL operator) also runs inline instead of
//! re-entering — and potentially deadlocking — the fixed pool.

use swan_pool::{cancel, CancelToken};

use crate::model::{Completion, LanguageModel, LlmError, LlmResult};

/// Execute `prompts` against `model` on up to `workers` pool threads.
///
/// Results come back in prompt order. With `workers <= 1` the calls run
/// inline. Effective concurrency is additionally bounded by the shared
/// pool size ([`swan_pool::pool_size`]: `max(cores, 16)`, capped at 64 —
/// comfortably above the §6 parallelism ablation's sweep).
///
/// The caller's **current cancel token** ([`swan_pool::cancel::current`])
/// is re-installed inside every worker (pool threads do not inherit
/// thread-locals), so a statement deadline firing mid-batch makes the
/// remaining prompts fail fast with [`LlmError::Deadline`] instead of
/// being attempted.
pub fn complete_many(
    model: &dyn LanguageModel,
    prompts: &[String],
    workers: usize,
) -> Vec<LlmResult<Completion>> {
    match cancel::current() {
        Some(token) => complete_many_cancellable(model, prompts, workers, &token),
        None => {
            let workers = workers.max(1).min(prompts.len().max(1));
            swan_pool::parallel_items(prompts.len(), workers, |i| model.complete(&prompts[i]))
        }
    }
}

/// [`complete_many`] under an explicit cancel token: each worker checks
/// the token before attempting its prompt (aborting promptly once it
/// fires) and installs it as the worker-thread's current token so the
/// model wrapper observes the same deadline.
pub fn complete_many_cancellable(
    model: &dyn LanguageModel,
    prompts: &[String],
    workers: usize,
    token: &CancelToken,
) -> Vec<LlmResult<Completion>> {
    let workers = workers.max(1).min(prompts.len().max(1));
    swan_pool::parallel_items(prompts.len(), workers, |i| {
        if token.check().is_err() {
            return Err(LlmError::Deadline);
        }
        cancel::with_current(token, || model.complete(&prompts[i]))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::TokenCount;
    use crate::usage::UsageMeter;
    use std::panic::AssertUnwindSafe;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    struct SlowEcho {
        meter: UsageMeter,
        max_in_flight: AtomicU64,
        in_flight: AtomicU64,
    }

    impl SlowEcho {
        fn new() -> Self {
            SlowEcho {
                meter: UsageMeter::new(),
                max_in_flight: AtomicU64::new(0),
                in_flight: AtomicU64::new(0),
            }
        }
    }

    impl LanguageModel for SlowEcho {
        fn name(&self) -> &str {
            "slow-echo"
        }
        fn complete(&self, prompt: &str) -> LlmResult<Completion> {
            let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            self.max_in_flight.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(5));
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            let tokens = TokenCount::of(prompt, prompt);
            self.meter.record(tokens);
            Ok(Completion { text: prompt.to_string(), tokens })
        }
        fn usage_meter(&self) -> &UsageMeter {
            &self.meter
        }
    }

    #[test]
    fn preserves_order() {
        let model = SlowEcho::new();
        let prompts: Vec<String> = (0..20).map(|i| format!("p{i}")).collect();
        let out = complete_many(&model, &prompts, 4);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().text, format!("p{i}"));
        }
        assert_eq!(model.usage().calls, 20);
    }

    #[test]
    fn actually_runs_concurrently() {
        let model = SlowEcho::new();
        let prompts: Vec<String> = (0..16).map(|i| format!("p{i}")).collect();
        complete_many(&model, &prompts, 8);
        assert!(
            model.max_in_flight.load(Ordering::SeqCst) >= 2,
            "no concurrency observed"
        );
    }

    #[test]
    fn sequential_path_for_one_worker() {
        let model = SlowEcho::new();
        let prompts: Vec<String> = (0..4).map(|i| format!("p{i}")).collect();
        complete_many(&model, &prompts, 1);
        assert_eq!(model.max_in_flight.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn empty_input() {
        let model = SlowEcho::new();
        assert!(complete_many(&model, &[], 4).is_empty());
    }

    #[test]
    fn workers_capped_to_prompt_count() {
        let model = SlowEcho::new();
        let prompts = vec!["only".to_string()];
        let out = complete_many(&model, &prompts, 64);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn pool_is_reused_across_calls() {
        let model = SlowEcho::new();
        let prompts: Vec<String> = (0..6).map(|i| format!("p{i}")).collect();
        let before = swan_pool::pool_size();
        for _ in 0..5 {
            complete_many(&model, &prompts, 3);
        }
        assert_eq!(swan_pool::pool_size(), before, "pool size is fixed across calls");
    }

    /// Two adjacent slow prompts must land on different workers (index
    /// stealing), not in one worker's contiguous chunk.
    #[test]
    fn skewed_latencies_balance_across_workers() {
        struct Skewed(UsageMeter);
        impl LanguageModel for Skewed {
            fn name(&self) -> &str {
                "skewed"
            }
            fn complete(&self, prompt: &str) -> LlmResult<Completion> {
                if prompt.starts_with("slow") {
                    std::thread::sleep(Duration::from_millis(200));
                }
                Ok(Completion { text: prompt.into(), tokens: TokenCount::default() })
            }
            fn usage_meter(&self) -> &UsageMeter {
                &self.0
            }
        }
        let model = Skewed(UsageMeter::new());
        let prompts: Vec<String> =
            ["slow1", "slow2", "f1", "f2"].iter().map(|s| s.to_string()).collect();
        let t = Instant::now();
        let out = complete_many(&model, &prompts, 2);
        let elapsed = t.elapsed();
        assert_eq!(out.len(), 4);
        // Static half/half chunking would serialize both slow prompts in
        // one chunk (~400ms); stealing runs them concurrently (~200ms).
        assert!(
            elapsed < Duration::from_millis(350),
            "slow prompts were not balanced: {elapsed:?}"
        );
    }

    /// A composite model that fans out from inside `complete` must not
    /// deadlock the fixed pool: the inner batch runs inline on the worker.
    #[test]
    fn reentrant_complete_many_runs_inline_without_deadlock() {
        struct Router {
            inner: SlowEcho,
        }
        impl LanguageModel for Router {
            fn name(&self) -> &str {
                "router"
            }
            fn complete(&self, prompt: &str) -> LlmResult<Completion> {
                let sub: Vec<String> = (0..3).map(|i| format!("{prompt}/{i}")).collect();
                let parts = complete_many(&self.inner, &sub, 4);
                let text = parts
                    .into_iter()
                    .map(|r| r.unwrap().text)
                    .collect::<Vec<_>>()
                    .join("+");
                Ok(Completion { text, tokens: TokenCount::default() })
            }
            fn usage_meter(&self) -> &UsageMeter {
                self.inner.usage_meter()
            }
        }
        let router = Router { inner: SlowEcho::new() };
        // More outer prompts than pool threads would previously be able to
        // wedge every worker inside the nested wait.
        let prompts: Vec<String> = (0..80).map(|i| format!("p{i}")).collect();
        let out = complete_many(&router, &prompts, 64);
        assert_eq!(out.len(), 80);
        assert_eq!(out[7].as_ref().unwrap().text, "p7/0+p7/1+p7/2");
    }

    #[test]
    fn cancelled_token_fails_remaining_prompts_fast() {
        let model = SlowEcho::new();
        let prompts: Vec<String> = (0..8).map(|i| format!("p{i}")).collect();
        let token = swan_pool::CancelToken::unbounded();
        token.cancel();
        let t = Instant::now();
        let out = complete_many_cancellable(&model, &prompts, 4, &token);
        assert!(t.elapsed() < Duration::from_millis(100), "must abort promptly");
        assert!(out.iter().all(|r| *r == Err(crate::model::LlmError::Deadline)));
        assert_eq!(model.usage().calls, 0, "no prompt attempted after cancellation");
    }

    #[test]
    fn current_token_propagates_into_workers() {
        let model = SlowEcho::new();
        let prompts: Vec<String> = (0..4).map(|i| format!("p{i}")).collect();
        let token = swan_pool::CancelToken::unbounded();
        token.cancel();
        // complete_many picks the caller's current token up by itself.
        let out = swan_pool::cancel::with_current(&token, || complete_many(&model, &prompts, 4));
        assert!(out.iter().all(|r| *r == Err(crate::model::LlmError::Deadline)));
    }

    #[test]
    fn worker_panic_propagates_without_killing_the_pool() {
        struct Bomb(UsageMeter);
        impl LanguageModel for Bomb {
            fn name(&self) -> &str {
                "bomb"
            }
            fn complete(&self, prompt: &str) -> LlmResult<Completion> {
                if prompt == "boom" {
                    panic!("simulated model crash");
                }
                Ok(Completion { text: prompt.into(), tokens: TokenCount::default() })
            }
            fn usage_meter(&self) -> &UsageMeter {
                &self.0
            }
        }
        let bomb = Bomb(UsageMeter::new());
        let prompts = vec!["ok".to_string(), "boom".to_string(), "ok2".to_string()];
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            complete_many(&bomb, &prompts, 3);
        }));
        assert!(caught.is_err(), "panic must propagate to the caller");

        // The pool survives and keeps serving.
        let model = SlowEcho::new();
        let out = complete_many(&model, &(0..8).map(|i| format!("q{i}")).collect::<Vec<_>>(), 4);
        assert_eq!(out.len(), 8);
    }
}
