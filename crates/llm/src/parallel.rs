//! Parallel LLM call execution.
//!
//! The paper's future-work list (§6) calls for "asynchronous and parallel
//! hybrid query execution". This module provides the building block: fan a
//! batch of prompts across a **persistent, bounded worker pool** against one
//! (thread-safe) model, preserving input order in the output.
//!
//! The pool is created lazily on first use and reused by every subsequent
//! `complete_many` call — no per-call (let alone per-prompt) thread
//! spawning. Each call submits at most `workers` pool jobs that *steal*
//! prompt indices from a shared counter, so per-call concurrency stays
//! capped at `workers` while latency-skewed batches (one slow prompt next
//! to many fast ones — the norm for LLM traffic) still balance across the
//! whole set. Each claimed index gives its worker exclusive access to the
//! matching pre-sized result slot, which is what preserves prompt order
//! without a reordering pass. `workers <= 1` runs inline on the caller
//! thread (the sequential baseline for the parallelism ablation).

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

use crate::model::{Completion, LanguageModel, LlmResult};

/// Execute `prompts` against `model` on up to `workers` pool threads.
///
/// Results come back in prompt order. With `workers <= 1` the calls run
/// inline. Effective concurrency is additionally bounded by the pool size
/// (`max(cores, 16)`, capped at 64 — comfortably above the §6 parallelism
/// ablation's sweep). Calling `complete_many` *from inside* a model's
/// `complete` (a composite/router model) runs that inner batch
/// sequentially on the worker thread instead of re-entering the pool,
/// which would otherwise be able to deadlock a fully-loaded fixed pool.
pub fn complete_many(
    model: &dyn LanguageModel,
    prompts: &[String],
    workers: usize,
) -> Vec<LlmResult<Completion>> {
    if prompts.is_empty() {
        return Vec::new();
    }
    let workers = workers.max(1).min(prompts.len());
    if workers == 1 || IS_POOL_WORKER.with(|w| w.get()) {
        return prompts.iter().map(|p| model.complete(p)).collect();
    }

    let n = prompts.len();
    // Pre-sized result slots, one per prompt. A slot is written exactly
    // once, by whichever worker claimed its index from the counter.
    let slot_cells: Vec<SlotCell> = (0..n).map(|_| SlotCell(UnsafeCell::new(None))).collect();
    let next = AtomicUsize::new(0);
    let latch = Latch::new(workers);
    {
        let table: &[SlotCell] = &slot_cells;
        let next = &next;
        // SAFETY-ordering: the guard is dropped (and thus waits for every
        // submitted job) before `slot_cells`/`prompts` borrows can die —
        // on the normal path *and* on any unwind out of this block.
        let _guard = WaitOnDrop(&latch);
        let jobs: Vec<Job<'_>> = (0..workers)
            .map(|_| {
                let job: Job<'_> = Box::new(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = model.complete(&prompts[i]);
                    // SAFETY: index `i` was claimed exactly once, so this
                    // worker has exclusive access to slot `i`.
                    unsafe { *table[i].0.get() = Some(r) };
                });
                job
            })
            .collect();
        pool().run_scoped(jobs, &latch);
    }
    latch.check_panic();

    slot_cells
        .into_iter()
        .map(|c| c.0.into_inner().expect("every prompt slot filled"))
        .collect()
}

/// One result slot. `Sync` is sound because each index is claimed by
/// exactly one worker (via the shared counter) before being written, and
/// the caller only reads after the latch has settled.
struct SlotCell(UnsafeCell<Option<LlmResult<Completion>>>);

unsafe impl Sync for SlotCell {}

// ---- the worker pool -------------------------------------------------------

type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A fixed set of worker threads fed from one shared queue.
struct WorkerPool {
    queue: mpsc::Sender<ScopedJob>,
    size: usize,
}

/// A job whose borrows have been erased; the submitting call guarantees it
/// completes (via its latch) before the borrowed data goes out of scope.
struct ScopedJob {
    job: Job<'static>,
    latch: Arc<LatchState>,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

thread_local! {
    /// Set for the lifetime of a pool worker thread; used to detect
    /// reentrant `complete_many` calls and run them inline instead of
    /// deadlocking a fully-loaded fixed pool.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static WorkerPool {
    POOL.get_or_init(|| {
        // LLM calls are latency-bound, not CPU-bound, so the pool is allowed
        // to exceed the core count; it stays bounded regardless of how many
        // `complete_many` calls or prompts flow through it. The floor keeps
        // headroom above the parallelism ablation's worker sweep even on
        // small CI machines.
        let size = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(16)
            .min(64);
        WorkerPool::with_size(size)
    })
}

impl WorkerPool {
    fn with_size(size: usize) -> Self {
        let (tx, rx) = mpsc::channel::<ScopedJob>();
        let rx = Arc::new(Mutex::new(rx));
        for i in 0..size {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("swan-llm-worker-{i}"))
                .spawn(move || {
                    IS_POOL_WORKER.with(|w| w.set(true));
                    loop {
                        let next = {
                            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                            guard.recv()
                        };
                        let Ok(scoped) = next else { break };
                        // Keep the worker alive across panicking jobs; the
                        // panic is re-raised on the submitting thread.
                        let panicked = catch_unwind(AssertUnwindSafe(scoped.job)).is_err();
                        scoped.latch.count_down(panicked);
                    }
                })
                .expect("spawn LLM worker thread");
        }
        WorkerPool { queue: tx, size }
    }

    /// Number of threads in the pool (its concurrency bound).
    #[allow(dead_code)]
    fn size(&self) -> usize {
        self.size
    }

    /// Submit scoped jobs. SAFETY contract: the caller must wait on `latch`
    /// before any data borrowed by the jobs is dropped — `complete_many`
    /// enforces this with a [`WaitOnDrop`] guard covering every exit path.
    fn run_scoped(&self, jobs: Vec<Job<'_>>, latch: &Latch) {
        for job in jobs {
            // Erase the borrow lifetime: a Box<dyn FnOnce> is a fat pointer
            // whose layout does not depend on the lifetime parameter.
            let job: Job<'static> = unsafe { std::mem::transmute(job) };
            let scoped = ScopedJob { job, latch: latch.state.clone() };
            if let Err(mpsc::SendError(scoped)) = self.queue.send(scoped) {
                // Queue closed (cannot happen while the pool is alive, but
                // never leave a latch slot dangling): run inline instead.
                let panicked = catch_unwind(AssertUnwindSafe(scoped.job)).is_err();
                scoped.latch.count_down(panicked);
            }
        }
    }
}

// ---- completion latch ------------------------------------------------------

struct LatchState {
    remaining: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

/// Counts outstanding jobs of one `complete_many` call.
struct Latch {
    state: Arc<LatchState>,
}

/// Drop guard: waits for every job of `complete_many` to finish before the
/// stack frame (and the borrows the jobs hold) can unwind away. Never
/// panics from `drop` — panic propagation happens separately via
/// [`Latch::check_panic`] on the normal path.
struct WaitOnDrop<'a>(&'a Latch);

impl Drop for WaitOnDrop<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Arc::new(LatchState {
                remaining: Mutex::new(count),
                all_done: Condvar::new(),
                panicked: AtomicBool::new(false),
            }),
        }
    }

    /// Block until every job has finished.
    fn wait(&self) {
        let mut remaining = self.state.remaining.lock().unwrap_or_else(|p| p.into_inner());
        while *remaining > 0 {
            remaining = self
                .state
                .all_done
                .wait(remaining)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Re-raise a worker-job panic on the calling thread.
    fn check_panic(&self) {
        if self.state.panicked.load(Ordering::SeqCst) {
            panic!("LLM worker job panicked");
        }
    }
}

impl LatchState {
    fn count_down(&self, panicked: bool) {
        if panicked {
            self.panicked.store(true, Ordering::SeqCst);
        }
        let mut remaining = self.remaining.lock().unwrap_or_else(|p| p.into_inner());
        *remaining -= 1;
        if *remaining == 0 {
            self.all_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::TokenCount;
    use crate::usage::UsageMeter;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    struct SlowEcho {
        meter: UsageMeter,
        max_in_flight: AtomicU64,
        in_flight: AtomicU64,
    }

    impl SlowEcho {
        fn new() -> Self {
            SlowEcho {
                meter: UsageMeter::new(),
                max_in_flight: AtomicU64::new(0),
                in_flight: AtomicU64::new(0),
            }
        }
    }

    impl LanguageModel for SlowEcho {
        fn name(&self) -> &str {
            "slow-echo"
        }
        fn complete(&self, prompt: &str) -> LlmResult<Completion> {
            let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            self.max_in_flight.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(5));
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            let tokens = TokenCount::of(prompt, prompt);
            self.meter.record(tokens);
            Ok(Completion { text: prompt.to_string(), tokens })
        }
        fn usage_meter(&self) -> &UsageMeter {
            &self.meter
        }
    }

    #[test]
    fn preserves_order() {
        let model = SlowEcho::new();
        let prompts: Vec<String> = (0..20).map(|i| format!("p{i}")).collect();
        let out = complete_many(&model, &prompts, 4);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().text, format!("p{i}"));
        }
        assert_eq!(model.usage().calls, 20);
    }

    #[test]
    fn actually_runs_concurrently() {
        let model = SlowEcho::new();
        let prompts: Vec<String> = (0..16).map(|i| format!("p{i}")).collect();
        complete_many(&model, &prompts, 8);
        assert!(
            model.max_in_flight.load(Ordering::SeqCst) >= 2,
            "no concurrency observed"
        );
    }

    #[test]
    fn sequential_path_for_one_worker() {
        let model = SlowEcho::new();
        let prompts: Vec<String> = (0..4).map(|i| format!("p{i}")).collect();
        complete_many(&model, &prompts, 1);
        assert_eq!(model.max_in_flight.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn empty_input() {
        let model = SlowEcho::new();
        assert!(complete_many(&model, &[], 4).is_empty());
    }

    #[test]
    fn workers_capped_to_prompt_count() {
        let model = SlowEcho::new();
        let prompts = vec!["only".to_string()];
        let out = complete_many(&model, &prompts, 64);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn pool_is_reused_across_calls() {
        let model = SlowEcho::new();
        let prompts: Vec<String> = (0..6).map(|i| format!("p{i}")).collect();
        let before = pool().size();
        for _ in 0..5 {
            complete_many(&model, &prompts, 3);
        }
        assert_eq!(pool().size(), before, "pool size is fixed across calls");
    }

    /// Two adjacent slow prompts must land on different workers (index
    /// stealing), not in one worker's contiguous chunk.
    #[test]
    fn skewed_latencies_balance_across_workers() {
        struct Skewed(UsageMeter);
        impl LanguageModel for Skewed {
            fn name(&self) -> &str {
                "skewed"
            }
            fn complete(&self, prompt: &str) -> LlmResult<Completion> {
                if prompt.starts_with("slow") {
                    std::thread::sleep(Duration::from_millis(200));
                }
                Ok(Completion { text: prompt.into(), tokens: TokenCount::default() })
            }
            fn usage_meter(&self) -> &UsageMeter {
                &self.0
            }
        }
        let model = Skewed(UsageMeter::new());
        let prompts: Vec<String> =
            ["slow1", "slow2", "f1", "f2"].iter().map(|s| s.to_string()).collect();
        let t = Instant::now();
        let out = complete_many(&model, &prompts, 2);
        let elapsed = t.elapsed();
        assert_eq!(out.len(), 4);
        // Static half/half chunking would serialize both slow prompts in
        // one chunk (~400ms); stealing runs them concurrently (~200ms).
        assert!(
            elapsed < Duration::from_millis(350),
            "slow prompts were not balanced: {elapsed:?}"
        );
    }

    /// A composite model that fans out from inside `complete` must not
    /// deadlock the fixed pool: the inner batch runs inline on the worker.
    #[test]
    fn reentrant_complete_many_runs_inline_without_deadlock() {
        struct Router {
            inner: SlowEcho,
        }
        impl LanguageModel for Router {
            fn name(&self) -> &str {
                "router"
            }
            fn complete(&self, prompt: &str) -> LlmResult<Completion> {
                let sub: Vec<String> = (0..3).map(|i| format!("{prompt}/{i}")).collect();
                let parts = complete_many(&self.inner, &sub, 4);
                let text = parts
                    .into_iter()
                    .map(|r| r.unwrap().text)
                    .collect::<Vec<_>>()
                    .join("+");
                Ok(Completion { text, tokens: TokenCount::default() })
            }
            fn usage_meter(&self) -> &UsageMeter {
                self.inner.usage_meter()
            }
        }
        let router = Router { inner: SlowEcho::new() };
        // More outer prompts than pool threads would previously be able to
        // wedge every worker inside the nested wait.
        let prompts: Vec<String> = (0..80).map(|i| format!("p{i}")).collect();
        let out = complete_many(&router, &prompts, 64);
        assert_eq!(out.len(), 80);
        assert_eq!(out[7].as_ref().unwrap().text, "p7/0+p7/1+p7/2");
    }

    #[test]
    fn worker_panic_propagates_without_killing_the_pool() {
        struct Bomb(UsageMeter);
        impl LanguageModel for Bomb {
            fn name(&self) -> &str {
                "bomb"
            }
            fn complete(&self, prompt: &str) -> LlmResult<Completion> {
                if prompt == "boom" {
                    panic!("simulated model crash");
                }
                Ok(Completion { text: prompt.into(), tokens: TokenCount::default() })
            }
            fn usage_meter(&self) -> &UsageMeter {
                &self.0
            }
        }
        let bomb = Bomb(UsageMeter::new());
        let prompts = vec!["ok".to_string(), "boom".to_string(), "ok2".to_string()];
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            complete_many(&bomb, &prompts, 3);
        }));
        assert!(caught.is_err(), "panic must propagate to the caller");

        // The pool survives and keeps serving.
        let model = SlowEcho::new();
        let out = complete_many(&model, &(0..8).map(|i| format!("q{i}")).collect::<Vec<_>>(), 4);
        assert_eq!(out.len(), 8);
    }
}
