//! Parallel LLM call execution.
//!
//! The paper's future-work list (§6) calls for "asynchronous and parallel
//! hybrid query execution". This module provides the building block: fan a
//! batch of prompts across worker threads against one (thread-safe) model,
//! preserving input order in the output.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::model::{Completion, LanguageModel, LlmResult};

/// Execute `prompts` against `model` on up to `workers` threads.
///
/// Results come back in prompt order. With `workers <= 1` the calls run
/// inline (the sequential baseline for the parallelism ablation).
pub fn complete_many(
    model: &dyn LanguageModel,
    prompts: &[String],
    workers: usize,
) -> Vec<LlmResult<Completion>> {
    if prompts.is_empty() {
        return Vec::new();
    }
    let workers = workers.max(1).min(prompts.len());
    if workers == 1 {
        return prompts.iter().map(|p| model.complete(p)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<LlmResult<Completion>>> =
        (0..prompts.len()).map(|_| None).collect();

    crossbeam::scope(|scope| {
        // Each worker pulls indices from a shared atomic counter
        // (work-stealing by contention) and returns its local results.
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= prompts.len() {
                            break;
                        }
                        local.push((i, model.complete(&prompts[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("LLM worker thread panicked") {
                results[i] = Some(r);
            }
        }
    })
    .expect("crossbeam scope failed");

    results
        .into_iter()
        .map(|r| r.expect("every prompt slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::TokenCount;
    use crate::usage::UsageMeter;
    use std::sync::atomic::AtomicU64;

    struct SlowEcho {
        meter: UsageMeter,
        max_in_flight: AtomicU64,
        in_flight: AtomicU64,
    }

    impl SlowEcho {
        fn new() -> Self {
            SlowEcho {
                meter: UsageMeter::new(),
                max_in_flight: AtomicU64::new(0),
                in_flight: AtomicU64::new(0),
            }
        }
    }

    impl LanguageModel for SlowEcho {
        fn name(&self) -> &str {
            "slow-echo"
        }
        fn complete(&self, prompt: &str) -> LlmResult<Completion> {
            let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            self.max_in_flight.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            let tokens = TokenCount::of(prompt, prompt);
            self.meter.record(tokens);
            Ok(Completion { text: prompt.to_string(), tokens })
        }
        fn usage_meter(&self) -> &UsageMeter {
            &self.meter
        }
    }

    #[test]
    fn preserves_order() {
        let model = SlowEcho::new();
        let prompts: Vec<String> = (0..20).map(|i| format!("p{i}")).collect();
        let out = complete_many(&model, &prompts, 4);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().text, format!("p{i}"));
        }
        assert_eq!(model.usage().calls, 20);
    }

    #[test]
    fn actually_runs_concurrently() {
        let model = SlowEcho::new();
        let prompts: Vec<String> = (0..16).map(|i| format!("p{i}")).collect();
        complete_many(&model, &prompts, 8);
        assert!(
            model.max_in_flight.load(Ordering::SeqCst) >= 2,
            "no concurrency observed"
        );
    }

    #[test]
    fn sequential_path_for_one_worker() {
        let model = SlowEcho::new();
        let prompts: Vec<String> = (0..4).map(|i| format!("p{i}")).collect();
        complete_many(&model, &prompts, 1);
        assert_eq!(model.max_in_flight.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn empty_input() {
        let model = SlowEcho::new();
        assert!(complete_many(&model, &[], 4).is_empty());
    }

    #[test]
    fn workers_capped_to_prompt_count() {
        let model = SlowEcho::new();
        let prompts = vec!["only".to_string()];
        let out = complete_many(&model, &prompts, 64);
        assert_eq!(out.len(), 1);
    }
}
