//! LLM response caching.
//!
//! BlendSQL "caches LLM-generated content as a mapping from input prompts
//! to LLM output answers" (§5.5), which the paper shows is too weak:
//! semantically equivalent prompts miss. This module provides both that
//! exact-prompt cache and the normalized "semantic" variant discussed in
//! §4.3, so the caching ablation can compare policies.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::model::{Completion, LanguageModel, LlmResult};
use crate::usage::UsageReport;

/// Cache key policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// No caching: every call goes to the model.
    None,
    /// Exact prompt-string match (BlendSQL's behaviour).
    Exact,
    /// Case/punctuation/whitespace-normalized prompt match — a cheap
    /// stand-in for the §4.3 "query rewriting to reuse cached data" idea.
    Normalized,
}

/// Statistics for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A prompt→completion cache wrapping a model.
pub struct CachedModel<M> {
    inner: M,
    policy: CachePolicy,
    state: Mutex<CacheState>,
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<String, Completion>,
    stats: CacheStats,
}

impl<M: LanguageModel> CachedModel<M> {
    pub fn new(inner: M, policy: CachePolicy) -> Self {
        CachedModel { inner, policy, state: Mutex::new(CacheState::default()) }
    }

    fn key(&self, prompt: &str) -> String {
        match self.policy {
            CachePolicy::None | CachePolicy::Exact => prompt.to_string(),
            CachePolicy::Normalized => normalize_prompt(prompt),
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.entries.clear();
        st.stats = CacheStats::default();
    }

    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: LanguageModel> LanguageModel for CachedModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str) -> LlmResult<Completion> {
        if self.policy == CachePolicy::None {
            return self.inner.complete(prompt);
        }
        let key = self.key(prompt);
        {
            let mut st = self.state.lock();
            if let Some(hit) = st.entries.get(&key).cloned() {
                st.stats.hits += 1;
                // A cache hit costs no tokens: return the text with zero
                // marginal usage (the inner meter is not touched).
                return Ok(Completion { text: hit.text, tokens: Default::default() });
            }
            st.stats.misses += 1;
        }
        let out = self.inner.complete(prompt)?;
        self.state.lock().entries.insert(key, out.clone());
        Ok(out)
    }

    fn usage_meter(&self) -> &crate::usage::UsageMeter {
        self.inner.usage_meter()
    }

    fn usage(&self) -> UsageReport {
        self.inner.usage()
    }
}

/// Normalize a prompt: lowercase, collapse non-alphanumerics to single
/// spaces. Two phrasings that differ only in casing/punctuation share a
/// cache entry.
pub fn normalize_prompt(p: &str) -> String {
    crate::knowledge::normalize_question(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::TokenCount;
    use crate::usage::UsageMeter;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingModel {
        calls: AtomicU64,
        meter: UsageMeter,
    }

    impl CountingModel {
        fn new() -> Self {
            CountingModel { calls: AtomicU64::new(0), meter: UsageMeter::new() }
        }
    }

    impl LanguageModel for CountingModel {
        fn name(&self) -> &str {
            "counting"
        }
        fn complete(&self, prompt: &str) -> LlmResult<Completion> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let tokens = TokenCount::of(prompt, "ok");
            self.meter.record(tokens);
            Ok(Completion { text: format!("answer to: {prompt}"), tokens })
        }
        fn usage_meter(&self) -> &UsageMeter {
            &self.meter
        }
    }

    #[test]
    fn exact_cache_hits_identical_prompts_only() {
        let m = CachedModel::new(CountingModel::new(), CachePolicy::Exact);
        m.complete("Is the player taller than 180cm?").unwrap();
        m.complete("Is the player taller than 180cm?").unwrap();
        m.complete("is the player TALLER than 180cm???").unwrap();
        assert_eq!(m.inner().calls.load(Ordering::Relaxed), 2);
        assert_eq!(m.stats(), CacheStats { hits: 1, misses: 2 });
    }

    #[test]
    fn normalized_cache_hits_paraphrases_modulo_punctuation() {
        let m = CachedModel::new(CountingModel::new(), CachePolicy::Normalized);
        m.complete("Is the player taller than 180cm?").unwrap();
        m.complete("is the player TALLER than 180cm???").unwrap();
        assert_eq!(m.inner().calls.load(Ordering::Relaxed), 1);
        assert_eq!(m.stats().hits, 1);
    }

    #[test]
    fn none_policy_never_caches() {
        let m = CachedModel::new(CountingModel::new(), CachePolicy::None);
        m.complete("x").unwrap();
        m.complete("x").unwrap();
        assert_eq!(m.inner().calls.load(Ordering::Relaxed), 2);
        assert_eq!(m.stats().lookups(), 0);
    }

    #[test]
    fn cache_hits_cost_zero_tokens() {
        let m = CachedModel::new(CountingModel::new(), CachePolicy::Exact);
        let first = m.complete("pricey prompt").unwrap();
        assert!(first.tokens.input > 0);
        let before = m.usage();
        let second = m.complete("pricey prompt").unwrap();
        assert_eq!(second.tokens, TokenCount::default());
        assert_eq!(m.usage(), before, "no new usage on a hit");
        assert_eq!(second.text, first.text);
    }

    #[test]
    fn clear_resets_everything() {
        let m = CachedModel::new(CountingModel::new(), CachePolicy::Exact);
        m.complete("a").unwrap();
        assert_eq!(m.len(), 1);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.stats(), CacheStats::default());
    }

    #[test]
    fn hit_rate_math() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
