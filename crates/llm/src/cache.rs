//! LLM response caching.
//!
//! BlendSQL "caches LLM-generated content as a mapping from input prompts
//! to LLM output answers" (§5.5), which the paper shows is too weak:
//! semantically equivalent prompts miss. This module provides both that
//! exact-prompt cache and the normalized "semantic" variant discussed in
//! §4.3, so the caching ablation can compare policies.
//!
//! # Key representation
//!
//! The cache does **not** store prompt strings. Prompts routinely run to
//! kilobytes (few-shot demonstrations, value lists), and a String-keyed map
//! both doubles memory and re-hashes the full text on every lookup.
//! Instead each prompt is reduced to a pair of independent 64-bit hashes:
//! the first keys the map, the second is stored in the entry and verified
//! on lookup. A false hit therefore needs a simultaneous collision in two
//! independent 64-bit hashes (~2⁻¹²⁸ per pair); a detected first-hash
//! collision is handled safely as a miss that replaces the entry.
//!
//! Capacity is optional ([`CachedModel::with_capacity`]); when set, the
//! oldest inserted entry is evicted. [`CacheStats`] carries `evictions` and
//! `bytes` gauges so bench reports can show cache pressure.

use std::collections::{HashMap, VecDeque};

use parking_lot::Mutex;
use swan_pool::lockrank;

use crate::model::{Completion, LanguageModel, LlmResult};
use crate::usage::UsageReport;

/// Cache key policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// No caching: every call goes to the model.
    None,
    /// Exact prompt-string match (BlendSQL's behaviour).
    Exact,
    /// Case/punctuation/whitespace-normalized prompt match — a cheap
    /// stand-in for the §4.3 "query rewriting to reuse cached data" idea.
    Normalized,
}

/// Statistics for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries removed to stay under the configured capacity.
    pub evictions: u64,
    /// Completion-text bytes currently held (cache pressure gauge).
    pub bytes: u64,
}

impl CacheStats {
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A prompt→completion cache wrapping a model.
pub struct CachedModel<M> {
    inner: M,
    policy: CachePolicy,
    max_entries: Option<usize>,
    state: Mutex<CacheState>,
}

struct Entry {
    /// Second-hash verification tag (collision safety).
    verify: u64,
    completion: Completion,
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<u64, Entry>,
    /// Insertion order, for capacity eviction.
    order: VecDeque<u64>,
    stats: CacheStats,
}

/// Two independent 64-bit FNV-1a style hashes of `key`, computed in one
/// pass. Differing offset bases and a final avalanche keep them
/// uncorrelated for collision-verification purposes.
fn hash_pair(key: &str) -> (u64, u64) {
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x6c62_272e_07bb_0142;
    for byte in key.bytes() {
        a = (a ^ byte as u64).wrapping_mul(0x100_0000_01b3);
        b = (b ^ byte as u64).wrapping_mul(0x3_f17_99d5_52db_9f2b | 1);
    }
    // Finalize with splitmix-style avalanching so short keys spread.
    let fin = |mut x: u64| {
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    (fin(a), fin(b))
}

impl<M: LanguageModel> CachedModel<M> {
    pub fn new(inner: M, policy: CachePolicy) -> Self {
        CachedModel {
            inner,
            policy,
            max_entries: None,
            state: Mutex::with_rank("llm_cache", lockrank::LLM_CACHE, CacheState::default()),
        }
    }

    /// A cache bounded to `max_entries` entries; the oldest entry is
    /// evicted on overflow (and counted in [`CacheStats::evictions`]).
    pub fn with_capacity(inner: M, policy: CachePolicy, max_entries: usize) -> Self {
        CachedModel {
            inner,
            policy,
            max_entries: Some(max_entries.max(1)),
            state: Mutex::with_rank("llm_cache", lockrank::LLM_CACHE, CacheState::default()),
        }
    }

    fn key_hashes(&self, prompt: &str) -> (u64, u64) {
        match self.policy {
            CachePolicy::None | CachePolicy::Exact => hash_pair(prompt),
            CachePolicy::Normalized => hash_pair(&normalize_prompt(prompt)),
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.entries.clear();
        st.order.clear();
        st.stats = CacheStats::default();
    }

    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl CacheState {
    fn insert(&mut self, h1: u64, verify: u64, completion: Completion, cap: Option<usize>) {
        let text_bytes = completion.text.len() as u64;
        match self.entries.insert(h1, Entry { verify, completion }) {
            Some(old) => {
                // First-hash collision replacement: swap the byte count,
                // keep the insertion-order slot.
                self.stats.bytes = self.stats.bytes - old.completion.text.len() as u64 + text_bytes;
            }
            None => {
                self.stats.bytes += text_bytes;
                self.order.push_back(h1);
            }
        }
        if let Some(cap) = cap {
            while self.entries.len() > cap {
                let Some(oldest) = self.order.pop_front() else { break };
                if let Some(gone) = self.entries.remove(&oldest) {
                    self.stats.bytes -= gone.completion.text.len() as u64;
                    self.stats.evictions += 1;
                }
            }
        }
    }
}

impl<M: LanguageModel> LanguageModel for CachedModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str) -> LlmResult<Completion> {
        if self.policy == CachePolicy::None {
            return self.inner.complete(prompt);
        }
        let (h1, h2) = self.key_hashes(prompt);
        {
            let mut st = self.state.lock();
            let hit = match st.entries.get(&h1) {
                Some(e) if e.verify == h2 => Some(e.completion.text.clone()),
                // Either absent or a detected first-hash collision: both
                // are misses; a collision entry is replaced below.
                _ => None,
            };
            match hit {
                Some(text) => {
                    st.stats.hits += 1;
                    // A cache hit costs no tokens: return the text with
                    // zero marginal usage (the inner meter is not touched).
                    return Ok(Completion { text, tokens: Default::default() });
                }
                None => st.stats.misses += 1,
            }
        }
        let out = self.inner.complete(prompt)?;
        self.state.lock().insert(h1, h2, out.clone(), self.max_entries);
        Ok(out)
    }

    fn usage_meter(&self) -> &crate::usage::UsageMeter {
        self.inner.usage_meter()
    }

    fn usage(&self) -> UsageReport {
        self.inner.usage()
    }
}

/// Normalize a prompt: lowercase, collapse non-alphanumerics to single
/// spaces. Two phrasings that differ only in casing/punctuation share a
/// cache entry.
pub fn normalize_prompt(p: &str) -> String {
    crate::knowledge::normalize_question(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::TokenCount;
    use crate::usage::UsageMeter;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingModel {
        calls: AtomicU64,
        meter: UsageMeter,
    }

    impl CountingModel {
        fn new() -> Self {
            CountingModel { calls: AtomicU64::new(0), meter: UsageMeter::new() }
        }
    }

    impl LanguageModel for CountingModel {
        fn name(&self) -> &str {
            "counting"
        }
        fn complete(&self, prompt: &str) -> LlmResult<Completion> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let tokens = TokenCount::of(prompt, "ok");
            self.meter.record(tokens);
            Ok(Completion { text: format!("answer to: {prompt}"), tokens })
        }
        fn usage_meter(&self) -> &UsageMeter {
            &self.meter
        }
    }

    #[test]
    fn exact_cache_hits_identical_prompts_only() {
        let m = CachedModel::new(CountingModel::new(), CachePolicy::Exact);
        m.complete("Is the player taller than 180cm?").unwrap();
        m.complete("Is the player taller than 180cm?").unwrap();
        m.complete("is the player TALLER than 180cm???").unwrap();
        assert_eq!(m.inner().calls.load(Ordering::Relaxed), 2);
        let stats = m.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }

    #[test]
    fn normalized_cache_hits_paraphrases_modulo_punctuation() {
        let m = CachedModel::new(CountingModel::new(), CachePolicy::Normalized);
        m.complete("Is the player taller than 180cm?").unwrap();
        m.complete("is the player TALLER than 180cm???").unwrap();
        assert_eq!(m.inner().calls.load(Ordering::Relaxed), 1);
        assert_eq!(m.stats().hits, 1);
    }

    #[test]
    fn none_policy_never_caches() {
        let m = CachedModel::new(CountingModel::new(), CachePolicy::None);
        m.complete("x").unwrap();
        m.complete("x").unwrap();
        assert_eq!(m.inner().calls.load(Ordering::Relaxed), 2);
        assert_eq!(m.stats().lookups(), 0);
    }

    #[test]
    fn cache_hits_cost_zero_tokens() {
        let m = CachedModel::new(CountingModel::new(), CachePolicy::Exact);
        let first = m.complete("pricey prompt").unwrap();
        assert!(first.tokens.input > 0);
        let before = m.usage();
        let second = m.complete("pricey prompt").unwrap();
        assert_eq!(second.tokens, TokenCount::default());
        assert_eq!(m.usage(), before, "no new usage on a hit");
        assert_eq!(second.text, first.text);
    }

    #[test]
    fn clear_resets_everything() {
        let m = CachedModel::new(CountingModel::new(), CachePolicy::Exact);
        m.complete("a").unwrap();
        assert_eq!(m.len(), 1);
        assert!(m.stats().bytes > 0);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.stats(), CacheStats::default());
    }

    #[test]
    fn hit_rate_math() {
        let s = CacheStats { hits: 3, misses: 1, ..Default::default() };
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn bytes_gauge_tracks_stored_completions() {
        let m = CachedModel::new(CountingModel::new(), CachePolicy::Exact);
        m.complete("one").unwrap();
        let after_one = m.stats().bytes;
        assert_eq!(after_one, "answer to: one".len() as u64);
        m.complete("two").unwrap();
        assert_eq!(m.stats().bytes, after_one + "answer to: two".len() as u64);
        // Hits don't change the gauge.
        m.complete("one").unwrap();
        assert_eq!(m.stats().bytes, after_one + "answer to: two".len() as u64);
    }

    #[test]
    fn capacity_evicts_oldest_and_counts() {
        let m = CachedModel::with_capacity(CountingModel::new(), CachePolicy::Exact, 2);
        m.complete("p1").unwrap();
        m.complete("p2").unwrap();
        m.complete("p3").unwrap(); // evicts p1
        assert_eq!(m.len(), 2);
        assert_eq!(m.stats().evictions, 1);
        // p1 was evicted: asking again is a miss (a fresh model call).
        m.complete("p1").unwrap();
        assert_eq!(m.inner().calls.load(Ordering::Relaxed), 4);
        // p3 survived the first eviction round and p1's reinsert evicted
        // p2, so p3 still hits.
        let calls_before = m.inner().calls.load(Ordering::Relaxed);
        m.complete("p3").unwrap();
        assert_eq!(m.inner().calls.load(Ordering::Relaxed), calls_before);
        // Bytes stay bounded to what's resident.
        let resident: u64 = ["answer to: p1", "answer to: p3"]
            .iter()
            .map(|s| s.len() as u64)
            .sum();
        assert_eq!(m.stats().bytes, resident);
    }

    #[test]
    fn hash_pair_components_are_independent_enough() {
        let (a1, b1) = hash_pair("prompt A");
        let (a2, b2) = hash_pair("prompt B");
        assert_ne!(a1, a2);
        assert_ne!(b1, b2);
        assert_ne!(a1, b1, "the two hashes must differ for the same key");
        // Deterministic.
        assert_eq!(hash_pair("prompt A"), (a1, b1));
    }

    #[test]
    fn prompts_are_not_stored() {
        // Indirect but meaningful: the bytes gauge counts only completion
        // text, and a kilobyte prompt adds nothing beyond its answer.
        let m = CachedModel::new(CountingModel::new(), CachePolicy::Exact);
        let huge = "x".repeat(4096);
        m.complete(&huge).unwrap();
        assert!(m.stats().bytes < 5000, "no prompt bytes retained");
        assert_eq!(m.stats().bytes, ("answer to: ".len() + 4096) as u64);
    }
}
