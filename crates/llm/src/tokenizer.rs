//! Approximate sub-word tokenizer for cost accounting.
//!
//! The paper reports monetary cost via input/output token counts (§5.1,
//! Table 5). We do not need byte-exact GPT tokenization — only a stable,
//! deterministic count with the right order of magnitude. This tokenizer
//! follows the common "≈4 characters per token, punctuation splits" rule
//! that OpenAI documents as a rule of thumb, implemented as:
//!
//! * runs of alphanumerics become ceil(len/4) tokens (sub-word pieces);
//! * every punctuation/symbol character is its own token;
//! * whitespace separates but does not count.

/// Count tokens in `text`.
pub fn count_tokens(text: &str) -> u64 {
    let mut tokens: u64 = 0;
    let mut run_len: usize = 0;
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            run_len += 1;
        } else {
            if run_len > 0 {
                tokens += run_len.div_ceil(4) as u64;
                run_len = 0;
            }
            if !ch.is_whitespace() {
                tokens += 1;
            }
        }
    }
    if run_len > 0 {
        tokens += run_len.div_ceil(4) as u64;
    }
    tokens
}

/// Token counts for a prompt/response pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenCount {
    pub input: u64,
    pub output: u64,
}

impl TokenCount {
    pub fn of(prompt: &str, response: &str) -> Self {
        TokenCount { input: count_tokens(prompt), output: count_tokens(response) }
    }

    pub fn total(&self) -> u64 {
        self.input + self.output
    }
}

impl std::ops::Add for TokenCount {
    type Output = TokenCount;
    fn add(self, rhs: TokenCount) -> TokenCount {
        TokenCount { input: self.input + rhs.input, output: self.output + rhs.output }
    }
}

impl std::ops::AddAssign for TokenCount {
    fn add_assign(&mut self, rhs: TokenCount) {
        self.input += rhs.input;
        self.output += rhs.output;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_whitespace() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("   \n\t"), 0);
    }

    #[test]
    fn short_words_one_token() {
        assert_eq!(count_tokens("the"), 1);
        assert_eq!(count_tokens("a b c"), 3);
    }

    #[test]
    fn long_words_split_into_pieces() {
        assert_eq!(count_tokens("superhero"), 3, "9 chars -> ceil(9/4) = 3");
        assert_eq!(count_tokens("supercalifragilistic"), 5, "20 chars -> 5");
    }

    #[test]
    fn punctuation_counts_individually() {
        assert_eq!(count_tokens("a,b"), 3);
        assert_eq!(count_tokens("'x'"), 3);
        // `SELECT * FROM t;` = 2 + 1 + 1 + 1 + 1
        assert_eq!(count_tokens("SELECT * FROM t;"), 6);
    }

    #[test]
    fn deterministic() {
        let s = "The quick brown fox jumps over 13 lazy dogs — twice!";
        assert_eq!(count_tokens(s), count_tokens(s));
    }

    #[test]
    fn roughly_four_chars_per_token_on_prose() {
        let prose = "Your task is to fill in the missing values in the target entry \
                     from the superhero database and return a single row";
        let t = count_tokens(prose) as f64;
        let chars = prose.len() as f64;
        let ratio = chars / t;
        assert!((3.0..6.5).contains(&ratio), "chars/token = {ratio}");
    }

    #[test]
    fn token_count_arithmetic() {
        let a = TokenCount { input: 10, output: 2 };
        let b = TokenCount { input: 5, output: 1 };
        assert_eq!((a + b).total(), 18);
        let mut c = a;
        c += b;
        assert_eq!(c.input, 15);
    }
}
