//! The calibrated error channel of the simulated language model.
//!
//! Every generated cell passes through this model, which decides —
//! deterministically, from a seeded hash of the cell's identity — whether
//! the value is factual, and if not, what plausible wrong value comes out.
//! The parameters are calibrated so that the paper's *relative* findings
//! emerge from execution (see DESIGN.md):
//!
//! * GPT-4 Turbo is more factual than GPT-3.5 Turbo at every shot count
//!   (Table 4: 29.3%→48.2% vs 20.9%→42.7%);
//! * factuality rises steeply from 0-shot to 1-shot, then plateaus;
//! * value-selection columns beat free-form columns (§3.3);
//! * popular entities are answered better (§5.3, geographic/SES bias);
//! * the UDF pathway (single-cell prediction) is slightly worse than
//!   HQDL's whole-row prediction (§5.4, chain-of-thought effect);
//! * batching degrades accuracy (§5.4, citing batch-prompting work);
//! * zero-shot prompts suffer output-format errors (§5.3).

use crate::knowledge::AttrClass;
use crate::model::ModelKind;

/// Which solution pathway produced the call (affects accuracy, §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pathway {
    /// HQDL row completion: the model predicts all columns of a row, which
    /// "mirrors a chain-of-thought process" and helps accuracy.
    RowCompletion,
    /// UDF single-value prediction.
    Udf,
}

/// Identity and conditions of one generated cell.
#[derive(Debug, Clone)]
pub struct CellContext<'a> {
    pub model: ModelKind,
    pub db: &'a str,
    pub key: &'a [String],
    pub attribute: &'a str,
    /// Few-shot demonstration count in the prompt.
    pub shots: usize,
    pub class: AttrClass,
    /// Entity popularity in [0,1].
    pub popularity: f64,
    /// Number of keys batched into the call (1 = unbatched).
    pub batch_size: usize,
    pub pathway: Pathway,
    /// The answer is derivable from the key text itself (driver code =
    /// surname prefix, URL contains the entity name, a school named
    /// after its city): models read their prompts, so these cells are
    /// near-always right regardless of the model tier.
    pub key_hint: bool,
}

/// Output-format glitches (zero-shot prompts "sometimes return too few or
/// too many fields and may occasionally return an empty string", §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatError {
    TooFewFields,
    TooManyFields,
    EmptyField,
}

/// The deterministic noise channel.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    pub seed: u64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel { seed: 0x53_57_41_4e } // ASCII "SWAN"
    }
}

/// Base factuality by (model, shots), interpolated between the measured
/// shot counts {0, 1, 3, 5}. Values sit slightly above the paper's Table 4
/// F1 targets because format errors and multi-value partial credit pull
/// the measured average down.
const GPT35_CURVE: [(usize, f64); 4] = [(0, 0.07), (1, 0.23), (3, 0.27), (5, 0.29)];
const GPT4_CURVE: [(usize, f64); 4] = [(0, 0.15), (1, 0.33), (3, 0.33), (5, 0.34)];

impl NoiseModel {
    pub fn new(seed: u64) -> Self {
        NoiseModel { seed }
    }

    /// Probability that the cell comes out factually correct.
    pub fn factuality(&self, ctx: &CellContext<'_>) -> f64 {
        let curve = match ctx.model {
            ModelKind::Gpt35Turbo => &GPT35_CURVE,
            ModelKind::Gpt4Turbo => &GPT4_CURVE,
        };
        let mut p = interpolate(curve, ctx.shots);
        p += match ctx.class {
            AttrClass::ValueSelection => 0.10,
            AttrClass::FreeForm => -0.10,
            AttrClass::MultiValue => -0.04,
        };
        // Strong popularity effect: the paper observes LLMs "can
        // accurately identify schools with the highest standardized
        // testing scores" while fumbling average entities (§5.3).
        p += 0.80 * (ctx.popularity - 0.5);
        // Truly famous entities (top decile) are near-always answered
        // correctly — that is what lets LIMIT-top-k queries "appear
        // correct, masking potential errors in the model's full
        // response" (§5.3).
        if ctx.popularity > 0.85 {
            p += 3.5 * (ctx.popularity - 0.85);
        }
        if ctx.pathway == Pathway::Udf {
            p -= 0.05;
        }
        if ctx.batch_size > 1 {
            p -= 0.015 * (ctx.batch_size as f64 - 1.0).min(10.0);
        }
        if ctx.key_hint {
            // Even derivable answers are not free: output-format slips and
            // partial reads keep hinted cells at ~80%, not 100%.
            p = p.max(0.80);
        }
        p.clamp(0.02, 0.98)
    }

    /// Deterministic draw: is this cell factual?
    pub fn is_factual(&self, ctx: &CellContext<'_>) -> bool {
        let h = self.cell_hash(ctx, 0x01);
        unit(h) < self.factuality(ctx)
    }

    /// Produce the model's (possibly wrong) answer for a single-valued
    /// cell given the ground truth and the candidate pool.
    pub fn emit_single(&self, ctx: &CellContext<'_>, truth: &str, candidates: &[String]) -> String {
        if self.is_factual(ctx) {
            return truth.to_string();
        }
        let h = self.cell_hash(ctx, 0x02);
        // Hallucinate: prefer a different candidate from the pool
        // (plausible confusion), else mangle the truth.
        let wrong: Vec<&String> = candidates.iter().filter(|c| *c != truth).collect();
        if !wrong.is_empty() {
            return wrong[(h % wrong.len() as u64) as usize].clone();
        }
        mangle(truth, h)
    }

    /// Produce the model's answer set for a one-to-many cell: each true
    /// item survives with the cell's factuality probability, and spurious
    /// items sneak in with the complementary rate.
    pub fn emit_many(
        &self,
        ctx: &CellContext<'_>,
        truth: &[String],
        candidates: &[String],
    ) -> Vec<String> {
        let p = self.factuality(ctx);
        let mut out = Vec::with_capacity(truth.len());
        for (i, item) in truth.iter().enumerate() {
            let h = self.cell_hash(ctx, 0x10 + i as u64);
            if unit(h) < p {
                out.push(item.clone());
            }
        }
        // Spurious additions drawn from candidates not in the truth.
        let spurious: Vec<&String> =
            candidates.iter().filter(|c| !truth.contains(c)).collect();
        if !spurious.is_empty() {
            let h = self.cell_hash(ctx, 0x03);
            if unit(h) < (1.0 - p) * 0.5 {
                out.push(spurious[(h >> 8) as usize % spurious.len()].clone());
            }
        }
        // A model virtually never returns a fully empty list; fall back to
        // one hallucinated item.
        if out.is_empty() {
            let pool: Vec<&String> = if spurious.is_empty() {
                candidates.iter().collect()
            } else {
                spurious.clone()
            };
            if let Some(first) = pool.first() {
                out.push((*first).clone());
            }
        }
        out
    }

    /// Should this row/response suffer an output-format glitch?
    pub fn format_error(&self, ctx: &CellContext<'_>) -> Option<FormatError> {
        let rate = if ctx.shots == 0 { 0.06 } else { 0.01 };
        let h = self.cell_hash(ctx, 0x04);
        if unit(h) >= rate {
            return None;
        }
        Some(match h >> 16 & 0x3 {
            0 => FormatError::TooFewFields,
            1 => FormatError::TooManyFields,
            _ => FormatError::EmptyField,
        })
    }

    /// Stable hash of the cell identity + a salt. Uses FNV-1a + a
    /// splitmix64 finalizer; independent of std's hasher so results are
    /// reproducible across Rust versions.
    fn cell_hash(&self, ctx: &CellContext<'_>, salt: u64) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325 ^ self.seed.wrapping_mul(0x9e3779b97f4a7c15);
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= 0x1f;
            h = h.wrapping_mul(0x100000001b3);
        };
        eat(ctx.model.name().as_bytes());
        eat(ctx.db.as_bytes());
        for k in ctx.key {
            eat(k.as_bytes());
        }
        eat(ctx.attribute.as_bytes());
        // Deliberately *not* hashing shots/batch/pathway: the draw models
        // a latent per-cell difficulty, so raising the factuality
        // probability (more shots, smaller batches) monotonically fixes
        // cells instead of rerolling them.
        eat(&salt.to_le_bytes());
        splitmix64(h)
    }
}

/// Map a hash to [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Piecewise-linear interpolation of a (shots, p) curve.
fn interpolate(curve: &[(usize, f64)], shots: usize) -> f64 {
    if shots <= curve[0].0 {
        return curve[0].1;
    }
    for w in curve.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if shots <= x1 {
            let t = (shots - x0) as f64 / (x1 - x0) as f64;
            return y0 + t * (y1 - y0);
        }
    }
    curve[curve.len() - 1].1
}

/// Deterministically perturb a free-form truth value into a plausible
/// wrong answer (guaranteed different from the input).
fn mangle(truth: &str, h: u64) -> String {
    if truth.is_empty() {
        return "unknown".to_string();
    }
    // Numeric truths get plausibly-wrong *numbers* (a height of 183
    // instead of 180), never text garbage that would skew comparisons.
    if let Ok(n) = truth.parse::<i64>() {
        let mut delta = (h % 21) as i64 - 10;
        if delta == 0 {
            delta = 3;
        }
        return (n + delta).to_string();
    }
    let chars: Vec<char> = truth.chars().collect();
    let mode = h % 4;
    let out = match mode {
        // Truncate the tail.
        0 if chars.len() > 3 => chars[..chars.len() - 2].iter().collect::<String>(),
        // Duplicate an interior character.
        1 => {
            let i = (h >> 8) as usize % chars.len();
            let mut s: String = chars[..=i].iter().collect();
            s.push(chars[i]);
            s.extend(&chars[i + 1..]);
            s
        }
        // Swap two adjacent characters.
        2 if chars.len() >= 2 => {
            let i = (h >> 8) as usize % (chars.len() - 1);
            let mut cs = chars.clone();
            cs.swap(i, i + 1);
            cs.into_iter().collect()
        }
        // Append a plausible suffix.
        _ => format!("{truth}a"),
    };
    if out == truth {
        format!("{truth}a")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(model: ModelKind, shots: usize, key: &'a [String]) -> CellContext<'a> {
        CellContext {
            model,
            db: "superhero",
            key,
            attribute: "publisher_name",
            shots,
            class: AttrClass::ValueSelection,
            popularity: 0.5,
            batch_size: 1,
            pathway: Pathway::RowCompletion,
            key_hint: false,
        }
    }

    #[test]
    fn gpt4_beats_gpt35_everywhere() {
        let key = vec!["X".to_string()];
        for shots in [0, 1, 3, 5] {
            let p35 = NoiseModel::default().factuality(&ctx(ModelKind::Gpt35Turbo, shots, &key));
            let p4 = NoiseModel::default().factuality(&ctx(ModelKind::Gpt4Turbo, shots, &key));
            assert!(p4 > p35, "shots={shots}: {p4} <= {p35}");
        }
    }

    #[test]
    fn more_shots_never_hurts() {
        let key = vec!["X".to_string()];
        for model in ModelKind::ALL {
            let mut last = 0.0;
            for shots in [0, 1, 2, 3, 4, 5, 8] {
                let p = NoiseModel::default().factuality(&ctx(model, shots, &key));
                assert!(p >= last, "{model:?} shots={shots}");
                last = p;
            }
        }
    }

    #[test]
    fn value_selection_easier_than_free_form() {
        let key = vec!["X".to_string()];
        let mut c = ctx(ModelKind::Gpt35Turbo, 5, &key);
        let ps = NoiseModel::default().factuality(&c);
        c.class = AttrClass::FreeForm;
        let pf = NoiseModel::default().factuality(&c);
        assert!(ps > pf);
    }

    #[test]
    fn popularity_bias() {
        let key = vec!["X".to_string()];
        let mut c = ctx(ModelKind::Gpt4Turbo, 5, &key);
        c.popularity = 0.95;
        let hi = NoiseModel::default().factuality(&c);
        c.popularity = 0.05;
        let lo = NoiseModel::default().factuality(&c);
        assert!(hi - lo > 0.15, "popularity swing too small: {hi} vs {lo}");
    }

    #[test]
    fn udf_pathway_and_batching_penalties() {
        let key = vec!["X".to_string()];
        let mut c = ctx(ModelKind::Gpt35Turbo, 0, &key);
        let base = NoiseModel::default().factuality(&c);
        c.pathway = Pathway::Udf;
        let udf = NoiseModel::default().factuality(&c);
        assert!(udf < base);
        c.batch_size = 5;
        let batched = NoiseModel::default().factuality(&c);
        assert!(batched < udf);
    }

    #[test]
    fn draws_are_deterministic() {
        let key = vec!["Spider-Man".to_string()];
        let c = ctx(ModelKind::Gpt4Turbo, 5, &key);
        let n = NoiseModel::default();
        assert_eq!(n.is_factual(&c), n.is_factual(&c));
        assert_eq!(
            n.emit_single(&c, "Marvel Comics", &["DC Comics".to_string()]),
            n.emit_single(&c, "Marvel Comics", &["DC Comics".to_string()])
        );
    }

    #[test]
    fn different_seeds_change_draws() {
        let keys: Vec<Vec<String>> = (0..64).map(|i| vec![format!("hero-{i}")]).collect();
        let a = NoiseModel::new(1);
        let b = NoiseModel::new(2);
        let mut differs = false;
        for k in &keys {
            let c = ctx(ModelKind::Gpt35Turbo, 0, k);
            if a.is_factual(&c) != b.is_factual(&c) {
                differs = true;
                break;
            }
        }
        assert!(differs, "seed had no effect across 64 cells");
    }

    #[test]
    fn empirical_rate_tracks_probability() {
        let n = NoiseModel::default();
        let keys: Vec<Vec<String>> = (0..4000).map(|i| vec![format!("e{i}")]).collect();
        let mut hits = 0;
        let mut psum = 0.0;
        for k in &keys {
            let c = ctx(ModelKind::Gpt4Turbo, 5, k);
            psum += n.factuality(&c);
            if n.is_factual(&c) {
                hits += 1;
            }
        }
        let rate = hits as f64 / keys.len() as f64;
        let expect = psum / keys.len() as f64;
        assert!((rate - expect).abs() < 0.03, "rate {rate} vs expected {expect}");
    }

    #[test]
    fn emit_single_wrong_answers_come_from_candidates() {
        let n = NoiseModel::default();
        let cands = vec!["DC Comics".to_string(), "Dark Horse Comics".to_string()];
        let mut wrong_seen = 0;
        for i in 0..500 {
            let key = vec![format!("h{i}")];
            let mut c = ctx(ModelKind::Gpt35Turbo, 0, &key);
            c.class = AttrClass::FreeForm; // lower accuracy to see misses
            let out = n.emit_single(&c, "Marvel Comics", &cands);
            if out != "Marvel Comics" {
                wrong_seen += 1;
                assert!(cands.contains(&out), "hallucination outside candidate pool: {out}");
            }
        }
        assert!(wrong_seen > 100, "expected many wrong answers at 0-shot free-form");
    }

    #[test]
    fn emit_many_gives_partial_lists() {
        let n = NoiseModel::default();
        let truth: Vec<String> =
            (0..10).map(|i| format!("Power {i}")).collect();
        let key = vec!["H".to_string()];
        let mut c = ctx(ModelKind::Gpt35Turbo, 0, &key);
        c.class = AttrClass::MultiValue;
        let out = n.emit_many(&c, &truth, &truth);
        assert!(!out.is_empty());
        assert!(out.len() < truth.len(), "0-shot should drop some items");
    }

    #[test]
    fn format_errors_rarer_with_shots() {
        let n = NoiseModel::default();
        let count = |shots: usize| {
            (0..2000)
                .filter(|i| {
                    let key = vec![format!("k{i}")];
                    let c = ctx(ModelKind::Gpt35Turbo, shots, &key);
                    n.format_error(&c).is_some()
                })
                .count()
        };
        let zero = count(0);
        let five = count(5);
        assert!(zero > five * 2, "0-shot {zero} vs 5-shot {five}");
        assert!(zero > 60 && zero < 250, "≈6% of 2000, got {zero}");
    }

    #[test]
    fn mangle_always_differs() {
        for (i, s) in ["a", "ab", "abcdef", "www.school.edu", ""].iter().enumerate() {
            let m = mangle(s, 0x1234_5678u64.wrapping_mul(i as u64 + 1));
            assert_ne!(&m, s);
        }
    }

    #[test]
    fn interpolation_matches_curve_points() {
        assert!((interpolate(&GPT35_CURVE, 0) - GPT35_CURVE[0].1).abs() < 1e-12);
        assert!((interpolate(&GPT35_CURVE, 5) - GPT35_CURVE[3].1).abs() < 1e-12);
        let mid = interpolate(&GPT35_CURVE, 2);
        assert!(mid > GPT35_CURVE[1].1 && mid < GPT35_CURVE[2].1);
        assert_eq!(interpolate(&GPT35_CURVE, 100), GPT35_CURVE[3].1);
    }
}
