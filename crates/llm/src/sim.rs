//! The simulated language model.
//!
//! [`SimulatedModel`] implements [`LanguageModel`] by parsing the prompt
//! (the same text a real LLM would see), consulting a
//! [`KnowledgeBase`] for ground truth, and passing every produced cell
//! through the calibrated [`NoiseModel`]. Temperature-0 behaviour is
//! modelled by full determinism: identical prompts yield identical
//! completions.

use std::sync::Arc;

use crate::knowledge::{AttrClass, KnowledgeBase, KnownValue};

use crate::model::{Completion, LanguageModel, LlmResult, ModelKind};
use crate::noise::{CellContext, FormatError, NoiseModel, Pathway};
use crate::prompt::{
    render_value_row, RowCompletionPrompt, UdfPrompt,
};
use crate::tokenizer::TokenCount;
use crate::usage::UsageMeter;

/// A language model simulated from a knowledge base + noise channel.
pub struct SimulatedModel {
    kind: ModelKind,
    kb: Arc<dyn KnowledgeBase>,
    noise: NoiseModel,
    meter: UsageMeter,
}

impl SimulatedModel {
    pub fn new(kind: ModelKind, kb: Arc<dyn KnowledgeBase>) -> Self {
        SimulatedModel { kind, kb, noise: NoiseModel::default(), meter: UsageMeter::new() }
    }

    /// Override the noise seed (ablations; default is the shared seed).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    fn answer_row_completion(&self, p: &RowCompletionPrompt) -> String {
        let shots = p.examples.len();
        let popularity = self.kb.popularity(&p.db, &p.target_key);
        let mut fields: Vec<String> = p.target_key.clone();

        for col in p.columns.iter().skip(p.key_len) {
            let prompt_list = p
                .value_lists
                .iter()
                .find(|(c, _)| c.eq_ignore_ascii_case(col))
                .map(|(_, vs)| vs.clone());
            let class = if prompt_list.is_some() {
                // A value list in the prompt makes this value selection,
                // unless the knowledge base says it is one-to-many.
                match self.kb.attribute_class(&p.db, col) {
                    AttrClass::MultiValue => AttrClass::MultiValue,
                    _ => AttrClass::ValueSelection,
                }
            } else {
                self.kb.attribute_class(&p.db, col)
            };
            let ctx = CellContext {
                model: self.kind,
                db: &p.db,
                key: &p.target_key,
                attribute: col,
                shots,
                class,
                popularity,
                batch_size: 1,
                pathway: Pathway::RowCompletion,
                key_hint: false,
            };
            let candidates =
                prompt_list.unwrap_or_else(|| self.kb.candidates(&p.db, col));
            let truth = self.kb.lookup(&p.db, &p.target_key, col);
            fields.push(self.emit_cell(&ctx, truth.as_ref(), &candidates));
        }

        // Row-level format glitches (§5.3).
        let row_ctx = CellContext {
            model: self.kind,
            db: &p.db,
            key: &p.target_key,
            attribute: "__row__",
            shots,
            class: AttrClass::FreeForm,
            popularity,
            batch_size: 1,
            pathway: Pathway::RowCompletion,
            key_hint: false,
        };
        match self.noise.format_error(&row_ctx) {
            Some(FormatError::TooFewFields) => {
                fields.pop();
            }
            Some(FormatError::TooManyFields) => {
                fields.push(String::new());
            }
            Some(FormatError::EmptyField) if fields.len() > p.key_len => {
                let last = fields.len() - 1;
                fields[last] = String::new();
            }
            Some(FormatError::EmptyField) | None => {}
        }
        render_value_row(&fields)
    }

    fn answer_udf(&self, p: &UdfPrompt) -> String {
        let shots = p.examples.len();
        let batch = p.keys.len();
        let attribute = self.kb.resolve_question(&p.db, &p.question);
        let mut lines = Vec::with_capacity(batch);
        for key in &p.keys {
            let line = match &attribute {
                None => "unknown".to_string(),
                Some(attr) => {
                    let class = if p.value_list.is_some() {
                        match self.kb.attribute_class(&p.db, attr) {
                            AttrClass::MultiValue => AttrClass::MultiValue,
                            _ => AttrClass::ValueSelection,
                        }
                    } else {
                        self.kb.attribute_class(&p.db, attr)
                    };
                    let ctx = CellContext {
                        model: self.kind,
                        db: &p.db,
                        key,
                        attribute: attr,
                        shots,
                        class,
                        popularity: self.kb.popularity(&p.db, key),
                        batch_size: batch,
                        pathway: Pathway::Udf,
                        key_hint: false,
                    };
                    let candidates = p
                        .value_list
                        .clone()
                        .unwrap_or_else(|| self.kb.candidates(&p.db, attr));
                    let truth = self.kb.lookup(&p.db, key, attr);
                    self.emit_cell(&ctx, truth.as_ref(), &candidates)
                }
            };
            lines.push(format!("'{}'", line.replace('\'', "''")));
        }
        // Batched responses occasionally lose a line in zero-shot (§5.4:
        // "processing multiple entries in a single call may lead to
        // inaccuracies in the returned data").
        if batch > 1 {
            let first_key = &p.keys[0];
            let ctx = CellContext {
                model: self.kind,
                db: &p.db,
                key: first_key,
                attribute: "__batch__",
                shots,
                class: AttrClass::FreeForm,
                popularity: 0.5,
                batch_size: batch,
                pathway: Pathway::Udf,
                key_hint: false,
            };
            if self.noise.format_error(&ctx) == Some(FormatError::TooFewFields) {
                lines.pop();
            }
        }
        lines.join("\n")
    }

    fn emit_cell(
        &self,
        ctx: &CellContext<'_>,
        truth: Option<&KnownValue>,
        candidates: &[String],
    ) -> String {
        // Key-hint detection: answers literally derivable from the key
        // text (codes, URLs, eponymous cities) are near-always right.
        let mut ctx = ctx.clone();
        if let Some(KnownValue::One(v)) = truth {
            ctx.key_hint = key_hints_at(ctx.key, v);
        }
        let ctx = &ctx;
        match truth {
            Some(KnownValue::One(v)) => self.noise.emit_single(ctx, v, candidates),
            Some(KnownValue::Many(vs)) => {
                self.noise.emit_many(ctx, vs, candidates).join(", ")
            }
            // The entity is outside the model's knowledge: hallucinate
            // from the candidate pool, or admit ignorance.
            None => {
                if candidates.is_empty() {
                    "unknown".to_string()
                } else {
                    self.noise.emit_single(ctx, &candidates[0], candidates)
                }
            }
        }
    }
}

/// Does the key text reveal `truth`? Compares alphanumeric-normalized
/// forms in both directions (key part inside the value covers URLs and
/// emails; value inside the key covers eponymous names).
fn key_hints_at(key: &[String], truth: &str) -> bool {
    fn norm(s: &str) -> String {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect()
    }
    let t = norm(truth);
    if t.len() < 3 {
        return false;
    }
    let joined = norm(&key.join(" "));
    if joined.contains(&t) {
        return true;
    }
    key.iter().any(|k| {
        let kn = norm(k);
        kn.len() >= 4 && t.contains(&kn)
    })
}

impl LanguageModel for SimulatedModel {
    fn name(&self) -> &str {
        self.kind.name()
    }

    fn complete(&self, prompt: &str) -> LlmResult<Completion> {
        let text = if RowCompletionPrompt::matches(prompt) {
            let p = RowCompletionPrompt::parse(prompt)?;
            self.answer_row_completion(&p)
        } else if UdfPrompt::matches(prompt) {
            let p = UdfPrompt::parse(prompt)?;
            self.answer_udf(&p)
        } else {
            // Out-of-format prompt: a real model would still answer; the
            // simulator degrades gracefully.
            "I don't have enough information to answer that.".to_string()
        };
        let tokens = TokenCount::of(prompt, &text);
        self.meter.record(tokens);
        Ok(Completion { text, tokens })
    }

    fn usage_meter(&self) -> &UsageMeter {
        &self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::StaticKnowledge;
    use crate::prompt::{parse_row, parse_udf_response, row_values, RowExample};

    fn kb() -> Arc<StaticKnowledge> {
        let mut kb = StaticKnowledge::new();
        let publishers = vec![
            "Marvel Comics".to_string(),
            "DC Comics".to_string(),
            "Dark Horse Comics".to_string(),
        ];
        for (hero, full, publisher, pop) in [
            ("Spider-Man", "Peter Parker", "Marvel Comics", 0.97),
            ("Batman", "Bruce Wayne", "DC Comics", 0.98),
            ("Hellboy", "Anung Un Rama", "Dark Horse Comics", 0.6),
            ("Obscure Hero", "Jane Doe", "Dark Horse Comics", 0.03),
        ] {
            let key = vec![hero.to_string(), full.to_string()];
            kb.add_fact("superhero", &key, "publisher_name", KnownValue::One(publisher.into()));
            kb.set_popularity("superhero", &key, pop);
        }
        kb.set_class("superhero", "publisher_name", AttrClass::ValueSelection);
        kb.set_candidates("superhero", "publisher_name", publishers);
        kb.add_question("superhero", "Which publisher is the superhero from?", "publisher_name");
        Arc::new(kb)
    }

    fn row_prompt(hero: &str, full: &str, shots: usize) -> String {
        let examples = (0..shots)
            .map(|_| RowExample {
                key: vec!["3-D Man".into(), "Charles Chandler".into()],
                answer: vec![
                    "3-D Man".into(),
                    "Charles Chandler".into(),
                    "Marvel Comics".into(),
                ],
            })
            .collect();
        RowCompletionPrompt {
            db: "superhero".into(),
            columns: vec!["superhero_name".into(), "full_name".into(), "publisher_name".into()],
            key_len: 2,
            value_lists: vec![(
                "publisher_name".into(),
                vec!["Marvel Comics".into(), "DC Comics".into(), "Dark Horse Comics".into()],
            )],
            examples,
            target_key: vec![hero.into(), full.into()],
        }
        .render()
    }

    #[test]
    fn popular_heroes_answered_correctly_with_shots() {
        let m = SimulatedModel::new(ModelKind::Gpt4Turbo, kb());
        let c = m.complete(&row_prompt("Batman", "Bruce Wayne", 5)).unwrap();
        let vals = row_values(&parse_row(&c.text));
        assert_eq!(vals[0], "Batman");
        assert_eq!(vals[2], "DC Comics", "0.98-popularity entity at 5-shot should be right");
    }

    #[test]
    fn temperature_zero_determinism() {
        let m = SimulatedModel::new(ModelKind::Gpt35Turbo, kb());
        let p = row_prompt("Hellboy", "Anung Un Rama", 1);
        assert_eq!(m.complete(&p).unwrap().text, m.complete(&p).unwrap().text);
    }

    #[test]
    fn usage_accumulates() {
        let m = SimulatedModel::new(ModelKind::Gpt35Turbo, kb());
        let p = row_prompt("Batman", "Bruce Wayne", 0);
        m.complete(&p).unwrap();
        m.complete(&p).unwrap();
        let u = m.usage();
        assert_eq!(u.calls, 2);
        assert!(u.input_tokens > u.output_tokens, "prompt much longer than row");
    }

    #[test]
    fn five_shot_prompts_cost_more_input_tokens() {
        let m = SimulatedModel::new(ModelKind::Gpt35Turbo, kb());
        let c0 = m.complete(&row_prompt("Batman", "Bruce Wayne", 0)).unwrap();
        let c5 = m.complete(&row_prompt("Batman", "Bruce Wayne", 5)).unwrap();
        assert!(c5.tokens.input > c0.tokens.input);
    }

    #[test]
    fn udf_prompt_answers_per_key() {
        let m = SimulatedModel::new(ModelKind::Gpt4Turbo, kb());
        let p = UdfPrompt {
            db: "superhero".into(),
            question: "Which publisher is the superhero from?".into(),
            value_list: Some(vec![
                "Marvel Comics".into(),
                "DC Comics".into(),
                "Dark Horse Comics".into(),
            ]),
            examples: vec![],
            keys: vec![
                vec!["Batman".into(), "Bruce Wayne".into()],
                vec!["Spider-Man".into(), "Peter Parker".into()],
            ],
        };
        let c = m.complete(&p.render()).unwrap();
        let vals = parse_udf_response(&c.text);
        // A zero-shot batch may drop a line; at minimum one answer returns
        // and every answer is from the candidate pool.
        assert!(!vals.is_empty() && vals.len() <= 2);
        for v in &vals {
            assert!(
                ["Marvel Comics", "DC Comics", "Dark Horse Comics"].contains(&v.as_str()),
                "{v}"
            );
        }
    }

    #[test]
    fn unresolvable_question_yields_unknown() {
        let m = SimulatedModel::new(ModelKind::Gpt4Turbo, kb());
        let p = UdfPrompt {
            db: "superhero".into(),
            question: "What is the hero's favourite food?".into(),
            value_list: None,
            examples: vec![],
            keys: vec![vec!["Batman".into(), "Bruce Wayne".into()]],
        };
        let c = m.complete(&p.render()).unwrap();
        assert_eq!(parse_udf_response(&c.text), vec!["unknown"]);
    }

    #[test]
    fn off_template_prompt_degrades_gracefully() {
        let m = SimulatedModel::new(ModelKind::Gpt35Turbo, kb());
        let c = m.complete("Tell me a joke about databases.").unwrap();
        assert!(c.text.contains("don't have enough information"));
        assert!(c.tokens.input > 0);
    }

    #[test]
    fn accuracy_improves_with_shots_in_aggregate() {
        // Over many obscure entities, 5-shot must beat 0-shot.
        let mut kb = StaticKnowledge::new();
        let cands: Vec<String> = (0..6).map(|i| format!("Publisher {i}")).collect();
        kb.set_candidates("superhero", "publisher_name", cands.clone());
        kb.set_class("superhero", "publisher_name", AttrClass::ValueSelection);
        for i in 0..300 {
            let key = vec![format!("Hero {i}"), format!("Person {i}")];
            kb.add_fact(
                "superhero",
                &key,
                "publisher_name",
                KnownValue::One(cands[i % cands.len()].clone()),
            );
        }
        let kb = Arc::new(kb);
        let m = SimulatedModel::new(ModelKind::Gpt35Turbo, kb);
        let correct_at = |shots: usize| {
            (0..300)
                .filter(|i| {
                    let p = RowCompletionPrompt {
                        db: "superhero".into(),
                        columns: vec![
                            "superhero_name".into(),
                            "full_name".into(),
                            "publisher_name".into(),
                        ],
                        key_len: 2,
                        value_lists: vec![("publisher_name".into(), cands.clone())],
                        examples: (0..shots)
                            .map(|_| RowExample {
                                key: vec!["E".into(), "F".into()],
                                answer: vec!["E".into(), "F".into(), cands[0].clone()],
                            })
                            .collect(),
                        target_key: vec![format!("Hero {i}"), format!("Person {i}")],
                    };
                    let c = m.complete(&p.render()).unwrap();
                    let vals = row_values(&parse_row(&c.text));
                    vals.get(2).map(String::as_str) == Some(cands[i % cands.len()].as_str())
                })
                .count()
        };
        let zero = correct_at(0);
        let five = correct_at(5);
        assert!(
            five > zero + 20,
            "5-shot ({five}/300) should clearly beat 0-shot ({zero}/300)"
        );
    }
}
