//! The language-model abstraction.
//!
//! Everything downstream (HQDL, hybrid-query UDFs, the benchmarks) talks to
//! a [`LanguageModel`]: text prompt in, text completion out, token usage
//! recorded. The production implementation in this repository is the
//! calibrated simulator in [`crate::sim`]; a real OpenAI-backed client
//! would implement the same trait.

use std::fmt;
use std::sync::Arc;

use crate::tokenizer::TokenCount;
use crate::usage::{UsageMeter, UsageReport};

/// Model families the benchmark evaluates (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Simulates `gpt-3.5-turbo`.
    Gpt35Turbo,
    /// Simulates `gpt-4-turbo`.
    Gpt4Turbo,
}

impl ModelKind {
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Gpt35Turbo => "gpt-3.5-turbo-sim",
            ModelKind::Gpt4Turbo => "gpt-4-turbo-sim",
        }
    }

    /// Display label used in the result tables.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Gpt35Turbo => "GPT-3.5 Turbo",
            ModelKind::Gpt4Turbo => "GPT-4 Turbo",
        }
    }

    pub const ALL: [ModelKind; 2] = [ModelKind::Gpt35Turbo, ModelKind::Gpt4Turbo];
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One completion: the generated text and the tokens it cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    pub text: String,
    pub tokens: TokenCount,
}

/// Errors a model call can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// The prompt did not match any format the model can serve.
    BadPrompt(String),
    /// Transport/internal failure (unused by the simulator, present for
    /// API parity with a real client).
    Backend(String),
    /// The call exceeded its per-call timeout (retryable).
    Timeout,
    /// The endpoint shed load with a rate-limit response (retryable).
    RateLimited,
    /// The circuit breaker refused the call without touching the
    /// endpoint (retrying is pointless until the cooldown elapses).
    CircuitOpen,
    /// The statement's deadline expired or it was cancelled mid-call —
    /// the retry loop must stop and the statement must abort; this is
    /// never degraded to NULL or a stale answer.
    Deadline,
}

impl LlmError {
    /// Would retrying the call (after backoff) plausibly succeed?
    /// Bad prompts are deterministic, breaker rejections fail fast by
    /// design, and a blown deadline forbids further attempts.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            LlmError::Backend(_) | LlmError::Timeout | LlmError::RateLimited
        )
    }
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::BadPrompt(m) => write!(f, "bad prompt: {m}"),
            LlmError::Backend(m) => write!(f, "backend error: {m}"),
            LlmError::Timeout => write!(f, "model call timed out"),
            LlmError::RateLimited => write!(f, "model rate limited"),
            LlmError::CircuitOpen => write!(f, "model circuit breaker open"),
            LlmError::Deadline => write!(f, "model call abandoned: statement deadline exceeded"),
        }
    }
}

impl std::error::Error for LlmError {}

pub type LlmResult<T> = Result<T, LlmError>;

/// A text-in / text-out language model with usage accounting.
///
/// Implementations must be `Send + Sync`: the parallel executor fans
/// prompts out across threads (paper §6's "parallel hybrid query
/// execution").
pub trait LanguageModel: Send + Sync {
    /// Model identifier (e.g. `gpt-4-turbo-sim`).
    fn name(&self) -> &str;

    /// Complete a prompt at temperature 0 (all benchmark calls use
    /// temperature 0, §5.2). Must record usage on the meter.
    fn complete(&self, prompt: &str) -> LlmResult<Completion>;

    /// The usage meter for this model instance.
    fn usage_meter(&self) -> &UsageMeter;

    /// Convenience: current usage totals.
    fn usage(&self) -> UsageReport {
        self.usage_meter().snapshot()
    }
}

/// A shareable model handle.
pub type ModelHandle = Arc<dyn LanguageModel>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::count_tokens;

    /// A trivial echo model used by unit tests elsewhere in the crate.
    pub struct EchoModel {
        meter: UsageMeter,
    }

    impl EchoModel {
        pub fn new() -> Self {
            EchoModel { meter: UsageMeter::new() }
        }
    }

    impl LanguageModel for EchoModel {
        fn name(&self) -> &str {
            "echo"
        }
        fn complete(&self, prompt: &str) -> LlmResult<Completion> {
            let tokens = TokenCount { input: count_tokens(prompt), output: count_tokens(prompt) };
            self.meter.record(tokens);
            Ok(Completion { text: prompt.to_string(), tokens })
        }
        fn usage_meter(&self) -> &UsageMeter {
            &self.meter
        }
    }

    #[test]
    fn model_kind_names() {
        assert_eq!(ModelKind::Gpt35Turbo.name(), "gpt-3.5-turbo-sim");
        assert_eq!(ModelKind::Gpt4Turbo.label(), "GPT-4 Turbo");
        assert_eq!(ModelKind::ALL.len(), 2);
    }

    #[test]
    fn echo_model_records_usage() {
        let m = EchoModel::new();
        m.complete("hello world").unwrap();
        m.complete("again").unwrap();
        let u = m.usage();
        assert_eq!(u.calls, 2);
        assert!(u.input_tokens > 0);
        assert_eq!(u.input_tokens, u.output_tokens);
    }

    #[test]
    fn errors_display() {
        assert_eq!(LlmError::BadPrompt("x".into()).to_string(), "bad prompt: x");
        assert_eq!(LlmError::Timeout.to_string(), "model call timed out");
        assert_eq!(LlmError::RateLimited.to_string(), "model rate limited");
        assert_eq!(LlmError::CircuitOpen.to_string(), "model circuit breaker open");
    }

    #[test]
    fn retryability_classification() {
        assert!(LlmError::Backend("x".into()).is_retryable());
        assert!(LlmError::Timeout.is_retryable());
        assert!(LlmError::RateLimited.is_retryable());
        assert!(!LlmError::BadPrompt("x".into()).is_retryable());
        assert!(!LlmError::CircuitOpen.is_retryable());
        assert!(!LlmError::Deadline.is_retryable());
    }
}
