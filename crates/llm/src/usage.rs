//! Token-usage and monetary-cost accounting.
//!
//! Every [`LanguageModel`](crate::model::LanguageModel) carries a
//! [`UsageMeter`]; pipelines snapshot it before/after a run to report the
//! Table 5 numbers (total input/output tokens) and a dollar estimate using
//! the paper's §5.1 pricing ($3 / $6 per million tokens for GPT-3.5 Turbo).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::tokenizer::TokenCount;

/// Thread-safe accumulator of LLM usage.
#[derive(Debug, Default)]
pub struct UsageMeter {
    input_tokens: AtomicU64,
    output_tokens: AtomicU64,
    calls: AtomicU64,
}

impl UsageMeter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one call's token usage.
    pub fn record(&self, tokens: TokenCount) {
        self.input_tokens.fetch_add(tokens.input, Ordering::Relaxed);
        self.output_tokens.fetch_add(tokens.output, Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Current totals.
    pub fn snapshot(&self) -> UsageReport {
        UsageReport {
            input_tokens: self.input_tokens.load(Ordering::Relaxed),
            output_tokens: self.output_tokens.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.input_tokens.store(0, Ordering::Relaxed);
        self.output_tokens.store(0, Ordering::Relaxed);
        self.calls.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time usage summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UsageReport {
    pub input_tokens: u64,
    pub output_tokens: u64,
    pub calls: u64,
}

impl UsageReport {
    pub fn total_tokens(&self) -> u64 {
        self.input_tokens + self.output_tokens
    }

    /// Usage accumulated between two snapshots (`self` later than `start`).
    pub fn since(&self, start: &UsageReport) -> UsageReport {
        UsageReport {
            input_tokens: self.input_tokens.saturating_sub(start.input_tokens),
            output_tokens: self.output_tokens.saturating_sub(start.output_tokens),
            calls: self.calls.saturating_sub(start.calls),
        }
    }

    /// Dollar cost under a pricing scheme.
    pub fn cost(&self, pricing: &Pricing) -> f64 {
        self.input_tokens as f64 / 1e6 * pricing.usd_per_m_input
            + self.output_tokens as f64 / 1e6 * pricing.usd_per_m_output
    }
}

impl std::ops::Add for UsageReport {
    type Output = UsageReport;
    fn add(self, rhs: UsageReport) -> UsageReport {
        UsageReport {
            input_tokens: self.input_tokens + rhs.input_tokens,
            output_tokens: self.output_tokens + rhs.output_tokens,
            calls: self.calls + rhs.calls,
        }
    }
}

/// Per-million-token pricing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pricing {
    pub usd_per_m_input: f64,
    pub usd_per_m_output: f64,
}

impl Pricing {
    /// GPT-3.5 Turbo pricing quoted in the paper (§5.1).
    pub const GPT35_TURBO: Pricing = Pricing { usd_per_m_input: 3.0, usd_per_m_output: 6.0 };
    /// GPT-4 Turbo public pricing at the time of the paper.
    pub const GPT4_TURBO: Pricing = Pricing { usd_per_m_input: 10.0, usd_per_m_output: 30.0 };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let m = UsageMeter::new();
        m.record(TokenCount { input: 100, output: 20 });
        m.record(TokenCount { input: 50, output: 10 });
        let s = m.snapshot();
        assert_eq!(s.input_tokens, 150);
        assert_eq!(s.output_tokens, 30);
        assert_eq!(s.calls, 2);
        assert_eq!(s.total_tokens(), 180);
    }

    #[test]
    fn since_computes_deltas() {
        let m = UsageMeter::new();
        m.record(TokenCount { input: 10, output: 1 });
        let start = m.snapshot();
        m.record(TokenCount { input: 25, output: 5 });
        let delta = m.snapshot().since(&start);
        assert_eq!(delta, UsageReport { input_tokens: 25, output_tokens: 5, calls: 1 });
    }

    #[test]
    fn reset_zeroes() {
        let m = UsageMeter::new();
        m.record(TokenCount { input: 10, output: 1 });
        m.reset();
        assert_eq!(m.snapshot(), UsageReport::default());
    }

    #[test]
    fn cost_matches_paper_pricing() {
        // 6.3M input + 1.5M output on GPT-3.5 = 6.3*3 + 1.5*6 = $27.90.
        let r = UsageReport { input_tokens: 6_300_000, output_tokens: 1_500_000, calls: 0 };
        let c = r.cost(&Pricing::GPT35_TURBO);
        assert!((c - 27.9).abs() < 1e-9, "{c}");
    }

    #[test]
    fn meter_is_thread_safe() {
        let m = std::sync::Arc::new(UsageMeter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.record(TokenCount { input: 1, output: 1 });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().calls, 8000);
        assert_eq!(m.snapshot().input_tokens, 8000);
    }
}
