//! The model-call transport seam — the LLM boundary's answer to
//! `swan_sqlengine::vfs`.
//!
//! Every attempt the resilience layer makes goes through a
//! [`ModelTransport`]: [`DirectTransport`] is the production
//! passthrough to a [`LanguageModel`], and [`SimTransport`] is a
//! deterministic fault injector that can make any *call index* fail
//! transiently, rate-limit, time out, respond arbitrarily slowly, or
//! return malformed output — the substrate `tests/llm_fault_sim.rs`
//! sweeps, exactly as the crash-sim harness sweeps `SimFs`.
//!
//! A transport attempt takes an optional **budget**: the per-call
//! timeout granted by the caller. A real network client would set its
//! socket/request timeout from it; [`SimTransport`] honours it against
//! the shared virtual [`Clock`] — a simulated response slower than the
//! budget consumes the budget and fails with [`LlmError::Timeout`],
//! just like a socket would.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use swan_pool::{lockrank, ClockHandle};

use crate::model::{Completion, LlmError, LlmResult, ModelHandle};
use crate::tokenizer::TokenCount;

/// One attempt at the model endpoint. Implementations must be cheap to
/// share — the resilience layer holds one per endpoint for the life of
/// the process.
pub trait ModelTransport: Send + Sync {
    /// Endpoint identifier (breaker scope, log label).
    fn endpoint(&self) -> &str;

    /// Perform one attempt. `budget` is the per-attempt timeout the
    /// caller grants (None = unbounded); a transport that cannot finish
    /// inside it must give up with [`LlmError::Timeout`].
    fn call(&self, prompt: &str, budget: Option<Duration>) -> LlmResult<Completion>;
}

/// Production passthrough: the wrapped model answers every attempt.
/// Local models complete synchronously, so the budget has no enforcement
/// point here — a remote-API transport would map it to its request
/// timeout.
pub struct DirectTransport {
    inner: ModelHandle,
}

impl DirectTransport {
    pub fn new(inner: ModelHandle) -> Self {
        DirectTransport { inner }
    }
}

impl ModelTransport for DirectTransport {
    fn endpoint(&self) -> &str {
        self.inner.name()
    }

    fn call(&self, prompt: &str, _budget: Option<Duration>) -> LlmResult<Completion> {
        self.inner.complete(prompt)
    }
}

/// The faults [`SimTransport`] injects, keyed by call index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFault {
    /// A one-off backend failure (HTTP 5xx flavour): this attempt fails,
    /// the next succeeds.
    Transient,
    /// The endpoint sheds load (HTTP 429): fails fast, retryable.
    RateLimited,
    /// The attempt consumes its entire budget producing nothing.
    Timeout,
    /// The response takes this long. Slower than the budget ⇒ the
    /// attempt times out after consuming the budget; otherwise it
    /// succeeds after the delay.
    Slow(Duration),
    /// The call "succeeds" with output in no parseable format — the
    /// transport layer cannot tell; downstream parsers must degrade.
    Malformed,
}

/// The text a [`ModelFault::Malformed`] call returns.
pub const MALFORMED_TEXT: &str = "]]%% GATEWAY ERROR 502: upstream returned garbage %%[[";

/// When a [`ModelFault::Timeout`] attempt has no budget to consume, it
/// hangs this long (virtual time) before giving up.
const UNBOUNDED_HANG: Duration = Duration::from_secs(60);

/// Deterministic fault-injecting [`ModelTransport`]. Wraps an inner
/// model (which answers the attempts the script lets through) and a
/// shared clock (simulated latency advances it, so timeout semantics
/// are exact). Cloning shares the transport — keep one handle for
/// fault control and call counting.
#[derive(Clone)]
pub struct SimTransport {
    inner: ModelHandle,
    clock: ClockHandle,
    state: Arc<SimTransportState>,
}

struct SimTransportState {
    faults: Mutex<HashMap<u64, ModelFault>>,
    calls: AtomicU64,
}

impl SimTransport {
    pub fn new(inner: ModelHandle, clock: ClockHandle) -> Self {
        SimTransport {
            inner,
            clock,
            state: Arc::new(SimTransportState {
                faults: Mutex::with_rank("sim_transport", lockrank::SIM_TRANSPORT, HashMap::new()),
                calls: AtomicU64::new(0),
            }),
        }
    }

    /// Inject `fault` at call index `at` (0-based, in the order attempts
    /// reach the transport), replacing any previously configured faults.
    pub fn set_fault(&self, at: u64, fault: ModelFault) {
        let mut faults = self.state.faults.lock();
        faults.clear();
        faults.insert(at, fault);
    }

    /// Add a fault without clearing existing ones — multi-fault scripts
    /// drive breaker transitions (N consecutive failures, then recovery).
    pub fn add_fault(&self, at: u64, fault: ModelFault) {
        self.state.faults.lock().insert(at, fault);
    }

    /// Inject `fault` at every index in `range`.
    pub fn add_fault_range(&self, range: std::ops::Range<u64>, fault: ModelFault) {
        let mut faults = self.state.faults.lock();
        for at in range {
            faults.insert(at, fault);
        }
    }

    pub fn clear_faults(&self) {
        self.state.faults.lock().clear();
    }

    /// Attempts seen so far (the sweep bound).
    pub fn calls(&self) -> u64 {
        self.state.calls.load(Ordering::SeqCst)
    }
}

impl ModelTransport for SimTransport {
    fn endpoint(&self) -> &str {
        self.inner.name()
    }

    fn call(&self, prompt: &str, budget: Option<Duration>) -> LlmResult<Completion> {
        let idx = self.state.calls.fetch_add(1, Ordering::SeqCst);
        let fault = self.state.faults.lock().get(&idx).copied();
        match fault {
            None => self.inner.complete(prompt),
            Some(ModelFault::Transient) => {
                Err(LlmError::Backend(format!("injected transient failure at call {idx}")))
            }
            Some(ModelFault::RateLimited) => Err(LlmError::RateLimited),
            Some(ModelFault::Timeout) => {
                self.clock.sleep(budget.unwrap_or(UNBOUNDED_HANG));
                Err(LlmError::Timeout)
            }
            Some(ModelFault::Slow(latency)) => match budget {
                Some(budget) if latency > budget => {
                    self.clock.sleep(budget);
                    Err(LlmError::Timeout)
                }
                _ => {
                    self.clock.sleep(latency);
                    self.inner.complete(prompt)
                }
            },
            Some(ModelFault::Malformed) => Ok(Completion {
                text: MALFORMED_TEXT.to_string(),
                tokens: TokenCount::of(prompt, MALFORMED_TEXT),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LanguageModel;
    use crate::usage::UsageMeter;
    use swan_pool::{Clock, SimClock};

    struct Fixed(UsageMeter);

    impl LanguageModel for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn complete(&self, prompt: &str) -> LlmResult<Completion> {
            let tokens = TokenCount::of(prompt, "ok");
            self.0.record(tokens);
            Ok(Completion { text: "ok".into(), tokens })
        }
        fn usage_meter(&self) -> &UsageMeter {
            &self.0
        }
    }

    fn sim() -> (SimTransport, Arc<SimClock>) {
        let clock = SimClock::handle();
        let t = SimTransport::new(Arc::new(Fixed(UsageMeter::new())), clock.clone());
        (t, clock)
    }

    #[test]
    fn clean_calls_pass_through() {
        let (t, _) = sim();
        assert_eq!(t.call("p", None).unwrap().text, "ok");
        assert_eq!(t.calls(), 1);
        assert_eq!(t.endpoint(), "fixed");
    }

    #[test]
    fn faults_hit_exactly_their_index() {
        let (t, _) = sim();
        t.set_fault(1, ModelFault::Transient);
        assert!(t.call("p", None).is_ok());
        assert!(matches!(t.call("p", None), Err(LlmError::Backend(_))));
        assert!(t.call("p", None).is_ok(), "transient means the next call succeeds");
    }

    #[test]
    fn slow_response_inside_budget_succeeds_after_the_delay() {
        let (t, clock) = sim();
        t.set_fault(0, ModelFault::Slow(Duration::from_millis(40)));
        let r = t.call("p", Some(Duration::from_millis(100)));
        assert_eq!(r.unwrap().text, "ok");
        assert_eq!(clock.now(), Duration::from_millis(40));
    }

    #[test]
    fn slow_response_past_budget_times_out_at_the_budget() {
        let (t, clock) = sim();
        t.set_fault(0, ModelFault::Slow(Duration::from_secs(30)));
        let r = t.call("p", Some(Duration::from_millis(100)));
        assert_eq!(r, Err(LlmError::Timeout));
        assert_eq!(clock.now(), Duration::from_millis(100), "consumes the budget, not the latency");
    }

    #[test]
    fn timeout_fault_consumes_the_budget() {
        let (t, clock) = sim();
        t.set_fault(0, ModelFault::Timeout);
        assert_eq!(t.call("p", Some(Duration::from_millis(250))), Err(LlmError::Timeout));
        assert_eq!(clock.now(), Duration::from_millis(250));
    }

    #[test]
    fn malformed_is_an_ok_with_unparseable_text() {
        let (t, _) = sim();
        t.set_fault(0, ModelFault::Malformed);
        let r = t.call("p", None).unwrap();
        assert_eq!(r.text, MALFORMED_TEXT);
    }

    #[test]
    fn fault_script_editing() {
        let (t, _) = sim();
        t.add_fault_range(0..3, ModelFault::RateLimited);
        assert_eq!(t.call("p", None), Err(LlmError::RateLimited));
        t.clear_faults();
        assert!(t.call("p", None).is_ok());
    }
}
