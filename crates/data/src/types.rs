//! Shared benchmark types: domains, curation specs, expansions, questions.

use swan_llm::{AttrClass, KnownValue};
use swan_sqlengine::Database;

/// Benchmark generation configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Row-count multiplier. 1.0 reproduces the Table 1 statistics;
    /// tests use small fractions for speed. Per-table minimums keep tiny
    /// scales structurally valid.
    pub scale: f64,
    /// RNG seed for the synthetic data.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { scale: 1.0, seed: 0xB12D } // "BIRD"
    }
}

impl GenConfig {
    pub fn with_scale(scale: f64) -> Self {
        GenConfig { scale, ..Default::default() }
    }

    /// Scale a paper-level row count, with a floor so small scales still
    /// exercise every code path.
    pub fn rows(&self, paper_rows: usize, min_rows: usize) -> usize {
        ((paper_rows as f64 * self.scale) as usize).max(min_rows)
    }
}

/// One column an expansion asks the LLM to generate.
#[derive(Debug, Clone)]
pub struct GenColumn {
    pub name: String,
    pub class: AttrClass,
    /// Retained distinct values (paper §3.3 "value selection"); `None`
    /// for free-form columns.
    pub value_list: Option<Vec<String>>,
}

impl GenColumn {
    pub fn selection(name: impl Into<String>, values: Vec<String>) -> Self {
        GenColumn { name: name.into(), class: AttrClass::ValueSelection, value_list: Some(values) }
    }

    pub fn free_form(name: impl Into<String>) -> Self {
        GenColumn { name: name.into(), class: AttrClass::FreeForm, value_list: None }
    }

    pub fn multi(name: impl Into<String>, values: Vec<String>) -> Self {
        GenColumn { name: name.into(), class: AttrClass::MultiValue, value_list: Some(values) }
    }
}

/// One LLM-generated table in the expanded schema (paper §4.1): the key
/// attributes come from an existing curated table; the generated columns
/// are the information the curation removed.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// Name of the materialized table, e.g. `llm_superhero`.
    pub table: String,
    /// Curated table supplying the key values.
    pub base_table: String,
    /// Meaningful key columns (§3.4), in order.
    pub key_columns: Vec<String>,
    /// Columns the LLM fills in.
    pub generated: Vec<GenColumn>,
}

impl Expansion {
    /// Full column list of the materialized table (keys first) — the
    /// order used in row-completion prompts.
    pub fn all_columns(&self) -> Vec<String> {
        let mut cols = self.key_columns.clone();
        cols.extend(self.generated.iter().map(|g| g.name.clone()));
        cols
    }
}

/// What curation removed from the original database (paper §3.2).
#[derive(Debug, Clone, Default)]
pub struct CurationSpec {
    /// Columns dropped from surviving tables: (table, column).
    pub dropped_columns: Vec<(String, String)>,
    /// Tables dropped entirely (their column count still counts toward
    /// the Table 1 "Dropped" statistic).
    pub dropped_tables: Vec<(String, usize)>,
    /// The schema expansions that re-introduce the dropped information.
    pub expansions: Vec<Expansion>,
}

impl CurationSpec {
    /// Total dropped-column count as reported in Table 1.
    pub fn dropped_count(&self) -> usize {
        self.dropped_columns.len() + self.dropped_tables.iter().map(|(_, n)| n).sum::<usize>()
    }
}

/// A ground-truth fact: `attribute` of the entity identified by `key`.
#[derive(Debug, Clone)]
pub struct Fact {
    pub key: Vec<String>,
    pub attribute: String,
    pub value: KnownValue,
}

/// A natural-language question one can register for UDF resolution,
/// optionally with paraphrases (the caching ablation uses these).
#[derive(Debug, Clone)]
pub struct QuestionPhrase {
    pub text: String,
    pub attribute: String,
}

/// One beyond-database question with its three query forms (paper §3.5).
#[derive(Debug, Clone)]
pub struct Question {
    /// Stable identifier, e.g. `superhero_q07`.
    pub id: String,
    /// Database key, e.g. `superhero`.
    pub db: String,
    /// The natural-language question.
    pub text: String,
    /// Gold SQL: runs on the *original* database; its result is the
    /// ground-truth answer.
    pub gold_sql: String,
    /// Hybrid SQL for HQDL: runs on the curated database after the
    /// `llm_*` tables are materialized.
    pub hybrid_sql: String,
    /// Hybrid SQL for the UDF solution: runs on the curated database with
    /// `llm_map(...)` calls inline (BlendSQL style).
    pub udf_sql: String,
    /// Whether the gold query has a LIMIT clause (§5.3 discusses how this
    /// skews execution accuracy).
    pub has_limit: bool,
    /// Generated attributes this question depends on.
    pub attributes: Vec<String>,
}

/// Everything about one benchmark domain.
#[derive(Debug, Clone)]
pub struct DomainData {
    /// Database key (`superhero`, `california_schools`, `formula_1`,
    /// `european_football`).
    pub name: String,
    /// Pretty name for tables ("Super Hero").
    pub display_name: String,
    /// The original database — ground truth, target of gold SQL.
    pub original: Database,
    /// The curated database — what a hybrid-querying system gets.
    pub curated: Database,
    pub curation: CurationSpec,
    /// Ground-truth facts for every (entity, generated attribute) pair.
    pub facts: Vec<Fact>,
    /// Entity popularity in [0,1], keyed the same way as facts.
    pub popularity: Vec<(Vec<String>, f64)>,
    /// NL question phrasings mapped to attributes (incl. paraphrases).
    pub phrases: Vec<QuestionPhrase>,
    /// The 30 beyond-database questions.
    pub questions: Vec<Question>,
}

impl DomainData {
    /// Table count of the curated database (Table 1 "Tables").
    pub fn table_count(&self) -> usize {
        self.curated.catalog().len()
    }

    /// Average rows per table of the curated database (Table 1).
    pub fn avg_rows_per_table(&self) -> usize {
        let names = self.curated.catalog().table_names();
        if names.is_empty() {
            return 0;
        }
        let total: usize = names
            .iter()
            .map(|n| self.curated.catalog().get(n).map_or(0, |t| t.len()))
            .sum();
        total / names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_config_scaling_with_floor() {
        let c = GenConfig::with_scale(0.01);
        assert_eq!(c.rows(10_000, 50), 100);
        assert_eq!(c.rows(100, 50), 50, "floor applies");
        let full = GenConfig::default();
        assert_eq!(full.rows(9980, 50), 9980);
    }

    #[test]
    fn expansion_column_order_keys_first() {
        let e = Expansion {
            table: "llm_t".into(),
            base_table: "t".into(),
            key_columns: vec!["a".into(), "b".into()],
            generated: vec![GenColumn::free_form("c")],
        };
        assert_eq!(e.all_columns(), vec!["a", "b", "c"]);
    }

    #[test]
    fn dropped_count_includes_dropped_tables() {
        let spec = CurationSpec {
            dropped_columns: vec![("t".into(), "x".into()), ("t".into(), "y".into())],
            dropped_tables: vec![("p".into(), 2), ("q".into(), 3)],
            expansions: vec![],
        };
        assert_eq!(spec.dropped_count(), 7);
    }

    #[test]
    fn gen_column_constructors() {
        let s = GenColumn::selection("publisher", vec!["M".into()]);
        assert_eq!(s.class, AttrClass::ValueSelection);
        assert!(s.value_list.is_some());
        let f = GenColumn::free_form("url");
        assert_eq!(f.class, AttrClass::FreeForm);
        assert!(f.value_list.is_none());
        let m = GenColumn::multi("powers", vec!["Flight".into()]);
        assert_eq!(m.class, AttrClass::MultiValue);
    }
}
