//! The California Schools benchmark domain (3 tables, ≈9 980 rows/table at
//! scale 1.0, 12 dropped columns — Table 1).
//!
//! Free-form generation stars here (paper §3.3): the school URL "is
//! closely related to the school name and often ends with edu", and the
//! city must be inferred from the street address (the §5.4 example:
//! address `5328 Brann Street` → city `Oakland`). A third of the
//! questions carry a LIMIT clause asking for top schools (§5.3).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swan_sqlengine::{Database, Value};

use crate::builder::*;
use crate::namegen::{self, UniqueNames};
use crate::types::*;

pub const DB_NAME: &str = "california_schools";

pub const EDUCATION_LEVELS: &[&str] = &["Elementary", "Middle", "High", "K-12"];
pub const DOC_TYPES: &[&str] = &["Traditional", "Charter School", "Alternative", "Continuation"];

/// Generate the California Schools domain.
pub fn generate(cfg: &GenConfig) -> DomainData {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5C00_0002);
    let n_schools = cfg.rows(9980, 80);

    let mut original = Database::new();
    create_table(
        &mut original,
        "schools",
        &[
            "cds_code", "school_name", "street", "city", "county", "zip", "phone", "website",
            "charter", "magnet", "district_name", "education_level", "doc_type", "admin_name",
            "admin_email",
        ],
        &["cds_code"],
    );
    create_table(
        &mut original,
        "frpm",
        &["cds_code", "enrollment", "free_meal_count", "frpm_rate"],
        &["cds_code"],
    );
    create_table(
        &mut original,
        "satscores",
        &[
            "cds_code", "num_tst_takr", "avg_scr_read", "avg_scr_math", "avg_scr_write",
            "pct_ge_1500",
        ],
        &["cds_code"],
    );

    let districts: Vec<String> = namegen::COUNTIES
        .iter()
        .map(|c| format!("{c} Unified School District"))
        .collect();

    let mut names = UniqueNames::new();
    let mut school_rows = Vec::with_capacity(n_schools);
    let mut frpm_rows = Vec::with_capacity(n_schools);
    let mut sat_rows = Vec::with_capacity(n_schools);
    let mut facts = Vec::new();
    let mut popularity = Vec::new();

    for i in 0..n_schools {
        // Quality drives SAT scores, frpm rate (inversely) and popularity.
        let quality: f64 = rng.gen();

        let kind = namegen::pick(&mut rng, namegen::SCHOOL_KINDS);
        let city = namegen::pick(&mut rng, namegen::CITIES).to_string();
        // Like real Californian schools, a third are named after their
        // city ("Fresno High School") — the model can read the city off
        // the key, which the key-hint channel rewards.
        let base = if rng.gen_bool(0.35) {
            format!("{city} {kind} School")
        } else {
            format!("{} {kind} School", namegen::pick(&mut rng, namegen::LAST_NAMES))
        };
        let school_name = names.claim(base);
        let street = namegen::street_address(&mut rng);
        let key = vec![school_name.clone(), street.clone()];

        let county_i = rng.gen_range(0..namegen::COUNTIES.len());
        let county = namegen::COUNTIES[county_i].to_string();
        let zip = format!("9{:04}", rng.gen_range(0..10_000));
        let phone = format!("(555) {:03}-{:04}", rng.gen_range(200..999), rng.gen_range(0..10_000));
        let website = format!("www.{}.edu", namegen::slug(&school_name));
        let charter = if rng.gen_bool(0.25) { "Yes" } else { "No" };
        let magnet = if rng.gen_bool(0.15) { "Yes" } else { "No" };
        let district = districts[county_i].clone();
        let level = namegen::pick(&mut rng, EDUCATION_LEVELS).to_string();
        let doc_type = if charter == "Yes" {
            "Charter School".to_string()
        } else {
            DOC_TYPES[rng.gen_range(0..DOC_TYPES.len())].to_string()
        };
        let admin = namegen::person_name(&mut rng);
        let admin_email = format!(
            "{}@{}.edu",
            namegen::slug(&admin),
            namegen::slug(&school_name)
        );

        let cds = format!("{:014}", 10_000_000_000_000u64 + i as u64);
        school_rows.push(vec![
            Value::text(&cds),
            Value::text(&school_name),
            Value::text(&street),
            Value::text(&city),
            Value::text(&county),
            Value::text(&zip),
            Value::text(&phone),
            Value::text(&website),
            Value::text(charter),
            Value::text(magnet),
            Value::text(&district),
            Value::text(&level),
            Value::text(&doc_type),
            Value::text(&admin),
            Value::text(&admin_email),
        ]);

        let enrollment = rng.gen_range(80..3000);
        let free_meals = (enrollment as f64 * (1.0 - quality) * rng.gen_range(0.4..0.95)) as i64;
        frpm_rows.push(vec![
            Value::text(&cds),
            Value::Integer(enrollment),
            Value::Integer(free_meals),
            Value::Real((free_meals as f64 / enrollment as f64 * 1000.0).round() / 1000.0),
        ]);

        let score = |rng: &mut SmallRng, q: f64| -> i64 {
            (350.0 + 300.0 * q + rng.gen_range(-25.0..25.0)).clamp(300.0, 700.0) as i64
        };
        sat_rows.push(vec![
            Value::text(&cds),
            Value::Integer(rng.gen_range(20..800)),
            Value::Integer(score(&mut rng, quality)),
            Value::Integer(score(&mut rng, quality)),
            Value::Integer(score(&mut rng, quality)),
            Value::Real((quality * rng.gen_range(0.3..0.9) * 100.0).round() / 100.0),
        ]);

        facts.push(fact1(&key, "city", &city));
        facts.push(fact1(&key, "county", &county));
        facts.push(fact1(&key, "zip", &zip));
        facts.push(fact1(&key, "phone", &phone));
        facts.push(fact1(&key, "website", &website));
        facts.push(fact1(&key, "charter", charter));
        facts.push(fact1(&key, "magnet", magnet));
        facts.push(fact1(&key, "district_name", &district));
        facts.push(fact1(&key, "education_level", &level));
        facts.push(fact1(&key, "doc_type", &doc_type));
        facts.push(fact1(&key, "admin_name", &admin));
        facts.push(fact1(&key, "admin_email", &admin_email));

        // The paper observes LLMs identify *top* schools accurately
        // (§5.3): popularity tracks academic quality.
        popularity.push((key, popularity_from_percentile(quality)));
    }
    insert_rows(&mut original, "schools", school_rows);
    insert_rows(&mut original, "frpm", frpm_rows);
    insert_rows(&mut original, "satscores", sat_rows);

    let text_list = |items: &[&str]| items.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    let curation = CurationSpec {
        dropped_columns: [
            "city", "county", "zip", "phone", "website", "charter", "magnet", "district_name",
            "education_level", "doc_type", "admin_name", "admin_email",
        ]
        .iter()
        .map(|c| ("schools".to_string(), c.to_string()))
        .collect(),
        dropped_tables: vec![],
        expansions: vec![Expansion {
            table: "llm_schools".into(),
            base_table: "schools".into(),
            key_columns: vec!["school_name".into(), "street".into()],
            generated: vec![
                GenColumn::free_form("city"),
                GenColumn::selection("county", text_list(namegen::COUNTIES)),
                GenColumn::free_form("zip"),
                GenColumn::free_form("phone"),
                GenColumn::free_form("website"),
                GenColumn::selection("charter", vec!["No".into(), "Yes".into()]),
                GenColumn::selection("magnet", vec!["No".into(), "Yes".into()]),
                GenColumn::selection("district_name", districts.clone()),
                GenColumn::selection("education_level", text_list(EDUCATION_LEVELS)),
                GenColumn::selection("doc_type", text_list(DOC_TYPES)),
                GenColumn::free_form("admin_name"),
                GenColumn::free_form("admin_email"),
            ],
        }],
    };
    let curated = apply_curation(&original, &curation);

    // The questions reference a few *prominent* schools (highest quality /
    // popularity): the paper notes LLMs answer top entities accurately.
    let mut ranked: Vec<&(Vec<String>, f64)> = popularity.iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let sample: Vec<Vec<String>> = ranked.iter().take(5).map(|(k, _)| k.clone()).collect();

    DomainData {
        name: DB_NAME.into(),
        display_name: "California Schools".into(),
        original,
        curated,
        curation,
        facts,
        popularity,
        phrases: phrases(),
        questions: questions(&sample),
    }
}

fn phrases() -> Vec<QuestionPhrase> {
    let p = |text: &str, attr: &str| QuestionPhrase { text: text.into(), attribute: attr.into() };
    vec![
        p("Which city is the school located in?", "city"),
        p("Provide the city name based on the address.", "city"),
        p("Which county is the school in?", "county"),
        p("What is the zip code of the school?", "zip"),
        p("What is the school's phone number?", "phone"),
        p("What is the school's website?", "website"),
        p("Is the school a charter school? Answer Yes or No.", "charter"),
        p("Is the school a magnet school? Answer Yes or No.", "magnet"),
        p("Which school district does the school belong to?", "district_name"),
        p("What is the education level of the school?", "education_level"),
        p("What is the document type of the school?", "doc_type"),
        p("What is the school administrator's name?", "admin_name"),
        p("What is the school administrator's email address?", "admin_email"),
    ]
}

const JOIN_LLM: &str =
    "JOIN llm_schools L ON L.school_name = T1.school_name AND L.street = T1.street";

fn udf(question: &str) -> String {
    let question = question.replace('\'', "''");
    format!("llm_map('{question}', T1.school_name, T1.street)")
}

/// The 30 California Schools questions — 10 with LIMIT (one-third, §5.3).
fn questions(sample: &[Vec<String>]) -> Vec<Question> {
    let mut qs = Vec::with_capacity(30);
    let mut push = |text: String,
                    gold: String,
                    hybrid: String,
                    udf_sql: String,
                    has_limit: bool,
                    attrs: &[&str]| {
        let id = format!("california_schools_q{:02}", qs.len() + 1);
        // Tag the llm_map question text with the question id: BlendSQL
        // prompts are authored per question, so their exact-prompt cache
        // cannot reuse generations across questions (paper 5.5).
        let udf_sql = udf_sql.replace("llm_map('", &format!("llm_map('[{id}] "));
        qs.push(Question {
            id,
            db: DB_NAME.into(),
            text,
            gold_sql: gold,
            hybrid_sql: hybrid,
            udf_sql,
            has_limit,
            attributes: attrs.iter().map(|s| s.to_string()).collect(),
        });
    };

    // q01-q03: top-5 by SAT math per county (LIMIT).
    for county in ["Los Angeles", "San Diego", "Alameda"] {
        push(
            format!("List the top 5 schools by average SAT math score in {county} county."),
            format!(
                "SELECT T1.school_name FROM schools T1 \
                 JOIN satscores s ON s.cds_code = T1.cds_code \
                 WHERE T1.county = '{county}' \
                 ORDER BY s.avg_scr_math DESC, T1.school_name LIMIT 5"
            ),
            format!(
                "SELECT T1.school_name FROM schools T1 {JOIN_LLM} \
                 JOIN satscores s ON s.cds_code = T1.cds_code \
                 WHERE L.county = '{county}' \
                 ORDER BY s.avg_scr_math DESC, T1.school_name LIMIT 5"
            ),
            format!(
                "SELECT T1.school_name FROM schools T1 \
                 JOIN satscores s ON s.cds_code = T1.cds_code \
                 WHERE {} = '{county}' \
                 ORDER BY s.avg_scr_math DESC, T1.school_name LIMIT 5",
                udf("Which county is the school in?")
            ),
            true,
            &["county"],
        );
    }

    // q04: top 5 charter schools by SAT reading (LIMIT).
    push(
        "List the top 5 charter schools by average SAT reading score.".into(),
        "SELECT T1.school_name FROM schools T1 \
         JOIN satscores s ON s.cds_code = T1.cds_code WHERE T1.charter = 'Yes' \
         ORDER BY s.avg_scr_read DESC, T1.school_name LIMIT 5"
            .into(),
        format!(
            "SELECT T1.school_name FROM schools T1 {JOIN_LLM} \
             JOIN satscores s ON s.cds_code = T1.cds_code WHERE L.charter = 'Yes' \
             ORDER BY s.avg_scr_read DESC, T1.school_name LIMIT 5"
        ),
        format!(
            "SELECT T1.school_name FROM schools T1 \
             JOIN satscores s ON s.cds_code = T1.cds_code WHERE {} = 'Yes' \
             ORDER BY s.avg_scr_read DESC, T1.school_name LIMIT 5",
            udf("Is the school a charter school? Answer Yes or No.")
        ),
        true,
        &["charter"],
    );

    // q05: 5 magnet schools with the highest enrollment (LIMIT).
    push(
        "List the 5 magnet schools with the highest enrollment.".into(),
        "SELECT T1.school_name FROM schools T1 \
         JOIN frpm f ON f.cds_code = T1.cds_code WHERE T1.magnet = 'Yes' \
         ORDER BY f.enrollment DESC, T1.school_name LIMIT 5"
            .into(),
        format!(
            "SELECT T1.school_name FROM schools T1 {JOIN_LLM} \
             JOIN frpm f ON f.cds_code = T1.cds_code WHERE L.magnet = 'Yes' \
             ORDER BY f.enrollment DESC, T1.school_name LIMIT 5"
        ),
        format!(
            "SELECT T1.school_name FROM schools T1 \
             JOIN frpm f ON f.cds_code = T1.cds_code WHERE {} = 'Yes' \
             ORDER BY f.enrollment DESC, T1.school_name LIMIT 5",
            udf("Is the school a magnet school? Answer Yes or No.")
        ),
        true,
        &["magnet"],
    );

    // q06: top 3 by pct_ge_1500 in a city (LIMIT).
    push(
        "List the top 3 schools in Oakland by the percentage of students scoring 1500 or more."
            .into(),
        "SELECT T1.school_name FROM schools T1 \
         JOIN satscores s ON s.cds_code = T1.cds_code WHERE T1.city = 'Oakland' \
         ORDER BY s.pct_ge_1500 DESC, T1.school_name LIMIT 3"
            .into(),
        format!(
            "SELECT T1.school_name FROM schools T1 {JOIN_LLM} \
             JOIN satscores s ON s.cds_code = T1.cds_code WHERE L.city = 'Oakland' \
             ORDER BY s.pct_ge_1500 DESC, T1.school_name LIMIT 3"
        ),
        format!(
            "SELECT T1.school_name FROM schools T1 \
             JOIN satscores s ON s.cds_code = T1.cds_code WHERE {} = 'Oakland' \
             ORDER BY s.pct_ge_1500 DESC, T1.school_name LIMIT 3",
            udf("Which city is the school located in?")
        ),
        true,
        &["city"],
    );

    // q07: single best charter school by math (LIMIT 1).
    push(
        "Which charter school has the highest average SAT math score?".into(),
        "SELECT T1.school_name FROM schools T1 \
         JOIN satscores s ON s.cds_code = T1.cds_code WHERE T1.charter = 'Yes' \
         ORDER BY s.avg_scr_math DESC, T1.school_name LIMIT 1"
            .into(),
        format!(
            "SELECT T1.school_name FROM schools T1 {JOIN_LLM} \
             JOIN satscores s ON s.cds_code = T1.cds_code WHERE L.charter = 'Yes' \
             ORDER BY s.avg_scr_math DESC, T1.school_name LIMIT 1"
        ),
        format!(
            "SELECT T1.school_name FROM schools T1 \
             JOIN satscores s ON s.cds_code = T1.cds_code WHERE {} = 'Yes' \
             ORDER BY s.avg_scr_math DESC, T1.school_name LIMIT 1",
            udf("Is the school a charter school? Answer Yes or No.")
        ),
        true,
        &["charter"],
    );

    // q08: top 5 by free-meal rate in a county (LIMIT).
    push(
        "List the top 5 schools by free or reduced price meal rate in Fresno county.".into(),
        "SELECT T1.school_name FROM schools T1 \
         JOIN frpm f ON f.cds_code = T1.cds_code WHERE T1.county = 'Fresno' \
         ORDER BY f.frpm_rate DESC, T1.school_name LIMIT 5"
            .into(),
        format!(
            "SELECT T1.school_name FROM schools T1 {JOIN_LLM} \
             JOIN frpm f ON f.cds_code = T1.cds_code WHERE L.county = 'Fresno' \
             ORDER BY f.frpm_rate DESC, T1.school_name LIMIT 5"
        ),
        format!(
            "SELECT T1.school_name FROM schools T1 \
             JOIN frpm f ON f.cds_code = T1.cds_code WHERE {} = 'Fresno' \
             ORDER BY f.frpm_rate DESC, T1.school_name LIMIT 5",
            udf("Which county is the school in?")
        ),
        true,
        &["county"],
    );

    // q09: 3 schools with the most test takers in a city (LIMIT).
    push(
        "List the 3 schools in Fresno with the most SAT test takers.".into(),
        "SELECT T1.school_name FROM schools T1 \
         JOIN satscores s ON s.cds_code = T1.cds_code WHERE T1.city = 'Fresno' \
         ORDER BY s.num_tst_takr DESC, T1.school_name LIMIT 3"
            .into(),
        format!(
            "SELECT T1.school_name FROM schools T1 {JOIN_LLM} \
             JOIN satscores s ON s.cds_code = T1.cds_code WHERE L.city = 'Fresno' \
             ORDER BY s.num_tst_takr DESC, T1.school_name LIMIT 3"
        ),
        format!(
            "SELECT T1.school_name FROM schools T1 \
             JOIN satscores s ON s.cds_code = T1.cds_code WHERE {} = 'Fresno' \
             ORDER BY s.num_tst_takr DESC, T1.school_name LIMIT 3",
            udf("Which city is the school located in?")
        ),
        true,
        &["city"],
    );

    // q10: top 5 by writing score in a district (LIMIT).
    push(
        "List the top 5 schools by average SAT writing score in the Los Angeles Unified School District."
            .into(),
        "SELECT T1.school_name FROM schools T1 \
         JOIN satscores s ON s.cds_code = T1.cds_code \
         WHERE T1.district_name = 'Los Angeles Unified School District' \
         ORDER BY s.avg_scr_write DESC, T1.school_name LIMIT 5"
            .into(),
        format!(
            "SELECT T1.school_name FROM schools T1 {JOIN_LLM} \
             JOIN satscores s ON s.cds_code = T1.cds_code \
             WHERE L.district_name = 'Los Angeles Unified School District' \
             ORDER BY s.avg_scr_write DESC, T1.school_name LIMIT 5"
        ),
        format!(
            "SELECT T1.school_name FROM schools T1 \
             JOIN satscores s ON s.cds_code = T1.cds_code \
             WHERE {} = 'Los Angeles Unified School District' \
             ORDER BY s.avg_scr_write DESC, T1.school_name LIMIT 5",
            udf("Which school district does the school belong to?")
        ),
        true,
        &["district_name"],
    );

    // q11-q13: charter counts per county.
    for county in ["Los Angeles", "Alameda", "Sacramento"] {
        push(
            format!("How many charter schools are in {county} county?"),
            format!(
                "SELECT COUNT(*) FROM schools T1 \
                 WHERE T1.charter = 'Yes' AND T1.county = '{county}'"
            ),
            format!(
                "SELECT COUNT(*) FROM schools T1 {JOIN_LLM} \
                 WHERE L.charter = 'Yes' AND L.county = '{county}'"
            ),
            format!(
                "SELECT COUNT(*) FROM schools T1 \
                 WHERE {} = 'Yes' AND {} = '{county}'",
                udf("Is the school a charter school? Answer Yes or No."),
                udf("Which county is the school in?")
            ),
            false,
            &["charter", "county"],
        );
    }

    // q14-q15: point lookups on prominent schools (website, phone).
    {
        let (n, st) = (sample[0][0].replace('\'', "''"), sample[0][1].replace('\'', "''"));
        push(
            format!("What is the website of {} on {}?", sample[0][0], sample[0][1]),
            format!(
                "SELECT T1.website FROM schools T1 \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'"
            ),
            format!(
                "SELECT L.website FROM schools T1 {JOIN_LLM} \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'"
            ),
            format!(
                "SELECT {} FROM schools T1 \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'",
                udf("What is the school's website?")
            ),
            false,
            &["website"],
        );
        let (n, st) = (sample[1][0].replace('\'', "''"), sample[1][1].replace('\'', "''"));
        push(
            format!("What is the phone number of {} on {}?", sample[1][0], sample[1][1]),
            format!(
                "SELECT T1.phone FROM schools T1 \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'"
            ),
            format!(
                "SELECT L.phone FROM schools T1 {JOIN_LLM} \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'"
            ),
            format!(
                "SELECT {} FROM schools T1 \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'",
                udf("What is the school's phone number?")
            ),
            false,
            &["phone"],
        );
    }

    // q16-q17: district counts.
    for district in ["San Diego Unified School District", "Fresno Unified School District"] {
        push(
            format!("How many schools belong to the {district}?"),
            format!("SELECT COUNT(*) FROM schools T1 WHERE T1.district_name = '{district}'"),
            format!("SELECT COUNT(*) FROM schools T1 {JOIN_LLM} WHERE L.district_name = '{district}'"),
            format!(
                "SELECT COUNT(*) FROM schools T1 WHERE {} = '{district}'",
                udf("Which school district does the school belong to?")
            ),
            false,
            &["district_name"],
        );
    }

    // q18-q19: average reading score per county.
    for county in ["Orange", "Ventura"] {
        push(
            format!("What is the average SAT reading score of schools in {county} county?"),
            format!(
                "SELECT AVG(s.avg_scr_read) FROM schools T1 \
                 JOIN satscores s ON s.cds_code = T1.cds_code WHERE T1.county = '{county}'"
            ),
            format!(
                "SELECT AVG(s.avg_scr_read) FROM schools T1 {JOIN_LLM} \
                 JOIN satscores s ON s.cds_code = T1.cds_code WHERE L.county = '{county}'"
            ),
            format!(
                "SELECT AVG(s.avg_scr_read) FROM schools T1 \
                 JOIN satscores s ON s.cds_code = T1.cds_code WHERE {} = '{county}'",
                udf("Which county is the school in?")
            ),
            false,
            &["county"],
        );
    }

    // q20-q21: magnet counts per city.
    for city in ["Fresno", "San Diego"] {
        push(
            format!("How many magnet schools are in the city of {city}?"),
            format!(
                "SELECT COUNT(*) FROM schools T1 WHERE T1.magnet = 'Yes' AND T1.city = '{city}'"
            ),
            format!(
                "SELECT COUNT(*) FROM schools T1 {JOIN_LLM} \
                 WHERE L.magnet = 'Yes' AND L.city = '{city}'"
            ),
            format!(
                "SELECT COUNT(*) FROM schools T1 WHERE {} = 'Yes' AND {} = '{city}'",
                udf("Is the school a magnet school? Answer Yes or No."),
                udf("Which city is the school located in?")
            ),
            false,
            &["magnet", "city"],
        );
    }

    // q22: city of a prominent school (the paper's street-to-city case).
    {
        let (n, st) = (sample[2][0].replace('\'', "''"), sample[2][1].replace('\'', "''"));
        push(
            format!("In which city is {} on {}?", sample[2][0], sample[2][1]),
            format!(
                "SELECT T1.city FROM schools T1 \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'"
            ),
            format!(
                "SELECT L.city FROM schools T1 {JOIN_LLM} \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'"
            ),
            format!(
                "SELECT {} FROM schools T1 \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'",
                udf("Provide the city name based on the address.")
            ),
            false,
            &["city"],
        );
    }

    // q23-q24: education-level counts.
    for level in ["High", "Elementary"] {
        push(
            format!("How many schools are at the {level} education level?"),
            format!("SELECT COUNT(*) FROM schools T1 WHERE T1.education_level = '{level}'"),
            format!(
                "SELECT COUNT(*) FROM schools T1 {JOIN_LLM} WHERE L.education_level = '{level}'"
            ),
            format!(
                "SELECT COUNT(*) FROM schools T1 WHERE {} = '{level}'",
                udf("What is the education level of the school?")
            ),
            false,
            &["education_level"],
        );
    }

    // q25: county of a prominent school.
    {
        let (n, st) = (sample[3][0].replace('\'', "''"), sample[3][1].replace('\'', "''"));
        push(
            format!("Which county is {} on {} in?", sample[3][0], sample[3][1]),
            format!(
                "SELECT T1.county FROM schools T1 \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'"
            ),
            format!(
                "SELECT L.county FROM schools T1 {JOIN_LLM} \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'"
            ),
            format!(
                "SELECT {} FROM schools T1 \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'",
                udf("Which county is the school in?")
            ),
            false,
            &["county"],
        );
    }

    // q26: charter high schools.
    push(
        "How many charter schools are at the High education level?".into(),
        "SELECT COUNT(*) FROM schools T1 \
         WHERE T1.charter = 'Yes' AND T1.education_level = 'High'"
            .into(),
        format!(
            "SELECT COUNT(*) FROM schools T1 {JOIN_LLM} \
             WHERE L.charter = 'Yes' AND L.education_level = 'High'"
        ),
        format!(
            "SELECT COUNT(*) FROM schools T1 WHERE {} = 'Yes' AND {} = 'High'",
            udf("Is the school a charter school? Answer Yes or No."),
            udf("What is the education level of the school?")
        ),
        false,
        &["charter", "education_level"],
    );

    // q27: schools in a city with >100 test takers.
    push(
        "List the names of schools in Oakland with more than 100 SAT test takers.".into(),
        "SELECT T1.school_name FROM schools T1 \
         JOIN satscores s ON s.cds_code = T1.cds_code \
         WHERE T1.city = 'Oakland' AND s.num_tst_takr > 100"
            .into(),
        format!(
            "SELECT T1.school_name FROM schools T1 {JOIN_LLM} \
             JOIN satscores s ON s.cds_code = T1.cds_code \
             WHERE L.city = 'Oakland' AND s.num_tst_takr > 100"
        ),
        format!(
            "SELECT T1.school_name FROM schools T1 \
             JOIN satscores s ON s.cds_code = T1.cds_code \
             WHERE {} = 'Oakland' AND s.num_tst_takr > 100",
            udf("Which city is the school located in?")
        ),
        false,
        &["city"],
    );

    // q28: average enrollment of magnet schools.
    push(
        "What is the average enrollment of magnet schools?".into(),
        "SELECT AVG(f.enrollment) FROM schools T1 \
         JOIN frpm f ON f.cds_code = T1.cds_code WHERE T1.magnet = 'Yes'"
            .into(),
        format!(
            "SELECT AVG(f.enrollment) FROM schools T1 {JOIN_LLM} \
             JOIN frpm f ON f.cds_code = T1.cds_code WHERE L.magnet = 'Yes'"
        ),
        format!(
            "SELECT AVG(f.enrollment) FROM schools T1 \
             JOIN frpm f ON f.cds_code = T1.cds_code WHERE {} = 'Yes'",
            udf("Is the school a magnet school? Answer Yes or No.")
        ),
        false,
        &["magnet"],
    );

    // q29: zip code of a prominent school.
    {
        let (n, st) = (sample[4][0].replace('\'', "''"), sample[4][1].replace('\'', "''"));
        push(
            format!("What is the zip code of {} on {}?", sample[4][0], sample[4][1]),
            format!(
                "SELECT T1.zip FROM schools T1 \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'"
            ),
            format!(
                "SELECT L.zip FROM schools T1 {JOIN_LLM} \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'"
            ),
            format!(
                "SELECT {} FROM schools T1 \
                 WHERE T1.school_name = '{n}' AND T1.street = '{st}'",
                udf("What is the zip code of the school?")
            ),
            false,
            &["zip"],
        );
    }

    // q30: schools per county.
    push(
        "How many schools does each county have?".into(),
        "SELECT T1.county, COUNT(*) FROM schools T1 GROUP BY T1.county".into(),
        format!("SELECT L.county, COUNT(*) FROM schools T1 {JOIN_LLM} GROUP BY L.county"),
        format!(
            "SELECT {county_call}, COUNT(*) FROM schools T1 GROUP BY {county_call}",
            county_call = udf("Which county is the school in?")
        ),
        false,
        &["county"],
    );

    assert_eq!(qs.len(), 30, "california schools question count");
    qs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DomainData {
        generate(&GenConfig::with_scale(0.02))
    }

    #[test]
    fn table_and_drop_counts_match_paper() {
        let d = small();
        assert_eq!(d.table_count(), 3);
        assert_eq!(d.curation.dropped_count(), 12);
    }

    #[test]
    fn one_third_of_questions_have_limit() {
        let d = small();
        assert_eq!(d.questions.len(), 30);
        assert_eq!(d.questions.iter().filter(|q| q.has_limit).count(), 10);
    }

    #[test]
    fn all_sql_parses_and_gold_runs() {
        let d = small();
        for q in &d.questions {
            for sql in [&q.gold_sql, &q.hybrid_sql, &q.udf_sql] {
                swan_sqlengine::parser::parse_statement(sql)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{sql}", q.id));
            }
            d.original
                .query(&q.gold_sql)
                .unwrap_or_else(|e| panic!("{} gold failed: {e}", q.id));
        }
    }

    #[test]
    fn websites_end_with_edu() {
        let d = small();
        let t = d.original.catalog().get("schools").unwrap();
        let w = t.column_index("website").unwrap();
        for row in &t.rows {
            let site = row[w].render();
            assert!(site.starts_with("www.") && site.ends_with(".edu"), "{site}");
        }
    }

    #[test]
    fn popularity_tracks_sat_quality() {
        let d = small();
        // The most popular school should have a high math score.
        let schools = d.original.catalog().get("schools").unwrap();
        let sats = d.original.catalog().get("satscores").unwrap();
        let (best_key, _) = d
            .popularity
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let name_i = schools.column_index("school_name").unwrap();
        let row_idx = schools
            .rows
            .iter()
            .position(|r| r[name_i].render() == best_key[0])
            .unwrap();
        let math_i = sats.column_index("avg_scr_math").unwrap();
        let best_math = sats.rows[row_idx][math_i].as_f64().unwrap();
        let avg: f64 = sats.rows.iter().map(|r| r[math_i].as_f64().unwrap()).sum::<f64>()
            / sats.len() as f64;
        assert!(best_math > avg, "most popular school ({best_math}) above average ({avg})");
    }

    #[test]
    fn curated_schools_keeps_only_keys() {
        let d = small();
        let t = d.curated.catalog().get("schools").unwrap();
        assert_eq!(t.column_names(), vec!["cds_code", "school_name", "street"]);
    }

    #[test]
    fn facts_cover_all_12_attributes() {
        let d = small();
        let n = d.original.catalog().get("schools").unwrap().len();
        assert_eq!(d.facts.len(), n * 12);
    }
}
