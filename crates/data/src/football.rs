//! The European Football benchmark domain (7 tables, ≈31 828 rows/table
//! at scale 1.0, 12 dropped columns — Table 1).
//!
//! This domain carries the paper's §5.5 cost-analysis scenario: player
//! heights are dropped, so "What is the height of the tallest player?"
//! and "Please list player names who are taller than 180cm" both require
//! the LLM — and a good cache/materialization strategy answers the second
//! from the first's generations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swan_sqlengine::{Database, Value};

use crate::builder::*;
use crate::namegen::{self, UniqueNames};
use crate::types::*;

pub const DB_NAME: &str = "european_football";

pub const FOOT: &[&str] = &["left", "right"];
pub const WORK_RATES: &[&str] = &["low", "medium", "high"];
pub const SPEED_CLASSES: &[&str] = &["Slow", "Balanced", "Fast"];
pub const PRESSURE_CLASSES: &[&str] = &["Deep", "Medium", "High"];
pub const LEAGUE_COUNTRIES: &[&str] = &[
    "England", "Spain", "Germany", "Italy", "France", "Netherlands", "Portugal", "Belgium",
    "Scotland", "Switzerland", "Poland",
];
/// Seasons snapshotted in `player_attributes` / `team_attributes`.
pub const SEASONS: &[&str] = &[
    "2008/2009", "2009/2010", "2010/2011", "2011/2012", "2012/2013", "2013/2014", "2014/2015",
    "2015/2016",
];

#[derive(Debug, Clone)]
struct Sampled {
    players: Vec<String>,
    teams: Vec<String>,
    leagues: Vec<String>,
}

/// Generate the European Football domain.
pub fn generate(cfg: &GenConfig) -> DomainData {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xF00B_0004);

    let n_players = cfg.rows(11_060, 80);
    let n_teams = cfg.rows(300, 12);
    let n_matches = cfg.rows(26_000, 60);
    // Player snapshots chosen so the 7-table average lands near the
    // paper's 31 828 at scale 1.0.
    let snapshots = 16usize;

    let mut original = Database::new();
    create_table(&mut original, "country", &["id", "country_name"], &["id"]);
    create_table(&mut original, "league", &["id", "country_id", "league_name"], &["id"]);
    create_table(&mut original, "team", &["id", "team_long_name", "team_short_name"], &["id"]);
    create_table(
        &mut original,
        "team_attributes",
        &["team_id", "season", "build_up_play_speed_class", "defence_pressure_class"],
        &[],
    );
    create_table(
        &mut original,
        "player",
        &["id", "player_name", "birthday", "height", "weight", "nationality", "birth_city"],
        &["id"],
    );
    create_table(
        &mut original,
        "player_attributes",
        &["player_id", "season", "overall_rating", "potential", "preferred_foot", "attacking_work_rate"],
        &[],
    );
    create_table(
        &mut original,
        "match",
        &["id", "league_id", "season", "home_team_id", "away_team_id", "home_goals", "away_goals", "date"],
        &["id"],
    );

    let mut facts = Vec::new();
    let mut popularity = Vec::new();

    // Countries + leagues (one league per country, like the Bird data).
    let mut country_rows = Vec::new();
    let mut league_rows = Vec::new();
    let mut league_names = Vec::new();
    for (i, c) in LEAGUE_COUNTRIES.iter().enumerate() {
        country_rows.push(vec![Value::Integer(i as i64 + 1), Value::text(*c)]);
        let league = match i % 3 {
            0 => format!("{c} Premier League"),
            1 => format!("{c} First Division"),
            _ => format!("{c} National League"),
        };
        league_rows.push(vec![
            Value::Integer(i as i64 + 1),
            Value::Integer(i as i64 + 1),
            Value::text(&league),
        ]);
        facts.push(fact1(std::slice::from_ref(&league), "country_name", *c));
        league_names.push(league);
    }
    insert_rows(&mut original, "country", country_rows);
    insert_rows(&mut original, "league", league_rows);

    // Teams.
    let mut team_names = UniqueNames::new();
    let mut team_rows = Vec::new();
    let mut ta_rows = Vec::new();
    let mut team_list: Vec<(String, f64)> = Vec::with_capacity(n_teams);
    for i in 0..n_teams {
        let long = team_names.claim(format!(
            "{} {}",
            namegen::pick(&mut rng, namegen::CITIES),
            namegen::pick(&mut rng, namegen::TEAM_WORDS)
        ));
        let short: String = long
            .split(' ')
            .filter_map(|w| w.chars().next())
            .chain(long.chars().skip(1).take(1))
            .take(3)
            .collect::<String>()
            .to_ascii_uppercase();
        let speed = namegen::pick(&mut rng, SPEED_CLASSES).to_string();
        let pressure = namegen::pick(&mut rng, PRESSURE_CLASSES).to_string();
        team_rows.push(vec![
            Value::Integer(i as i64 + 1),
            Value::text(&long),
            Value::text(&short),
        ]);
        for season in SEASONS.iter().take(5) {
            ta_rows.push(vec![
                Value::Integer(i as i64 + 1),
                Value::text(*season),
                Value::text(&speed),
                Value::text(&pressure),
            ]);
        }
        let key = vec![long.clone()];
        facts.push(fact1(&key, "team_short_name", &short));
        facts.push(fact1(&key, "build_up_play_speed_class", &speed));
        facts.push(fact1(&key, "defence_pressure_class", &pressure));
        let prominence: f64 = rng.gen();
        popularity.push((key, popularity_from_percentile(prominence)));
        team_list.push((long, prominence));
    }
    insert_rows(&mut original, "team", team_rows);
    insert_rows(&mut original, "team_attributes", ta_rows);

    // Players.
    let mut player_names = UniqueNames::new();
    let mut player_rows = Vec::new();
    let mut pa_rows = Vec::new();
    let mut player_list: Vec<(String, f64)> = Vec::with_capacity(n_players);
    for i in 0..n_players {
        let name = player_names.claim(namegen::person_name(&mut rng));
        let height = rng.gen_range(158..=202);
        let weight = rng.gen_range(58..=98);
        let birthday = format!(
            "{}-{:02}-{:02}",
            rng.gen_range(1975..1998),
            rng.gen_range(1..=12),
            rng.gen_range(1..=28)
        );
        let nationality = namegen::pick(&mut rng, namegen::NATIONALITIES).to_string();
        let birth_city = namegen::pick(&mut rng, namegen::CITIES).to_string();
        let foot = if rng.gen_bool(0.25) { "left" } else { "right" };
        let work_rate = namegen::pick(&mut rng, WORK_RATES).to_string();
        // Ability drives ratings and popularity.
        let ability: f64 = rng.gen();
        player_rows.push(vec![
            Value::Integer(i as i64 + 1),
            Value::text(&name),
            Value::text(&birthday),
            Value::Integer(height),
            Value::Integer(weight),
            Value::text(&nationality),
            Value::text(&birth_city),
        ]);
        for (s, season) in SEASONS.iter().cycle().take(snapshots).enumerate() {
            let rating = (45.0 + 50.0 * ability + rng.gen_range(-4.0..4.0)).clamp(40.0, 99.0) as i64;
            let potential = (rating + rng.gen_range(0i64..8)).min(99);
            let _ = s;
            pa_rows.push(vec![
                Value::Integer(i as i64 + 1),
                Value::text(*season),
                Value::Integer(rating),
                Value::Integer(potential),
                Value::text(foot),
                Value::text(&work_rate),
            ]);
        }
        let key = vec![name.clone()];
        facts.push(fact1(&key, "height", height.to_string()));
        facts.push(fact1(&key, "weight", weight.to_string()));
        facts.push(fact1(&key, "birthday", &birthday));
        facts.push(fact1(&key, "nationality", &nationality));
        facts.push(fact1(&key, "birth_city", &birth_city));
        facts.push(fact1(&key, "preferred_foot", foot));
        facts.push(fact1(&key, "attacking_work_rate", &work_rate));
        popularity.push((key, popularity_from_percentile(ability)));
        player_list.push((name, ability));
    }
    insert_rows(&mut original, "player", player_rows);
    insert_rows(&mut original, "player_attributes", pa_rows);

    // Matches.
    let mut match_rows = Vec::with_capacity(n_matches);
    for i in 0..n_matches {
        let league = rng.gen_range(0..LEAGUE_COUNTRIES.len()) as i64 + 1;
        let home = rng.gen_range(0..n_teams) as i64 + 1;
        let mut away = rng.gen_range(0..n_teams) as i64 + 1;
        if away == home {
            away = (away % n_teams as i64) + 1;
        }
        let season = namegen::pick(&mut rng, SEASONS).to_string();
        let year = 2008 + (i % 8) as i64;
        match_rows.push(vec![
            Value::Integer(i as i64 + 1),
            Value::Integer(league),
            Value::text(&season),
            Value::Integer(home),
            Value::Integer(away),
            Value::Integer(rng.gen_range(0..6)),
            Value::Integer(rng.gen_range(0..6)),
            Value::text(format!("{year}-{:02}-{:02}", rng.gen_range(1..=12), rng.gen_range(1..=28))),
        ]);
    }
    insert_rows(&mut original, "match", match_rows);

    let text_list = |items: &[&str]| items.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    let curation = CurationSpec {
        dropped_columns: vec![
            ("player".into(), "height".into()),
            ("player".into(), "weight".into()),
            ("player".into(), "birthday".into()),
            ("player".into(), "nationality".into()),
            ("player".into(), "birth_city".into()),
            ("player_attributes".into(), "preferred_foot".into()),
            ("player_attributes".into(), "attacking_work_rate".into()),
            ("team".into(), "team_short_name".into()),
            ("team_attributes".into(), "build_up_play_speed_class".into()),
            ("team_attributes".into(), "defence_pressure_class".into()),
        ],
        dropped_tables: vec![("country".into(), 2)],
        expansions: vec![
            Expansion {
                table: "llm_player".into(),
                base_table: "player".into(),
                key_columns: vec!["player_name".into()],
                generated: vec![
                    GenColumn::free_form("height"),
                    GenColumn::free_form("weight"),
                    GenColumn::free_form("birthday"),
                    GenColumn::selection("nationality", text_list(namegen::NATIONALITIES)),
                    GenColumn::free_form("birth_city"),
                    GenColumn::selection("preferred_foot", text_list(FOOT)),
                    GenColumn::selection("attacking_work_rate", text_list(WORK_RATES)),
                ],
            },
            Expansion {
                table: "llm_team".into(),
                base_table: "team".into(),
                key_columns: vec!["team_long_name".into()],
                generated: vec![
                    GenColumn::free_form("team_short_name"),
                    GenColumn::selection("build_up_play_speed_class", text_list(SPEED_CLASSES)),
                    GenColumn::selection("defence_pressure_class", text_list(PRESSURE_CLASSES)),
                ],
            },
            Expansion {
                table: "llm_league".into(),
                base_table: "league".into(),
                key_columns: vec!["league_name".into()],
                generated: vec![GenColumn::selection(
                    "country_name",
                    text_list(LEAGUE_COUNTRIES),
                )],
            },
        ],
    };
    let curated = apply_curation(&original, &curation);

    // Questions reference *prominent* entities, as Bird's do: famous
    // players and well-known clubs (the paper's popularity-bias analysis
    // presumes question entities are largely within the model's ken).
    let mut player_ranked = player_list;
    player_ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let mut team_ranked = team_list;
    team_ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    // Spread across the prominence range: superstar questions are easy,
    // journeyman questions are not (paper 5.3's bias analysis).
    let n = player_ranked.len();
    let picks = [0, n / 10, n / 5, n / 3, n / 2, 2 * n / 3];
    let sampled = Sampled {
        players: picks.iter().map(|&i| player_ranked[i.min(n - 1)].0.clone()).collect(),
        teams: team_ranked.into_iter().take(4).map(|(n, _)| n).collect(),
        leagues: league_names.into_iter().take(2).collect(),
    };

    DomainData {
        name: DB_NAME.into(),
        display_name: "European Football".into(),
        original,
        curated,
        curation,
        facts,
        popularity,
        phrases: phrases(),
        questions: questions(&sampled),
    }
}

fn phrases() -> Vec<QuestionPhrase> {
    let p = |text: &str, attr: &str| QuestionPhrase { text: text.into(), attribute: attr.into() };
    vec![
        p("What is the height of the player in centimeters?", "height"),
        p("How tall is the player in centimeters?", "height"),
        p("What is the weight of the player in kilograms?", "weight"),
        p("What is the birthday of the player?", "birthday"),
        p("What is the nationality of the player?", "nationality"),
        p("In which city was the player born?", "birth_city"),
        p("What is the preferred foot of the player?", "preferred_foot"),
        p("What is the attacking work rate of the player?", "attacking_work_rate"),
        p("What is the short name of the team?", "team_short_name"),
        p("What is the build up play speed class of the team?", "build_up_play_speed_class"),
        p("What is the defence pressure class of the team?", "defence_pressure_class"),
        p("In which country is the league played?", "country_name"),
    ]
}

const JOIN_PLAYER: &str = "JOIN llm_player L ON L.player_name = T1.player_name";
const JOIN_TEAM: &str = "JOIN llm_team L ON L.team_long_name = T1.team_long_name";

fn height_udf() -> String {
    "llm_map('What is the height of the player in centimeters?', T1.player_name)".to_string()
}

fn questions(s: &Sampled) -> Vec<Question> {
    let mut qs = Vec::with_capacity(30);
    let mut push = |text: String,
                    gold: String,
                    hybrid: String,
                    udf_sql: String,
                    has_limit: bool,
                    attrs: &[&str]| {
        let id = format!("european_football_q{:02}", qs.len() + 1);
        // Tag the llm_map question text with the question id: BlendSQL
        // prompts are authored per question, so their exact-prompt cache
        // cannot reuse generations across questions (paper 5.5).
        let udf_sql = udf_sql.replace("llm_map('", &format!("llm_map('[{id}] "));
        qs.push(Question {
            id,
            db: DB_NAME.into(),
            text,
            gold_sql: gold,
            hybrid_sql: hybrid,
            udf_sql,
            has_limit,
            attributes: attrs.iter().map(|x| x.to_string()).collect(),
        });
    };
    let esc = |x: &str| x.replace('\'', "''");

    // q01: the §5.5 example — height of the tallest player.
    push(
        "What is the height of the tallest player?".into(),
        "SELECT MAX(T1.height) FROM player T1".into(),
        format!("SELECT MAX(L.height) FROM player T1 {JOIN_PLAYER}"),
        format!("SELECT MAX({}) FROM player T1", height_udf()),
        false,
        &["height"],
    );

    // q02: the §5.5 reuse partner — players taller than 180cm.
    push(
        "Please list the player names who are taller than 180cm.".into(),
        "SELECT T1.player_name FROM player T1 WHERE T1.height > 180".into(),
        format!("SELECT T1.player_name FROM player T1 {JOIN_PLAYER} WHERE L.height > 180"),
        format!(
            "SELECT T1.player_name FROM player T1 WHERE {} > 180",
            height_udf()
        ),
        false,
        &["height"],
    );

    // q03-q04: more height thresholds.
    for (cmp, h) in [("<", 165), (">", 190)] {
        push(
            format!(
                "List the player names who are {} than {h}cm.",
                if cmp == "<" { "shorter" } else { "taller" }
            ),
            format!("SELECT T1.player_name FROM player T1 WHERE T1.height {cmp} {h}"),
            format!(
                "SELECT T1.player_name FROM player T1 {JOIN_PLAYER} WHERE L.height {cmp} {h}"
            ),
            format!(
                "SELECT T1.player_name FROM player T1 WHERE {} {cmp} {h}",
                height_udf()
            ),
            false,
            &["height"],
        );
    }

    // q05-q06: weight thresholds.
    for w in [80, 90] {
        push(
            format!("How many players weigh more than {w}kg?"),
            format!("SELECT COUNT(*) FROM player T1 WHERE T1.weight > {w}"),
            format!("SELECT COUNT(*) FROM player T1 {JOIN_PLAYER} WHERE L.weight > {w}"),
            format!(
                "SELECT COUNT(*) FROM player T1 \
                 WHERE llm_map('What is the weight of the player in kilograms?', T1.player_name) > {w}"
            ),
            false,
            &["weight"],
        );
    }

    // q07-q08: preferred foot point lookups.
    for player in s.players.iter().take(2) {
        let p = esc(player);
        push(
            format!("What is the preferred foot of {player}?"),
            format!(
                "SELECT DISTINCT pa.preferred_foot FROM player_attributes pa \
                 JOIN player T1 ON T1.id = pa.player_id WHERE T1.player_name = '{p}'"
            ),
            format!(
                "SELECT L.preferred_foot FROM player T1 {JOIN_PLAYER} \
                 WHERE T1.player_name = '{p}'"
            ),
            format!(
                "SELECT llm_map('What is the preferred foot of the player?', T1.player_name) \
                 FROM player T1 WHERE T1.player_name = '{p}'"
            ),
            false,
            &["preferred_foot"],
        );
    }

    // q09-q10: foot + rating combos.
    for (foot, rating) in [("left", 85), ("right", 90)] {
        push(
            format!(
                "How many {foot}-footed players have an overall rating above {rating} in the 2015/2016 season?"
            ),
            format!(
                "SELECT COUNT(DISTINCT pa.player_id) FROM player_attributes pa \
                 WHERE pa.preferred_foot = '{foot}' AND pa.overall_rating > {rating} \
                 AND pa.season = '2015/2016'"
            ),
            format!(
                "SELECT COUNT(DISTINCT T1.id) FROM player T1 {JOIN_PLAYER} \
                 JOIN player_attributes pa ON pa.player_id = T1.id \
                 WHERE L.preferred_foot = '{foot}' AND pa.overall_rating > {rating} \
                 AND pa.season = '2015/2016'"
            ),
            format!(
                "SELECT COUNT(DISTINCT T1.id) FROM player T1 \
                 JOIN player_attributes pa ON pa.player_id = T1.id \
                 WHERE llm_map('What is the preferred foot of the player?', T1.player_name) = '{foot}' \
                 AND pa.overall_rating > {rating} AND pa.season = '2015/2016'"
            ),
            false,
            &["preferred_foot"],
        );
    }

    // q11-q12: team short names.
    for team in s.teams.iter().take(2) {
        let t = esc(team);
        push(
            format!("What is the short name of the team {team}?"),
            format!("SELECT T1.team_short_name FROM team T1 WHERE T1.team_long_name = '{t}'"),
            format!(
                "SELECT L.team_short_name FROM team T1 {JOIN_TEAM} \
                 WHERE T1.team_long_name = '{t}'"
            ),
            format!(
                "SELECT llm_map('What is the short name of the team?', T1.team_long_name) \
                 FROM team T1 WHERE T1.team_long_name = '{t}'"
            ),
            false,
            &["team_short_name"],
        );
    }

    // q13-q14: build-up speed classes.
    for speed in ["Fast", "Slow"] {
        push(
            format!("List the long names of teams with a {speed} build up play speed."),
            format!(
                "SELECT DISTINCT T1.team_long_name FROM team T1 \
                 JOIN team_attributes ta ON ta.team_id = T1.id \
                 WHERE ta.build_up_play_speed_class = '{speed}'"
            ),
            format!(
                "SELECT T1.team_long_name FROM team T1 {JOIN_TEAM} \
                 WHERE L.build_up_play_speed_class = '{speed}'"
            ),
            format!(
                "SELECT T1.team_long_name FROM team T1 \
                 WHERE llm_map('What is the build up play speed class of the team?', T1.team_long_name) = '{speed}'"
            ),
            false,
            &["build_up_play_speed_class"],
        );
    }

    // q15: defence pressure.
    push(
        "List the long names of teams that defend with High pressure.".into(),
        "SELECT DISTINCT T1.team_long_name FROM team T1 \
         JOIN team_attributes ta ON ta.team_id = T1.id \
         WHERE ta.defence_pressure_class = 'High'"
            .into(),
        format!(
            "SELECT T1.team_long_name FROM team T1 {JOIN_TEAM} \
             WHERE L.defence_pressure_class = 'High'"
        ),
        "SELECT T1.team_long_name FROM team T1 \
         WHERE llm_map('What is the defence pressure class of the team?', T1.team_long_name) = 'High'"
            .into(),
        false,
        &["defence_pressure_class"],
    );

    // q16-q17: league countries.
    for league in s.leagues.iter().take(2) {
        let l = esc(league);
        push(
            format!("In which country is the league {league} played?"),
            format!(
                "SELECT c.country_name FROM league T1 \
                 JOIN country c ON T1.country_id = c.id WHERE T1.league_name = '{l}'"
            ),
            format!(
                "SELECT LL.country_name FROM league T1 \
                 JOIN llm_league LL ON LL.league_name = T1.league_name \
                 WHERE T1.league_name = '{l}'"
            ),
            format!(
                "SELECT llm_map('In which country is the league played?', T1.league_name) \
                 FROM league T1 WHERE T1.league_name = '{l}'"
            ),
            false,
            &["country_name"],
        );
    }

    // q18: leagues per country.
    push(
        "How many leagues are played in England?".into(),
        "SELECT COUNT(*) FROM league T1 \
         JOIN country c ON T1.country_id = c.id WHERE c.country_name = 'England'"
            .into(),
        "SELECT COUNT(*) FROM league T1 \
         JOIN llm_league LL ON LL.league_name = T1.league_name \
         WHERE LL.country_name = 'England'"
            .into(),
        "SELECT COUNT(*) FROM league T1 \
         WHERE llm_map('In which country is the league played?', T1.league_name) = 'England'"
            .into(),
        false,
        &["country_name"],
    );

    // q19-q20: average height of top-rated players.
    for rating in [85, 90] {
        push(
            format!("What is the average height of players with an overall rating above {rating}?"),
            format!(
                "SELECT AVG(T1.height) FROM player T1 WHERE T1.id IN \
                 (SELECT pa.player_id FROM player_attributes pa \
                  WHERE pa.overall_rating > {rating} AND pa.season = '2015/2016')"
            ),
            format!(
                "SELECT AVG(L.height) FROM player T1 {JOIN_PLAYER} WHERE T1.id IN \
                 (SELECT pa.player_id FROM player_attributes pa \
                  WHERE pa.overall_rating > {rating} AND pa.season = '2015/2016')"
            ),
            format!(
                "SELECT AVG({}) FROM player T1 WHERE T1.id IN \
                 (SELECT pa.player_id FROM player_attributes pa \
                  WHERE pa.overall_rating > {rating} AND pa.season = '2015/2016')",
                height_udf()
            ),
            false,
            &["height"],
        );
    }

    // q21-q22: birthday + rating combos.
    for year in [1985, 1990] {
        push(
            format!("List players born before {year} with an overall rating above 88 in the 2015/2016 season."),
            format!(
                "SELECT T1.player_name FROM player T1 \
                 WHERE T1.birthday < '{year}-01-01' AND T1.id IN \
                 (SELECT pa.player_id FROM player_attributes pa \
                  WHERE pa.overall_rating > 88 AND pa.season = '2015/2016')"
            ),
            format!(
                "SELECT T1.player_name FROM player T1 {JOIN_PLAYER} \
                 WHERE L.birthday < '{year}-01-01' AND T1.id IN \
                 (SELECT pa.player_id FROM player_attributes pa \
                  WHERE pa.overall_rating > 88 AND pa.season = '2015/2016')"
            ),
            format!(
                "SELECT T1.player_name FROM player T1 \
                 WHERE llm_map('What is the birthday of the player?', T1.player_name) < '{year}-01-01' \
                 AND T1.id IN \
                 (SELECT pa.player_id FROM player_attributes pa \
                  WHERE pa.overall_rating > 88 AND pa.season = '2015/2016')"
            ),
            false,
            &["birthday"],
        );
    }

    // q23-q24: nationality point lookups.
    for player in s.players.iter().skip(2).take(2) {
        let p = esc(player);
        push(
            format!("What is the nationality of the player {player}?"),
            format!("SELECT T1.nationality FROM player T1 WHERE T1.player_name = '{p}'"),
            format!(
                "SELECT L.nationality FROM player T1 {JOIN_PLAYER} WHERE T1.player_name = '{p}'"
            ),
            format!(
                "SELECT llm_map('What is the nationality of the player?', T1.player_name) \
                 FROM player T1 WHERE T1.player_name = '{p}'"
            ),
            false,
            &["nationality"],
        );
    }

    // q25: nationality count.
    push(
        "How many players are Brazilian?".into(),
        "SELECT COUNT(*) FROM player T1 WHERE T1.nationality = 'Brazilian'".into(),
        format!("SELECT COUNT(*) FROM player T1 {JOIN_PLAYER} WHERE L.nationality = 'Brazilian'"),
        "SELECT COUNT(*) FROM player T1 \
         WHERE llm_map('What is the nationality of the player?', T1.player_name) = 'Brazilian'"
            .into(),
        false,
        &["nationality"],
    );

    // q26-q27: top-5 rated above a height threshold (LIMIT).
    for h in [185, 175] {
        push(
            format!("List the top 5 players by 2015/2016 overall rating who are taller than {h}cm."),
            format!(
                "SELECT T1.player_name FROM player T1 \
                 JOIN player_attributes pa ON pa.player_id = T1.id \
                 WHERE pa.season = '2015/2016' AND T1.height > {h} \
                 ORDER BY pa.overall_rating DESC, T1.player_name LIMIT 5"
            ),
            format!(
                "SELECT T1.player_name FROM player T1 {JOIN_PLAYER} \
                 JOIN player_attributes pa ON pa.player_id = T1.id \
                 WHERE pa.season = '2015/2016' AND L.height > {h} \
                 ORDER BY pa.overall_rating DESC, T1.player_name LIMIT 5"
            ),
            format!(
                "SELECT T1.player_name FROM player T1 \
                 JOIN player_attributes pa ON pa.player_id = T1.id \
                 WHERE pa.season = '2015/2016' AND {} > {h} \
                 ORDER BY pa.overall_rating DESC, T1.player_name LIMIT 5",
                height_udf()
            ),
            true,
            &["height"],
        );
    }

    // q28-q29: birth city and birthday lookups.
    {
        let p = esc(&s.players[4]);
        push(
            format!("In which city was the player {} born?", s.players[4]),
            format!("SELECT T1.birth_city FROM player T1 WHERE T1.player_name = '{p}'"),
            format!(
                "SELECT L.birth_city FROM player T1 {JOIN_PLAYER} WHERE T1.player_name = '{p}'"
            ),
            format!(
                "SELECT llm_map('In which city was the player born?', T1.player_name) \
                 FROM player T1 WHERE T1.player_name = '{p}'"
            ),
            false,
            &["birth_city"],
        );
        let p = esc(&s.players[5]);
        push(
            format!("What is the birthday of the player {}?", s.players[5]),
            format!("SELECT T1.birthday FROM player T1 WHERE T1.player_name = '{p}'"),
            format!("SELECT L.birthday FROM player T1 {JOIN_PLAYER} WHERE T1.player_name = '{p}'"),
            format!(
                "SELECT llm_map('What is the birthday of the player?', T1.player_name) \
                 FROM player T1 WHERE T1.player_name = '{p}'"
            ),
            false,
            &["birthday"],
        );
    }

    // q30: players per preferred foot.
    push(
        "How many players prefer each foot?".into(),
        "SELECT pa.preferred_foot, COUNT(DISTINCT pa.player_id) FROM player_attributes pa \
         GROUP BY pa.preferred_foot"
            .into(),
        format!(
            "SELECT L.preferred_foot, COUNT(DISTINCT T1.id) FROM player T1 {JOIN_PLAYER} \
             GROUP BY L.preferred_foot"
        ),
        "SELECT llm_map('What is the preferred foot of the player?', T1.player_name), COUNT(*) \
         FROM player T1 \
         GROUP BY llm_map('What is the preferred foot of the player?', T1.player_name)"
            .into(),
        false,
        &["preferred_foot"],
    );

    assert_eq!(qs.len(), 30, "european football question count");
    qs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DomainData {
        generate(&GenConfig::with_scale(0.01))
    }

    #[test]
    fn table_and_drop_counts_match_paper() {
        let d = small();
        assert_eq!(d.original.catalog().len(), 7);
        assert_eq!(d.table_count(), 6, "country table dropped");
        assert_eq!(d.curation.dropped_count(), 12);
    }

    #[test]
    fn questions_well_formed() {
        let d = small();
        assert_eq!(d.questions.len(), 30);
        assert_eq!(d.questions.iter().filter(|q| q.has_limit).count(), 2);
        for q in &d.questions {
            for sql in [&q.gold_sql, &q.hybrid_sql, &q.udf_sql] {
                swan_sqlengine::parser::parse_statement(sql)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{sql}", q.id));
            }
            d.original
                .query(&q.gold_sql)
                .unwrap_or_else(|e| panic!("{} gold failed: {e}", q.id));
        }
    }

    #[test]
    fn tallest_player_question_gives_plausible_answer() {
        let d = small();
        let r = d.original.query(&d.questions[0].gold_sql).unwrap();
        let h = r.rows[0][0].as_i64().unwrap();
        assert!((158..=202).contains(&h));
    }

    #[test]
    fn player_attribute_consistency() {
        // preferred_foot is constant across a player's snapshots, so the
        // LLM fact is well-defined.
        let d = small();
        let pa = d.original.catalog().get("player_attributes").unwrap();
        let pid = pa.column_index("player_id").unwrap();
        let foot = pa.column_index("preferred_foot").unwrap();
        let mut by_player: std::collections::HashMap<i64, String> = Default::default();
        for row in &pa.rows {
            let id = row[pid].as_i64().unwrap();
            let f = row[foot].render();
            let prev = by_player.entry(id).or_insert_with(|| f.clone());
            assert_eq!(*prev, f, "player {id} switches feet across seasons");
        }
    }

    #[test]
    fn heights_are_numeric_facts() {
        let d = small();
        for f in d.facts.iter().filter(|f| f.attribute == "height") {
            match &f.value {
                swan_llm::KnownValue::One(v) => {
                    let h: i64 = v.parse().expect("height parses");
                    assert!((158..=202).contains(&h));
                }
                other => panic!("height should be single-valued: {other:?}"),
            }
        }
    }

    #[test]
    fn country_table_dropped_but_league_survives() {
        let d = small();
        assert!(d.curated.catalog().get("country").is_none());
        assert!(d.curated.catalog().get("league").is_some());
    }

    #[test]
    fn seven_table_average_near_paper_at_full_scale_formula() {
        // Verify the arithmetic at scale 1.0 without generating it:
        // (11 + 11 + 300 + 1500 + 11060 + 11060*16 + 26000) / 7 ≈ 30 840.
        let total = 11 + 11 + 300 + 1500 + 11_060 + 11_060 * 16 + 26_000;
        let avg = total / 7;
        assert!((25_000..40_000).contains(&avg), "{avg}");
    }
}
