//! # swan-data
//!
//! The SWAN benchmark (paper §3): four cross-domain databases —
//! California Schools, Super Hero, Formula One, European Football — with
//! 30 beyond-database questions each.
//!
//! For every domain this crate provides:
//!
//! * a deterministic **synthetic generator** for the *original* database
//!   (the ground truth the paper takes from Bird/Kaggle — see DESIGN.md
//!   for the substitution argument), scaled by [`GenConfig::scale`] with
//!   scale 1.0 matching Table 1's statistics;
//! * the **curation** step (§3.2): dropped columns/tables, retained value
//!   lists (§3.3), and meaningful LLM-facing keys (§3.4);
//! * the **schema expansions** HQDL materializes (§4.1);
//! * **30 questions** with gold SQL, schema-expansion hybrid SQL, and
//!   UDF hybrid SQL (§3.5);
//! * ground-truth **facts + popularity + question phrasings** from which
//!   [`benchmark::build_knowledge`] assembles the simulated model's
//!   knowledge base.

pub mod benchmark;
pub mod builder;
pub mod football;
pub mod formula1;
pub mod namegen;
pub mod schools;
pub mod superhero;
pub mod types;

pub use benchmark::{build_knowledge, SwanBenchmark};
pub use types::{
    CurationSpec, DomainData, Expansion, Fact, GenColumn, GenConfig, Question, QuestionPhrase,
};
