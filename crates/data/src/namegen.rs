//! Deterministic name and word generation for the synthetic databases.
//!
//! The Bird databases the paper builds on are real Kaggle datasets; this
//! module synthesizes stand-ins with the same *shape*: plausible,
//! human-readable, unique entity names that LLM-facing keys can be built
//! from (§3.4 requires meaningful keys, not surrogate integers).

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::Rng;

pub const FIRST_NAMES: &[&str] = &[
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda", "David",
    "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas", "Karen",
    "Carlos", "Sofia", "Luis", "Camila", "Diego", "Valentina", "Hiro", "Yuki", "Kenji", "Aiko",
    "Lars", "Ingrid", "Sven", "Astrid", "Pierre", "Amelie", "Jean", "Claire", "Giovanni", "Lucia",
    "Marco", "Elena", "Pavel", "Anna", "Dmitri", "Olga", "Ahmed", "Fatima", "Omar", "Leila",
    "Kwame", "Ama", "Tunde", "Zara", "Raj", "Priya", "Arjun", "Meera", "Chen", "Mei",
];

pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez",
    "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor",
    "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
    "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King", "Wright",
    "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green", "Adams", "Nelson", "Baker", "Hall",
    "Rivera", "Campbell", "Mitchell", "Carter", "Roberts", "Tanaka", "Sato", "Kimura", "Müller",
    "Schmidt", "Rossi", "Bianchi", "Silva", "Santos", "Kowalski",
];

pub const ADJECTIVES: &[&str] = &[
    "Crimson", "Silent", "Mighty", "Shadow", "Golden", "Iron", "Silver", "Scarlet", "Thunder",
    "Night", "Solar", "Lunar", "Atomic", "Cosmic", "Phantom", "Savage", "Swift", "Arctic",
    "Emerald", "Obsidian", "Radiant", "Storm", "Steel", "Blazing", "Frozen", "Electric",
    "Invisible", "Quantum", "Astral", "Venomous",
];

pub const CREATURES: &[&str] = &[
    "Falcon", "Wolf", "Panther", "Hawk", "Tiger", "Cobra", "Raven", "Phoenix", "Dragon",
    "Mantis", "Scorpion", "Lynx", "Viper", "Eagle", "Shark", "Spider", "Jaguar", "Kraken",
    "Griffin", "Owl", "Fox", "Bear", "Puma", "Wasp", "Hornet", "Condor", "Rhino", "Leopard",
    "Badger", "Stallion",
];

pub const CITIES: &[&str] = &[
    "Oakland", "Fresno", "San Diego", "Sacramento", "Bakersfield", "Stockton", "Riverside",
    "Anaheim", "Santa Ana", "Irvine", "Chula Vista", "Fremont", "San Bernardino", "Modesto",
    "Fontana", "Oxnard", "Moreno Valley", "Glendale", "Huntington Beach", "Santa Clarita",
    "Oceanside", "Rancho Cucamonga", "Ontario", "Lancaster", "Elk Grove", "Palmdale", "Salinas",
    "Hayward", "Pomona", "Escondido", "Sunnyvale", "Torrance", "Pasadena", "Fullerton", "Orange",
    "Visalia", "Concord", "Roseville", "Thousand Oaks", "Vallejo",
];

pub const COUNTIES: &[&str] = &[
    "Alameda", "Fresno", "Kern", "Los Angeles", "Orange", "Riverside", "Sacramento",
    "San Bernardino", "San Diego", "San Francisco", "San Joaquin", "Santa Clara", "Ventura",
    "Contra Costa", "Monterey", "Placer", "Sonoma", "Stanislaus", "Tulare", "Solano",
];

pub const STREET_NAMES: &[&str] = &[
    "Oak", "Maple", "Cedar", "Pine", "Elm", "Washington", "Lincoln", "Jefferson", "Madison",
    "Brann", "Sunset", "Hilltop", "Valley", "River", "Lake", "Park", "Mission", "Harbor",
    "Foothill", "Canyon", "Willow", "Magnolia", "Juniper", "Sierra", "Pacific", "Vista",
    "Orchard", "Meadow", "Prairie", "Redwood",
];

pub const STREET_SUFFIXES: &[&str] = &["Street", "Avenue", "Boulevard", "Road", "Drive", "Way", "Lane"];

pub const COUNTRIES: &[&str] = &[
    "United Kingdom", "Germany", "Spain", "Italy", "France", "Netherlands", "Portugal",
    "Belgium", "Scotland", "Switzerland", "Poland", "Austria", "Brazil", "Argentina", "Japan",
    "Australia", "United States", "Mexico", "Canada", "Monaco", "Bahrain", "Singapore",
    "Hungary", "Azerbaijan",
];

pub const NATIONALITIES: &[&str] = &[
    "British", "German", "Spanish", "Italian", "French", "Dutch", "Portuguese", "Belgian",
    "Scottish", "Swiss", "Polish", "Austrian", "Brazilian", "Argentine", "Japanese",
    "Australian", "American", "Mexican", "Canadian", "Finnish", "Danish", "Swedish",
];

pub const SCHOOL_KINDS: &[&str] = &[
    "Elementary", "Middle", "High", "Charter", "Academy", "Preparatory", "Community Day",
    "Unified", "Magnet", "Technical",
];

pub const TEAM_WORDS: &[&str] = &[
    "United", "City", "Rovers", "Athletic", "Wanderers", "Albion", "Rangers", "Dynamo",
    "Sporting", "Real", "Inter", "Olympic", "Racing", "Union", "Victoria",
];

pub const POWERS: &[&str] = &[
    "Agility", "Super Strength", "Stamina", "Super Speed", "Flight", "Telepathy",
    "Telekinesis", "Invisibility", "Regeneration", "Energy Blasts", "Shape Shifting",
    "Elasticity", "Intangibility", "Weather Control", "Force Fields", "Precognition",
    "Size Changing", "Sonic Scream", "Magnetism", "Fire Control", "Ice Control",
    "Darkness Manipulation", "Light Projection", "Time Manipulation", "Healing",
    "Enhanced Senses", "Wall Crawling", "Danger Sense", "Power Mimicry", "Teleportation",
];

/// A generator of unique names: draws from a pattern, de-duplicates by
/// appending a roman-ish suffix on collision.
#[derive(Debug, Default)]
pub struct UniqueNames {
    seen: HashSet<String>,
}

impl UniqueNames {
    pub fn new() -> Self {
        Self::default()
    }

    /// Make `base` unique, mutating with a suffix if needed.
    pub fn claim(&mut self, base: String) -> String {
        if self.seen.insert(base.clone()) {
            return base;
        }
        for i in 2.. {
            let candidate = format!("{base} {}", roman(i));
            if self.seen.insert(candidate.clone()) {
                return candidate;
            }
        }
        unreachable!()
    }

    pub fn len(&self) -> usize {
        self.seen.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// Small roman numerals for name disambiguation ("Iron Falcon II").
pub fn roman(mut n: usize) -> String {
    const VALS: &[(usize, &str)] = &[
        (1000, "M"), (900, "CM"), (500, "D"), (400, "CD"), (100, "C"), (90, "XC"),
        (50, "L"), (40, "XL"), (10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I"),
    ];
    let mut out = String::new();
    for &(v, s) in VALS {
        while n >= v {
            out.push_str(s);
            n -= v;
        }
    }
    out
}

/// Pick one element deterministically.
pub fn pick<'a>(rng: &mut SmallRng, items: &'a [&'a str]) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

/// A person name "First Last".
pub fn person_name(rng: &mut SmallRng) -> String {
    format!("{} {}", pick(rng, FIRST_NAMES), pick(rng, LAST_NAMES))
}

/// A hero-style name "Adjective Creature".
pub fn hero_name(rng: &mut SmallRng) -> String {
    format!("{} {}", pick(rng, ADJECTIVES), pick(rng, CREATURES))
}

/// A street address like "5328 Brann Street".
pub fn street_address(rng: &mut SmallRng) -> String {
    format!(
        "{} {} {}",
        rng.gen_range(100..9999),
        pick(rng, STREET_NAMES),
        pick(rng, STREET_SUFFIXES)
    )
}

/// Slugify a name for URLs: lowercase alphanumerics joined by nothing.
pub fn slug(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn unique_names_never_collide() {
        let mut u = UniqueNames::new();
        let a = u.claim("Iron Falcon".into());
        let b = u.claim("Iron Falcon".into());
        let c = u.claim("Iron Falcon".into());
        assert_eq!(a, "Iron Falcon");
        assert_eq!(b, "Iron Falcon II");
        assert_eq!(c, "Iron Falcon III");
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn roman_numerals() {
        assert_eq!(roman(2), "II");
        assert_eq!(roman(4), "IV");
        assert_eq!(roman(9), "IX");
        assert_eq!(roman(14), "XIV");
        assert_eq!(roman(49), "XLIX");
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            assert_eq!(person_name(&mut a), person_name(&mut b));
            assert_eq!(street_address(&mut a), street_address(&mut b));
        }
    }

    #[test]
    fn slug_strips_punctuation() {
        assert_eq!(slug("Oak Grove High School"), "oakgrovehighschool");
        assert_eq!(slug("St. Mary's #2"), "stmarys2");
    }

    #[test]
    fn word_lists_have_no_duplicates() {
        for list in [FIRST_NAMES, LAST_NAMES, ADJECTIVES, CREATURES, CITIES, COUNTIES, POWERS] {
            let set: HashSet<&&str> = list.iter().collect();
            assert_eq!(set.len(), list.len());
        }
    }

    #[test]
    fn enough_hero_combinations() {
        // 30 adjectives x 30 creatures = 900 base combinations; with roman
        // suffixes the generator can exceed any benchmark size.
        assert!(ADJECTIVES.len() * CREATURES.len() >= 750);
    }
}
