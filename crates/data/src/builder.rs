//! Helpers for constructing and curating the benchmark databases.

use swan_llm::KnownValue;
use swan_sqlengine::{Column, Database, Table, Value};

use crate::types::{CurationSpec, Fact};

/// Create a table with TEXT-typed metadata-free columns and an optional
/// primary key, panicking on invalid specs (generator bugs, not user
/// input).
pub fn create_table(db: &mut Database, name: &str, cols: &[&str], pk: &[&str]) {
    let columns: Vec<Column> = cols.iter().map(|c| Column::new(*c)).collect();
    let pk: Vec<String> = pk.iter().map(|s| s.to_string()).collect();
    let table = Table::new(name, columns, &pk).expect("valid generator schema");
    db.catalog_mut().create_table(table).expect("unique generator table name");
}

/// Bulk-insert rows into a table.
pub fn insert_rows(db: &mut Database, table: &str, rows: Vec<Vec<Value>>) {
    db.catalog_mut()
        .get_mut(table)
        .expect("table exists")
        .insert_rows(rows)
        .expect("generator rows satisfy constraints");
}

/// Apply a curation spec: clone the original and drop the listed columns
/// and tables. The result is the database a hybrid-querying system gets.
pub fn apply_curation(original: &Database, spec: &CurationSpec) -> Database {
    let mut curated = original.clone();
    for (table, column) in &spec.dropped_columns {
        curated
            .catalog_mut()
            .get_mut(table)
            .expect("curated table exists")
            .drop_column(column)
            .expect("curated column exists");
    }
    for (table, _) in &spec.dropped_tables {
        curated.catalog_mut().drop_table(table).expect("dropped table exists");
    }
    curated
}

/// Distinct text values of one column, sorted (value lists, §3.3).
pub fn distinct_texts(db: &Database, table: &str, column: &str) -> Vec<String> {
    let t = db.catalog().get(table).expect("table exists");
    let idx = t.column_index(column).expect("column exists");
    let mut out: Vec<String> = t
        .rows
        .iter()
        .filter_map(|r| r[idx].as_str().map(str::to_string))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Popularity from a [0,1] prominence percentile, skewed so only genuinely
/// prominent entities get high values (LLM bias modelling, §5.3).
pub fn popularity_from_percentile(pct: f64) -> f64 {
    (0.15 + 0.80 * pct.clamp(0.0, 1.0)).clamp(0.0, 1.0)
}

/// Shorthand for a single-valued fact.
pub fn fact1(key: &[String], attribute: &str, value: impl Into<String>) -> Fact {
    Fact { key: key.to_vec(), attribute: attribute.to_string(), value: KnownValue::One(value.into()) }
}

/// Shorthand for a one-to-many fact.
pub fn fact_many(key: &[String], attribute: &str, values: Vec<String>) -> Fact {
    Fact { key: key.to_vec(), attribute: attribute.to_string(), value: KnownValue::Many(values) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CurationSpec;

    fn tiny_db() -> Database {
        let mut db = Database::new();
        create_table(&mut db, "t", &["a", "b", "c"], &["a"]);
        create_table(&mut db, "gone", &["x", "y"], &[]);
        insert_rows(&mut db, "t", vec![vec!["k".into(), 1.into(), 2.into()]]);
        db
    }

    #[test]
    fn curation_drops_columns_and_tables() {
        let original = tiny_db();
        let spec = CurationSpec {
            dropped_columns: vec![("t".into(), "b".into())],
            dropped_tables: vec![("gone".into(), 2)],
            expansions: vec![],
        };
        let curated = apply_curation(&original, &spec);
        assert!(curated.catalog().get("gone").is_none());
        let t = curated.catalog().get("t").unwrap();
        assert_eq!(t.column_names(), vec!["a", "c"]);
        // Original untouched.
        assert!(original.catalog().get("gone").is_some());
        assert_eq!(original.catalog().get("t").unwrap().width(), 3);
    }

    #[test]
    fn distinct_texts_sorted_deduped() {
        let mut db = Database::new();
        create_table(&mut db, "p", &["name"], &[]);
        insert_rows(
            &mut db,
            "p",
            vec![
                vec!["DC".into()],
                vec!["Marvel".into()],
                vec!["DC".into()],
                vec![Value::Null],
            ],
        );
        assert_eq!(distinct_texts(&db, "p", "name"), vec!["DC", "Marvel"]);
    }

    #[test]
    fn popularity_curve_shape() {
        assert!(popularity_from_percentile(0.0) <= 0.15);
        assert!(popularity_from_percentile(1.0) > 0.9);
        assert!(popularity_from_percentile(0.9) > popularity_from_percentile(0.5));
    }
}
