//! Assembling the full SWAN benchmark and its knowledge base.

use std::sync::Arc;

use swan_llm::StaticKnowledge;

use crate::types::{DomainData, GenConfig};
use crate::{football, formula1, schools, superhero};

/// The complete SWAN benchmark: four domains, 120 questions.
#[derive(Debug, Clone)]
pub struct SwanBenchmark {
    pub domains: Vec<DomainData>,
}

impl SwanBenchmark {
    /// Generate all four domains.
    pub fn generate(cfg: &GenConfig) -> Self {
        SwanBenchmark {
            domains: vec![
                schools::generate(cfg),
                superhero::generate(cfg),
                formula1::generate(cfg),
                football::generate(cfg),
            ],
        }
    }

    /// Generate a single domain by database name (cheaper for tests).
    pub fn generate_domain(cfg: &GenConfig, db: &str) -> Option<DomainData> {
        match db {
            schools::DB_NAME => Some(schools::generate(cfg)),
            superhero::DB_NAME => Some(superhero::generate(cfg)),
            formula1::DB_NAME => Some(formula1::generate(cfg)),
            football::DB_NAME => Some(football::generate(cfg)),
            _ => None,
        }
    }

    pub fn domain(&self, db: &str) -> Option<&DomainData> {
        self.domains.iter().find(|d| d.name == db)
    }

    /// Total question count (120 at any scale).
    pub fn question_count(&self) -> usize {
        self.domains.iter().map(|d| d.questions.len()).sum()
    }
}

/// Build the simulated model's knowledge base from domain ground truth:
/// facts, popularity, question phrasings, and attribute classes/candidate
/// pools from the expansion specs.
pub fn build_knowledge(domains: &[DomainData]) -> Arc<StaticKnowledge> {
    let mut kb = StaticKnowledge::new();
    for d in domains {
        for fact in &d.facts {
            kb.add_fact(&d.name, &fact.key, &fact.attribute, fact.value.clone());
        }
        for (key, pop) in &d.popularity {
            kb.set_popularity(&d.name, key, *pop);
        }
        for phrase in &d.phrases {
            kb.add_question(&d.name, &phrase.text, &phrase.attribute);
        }
        for exp in &d.curation.expansions {
            for col in &exp.generated {
                kb.set_class(&d.name, &col.name, col.class);
                if let Some(values) = &col.value_list {
                    kb.set_candidates(&d.name, &col.name, values.clone());
                } else {
                    // Free-form attributes get a hallucination pool of
                    // *plausible* wrong answers: other entities' real
                    // values (a wrong-but-real city, another school's
                    // website, a believable height).
                    let mut pool: Vec<String> = Vec::new();
                    let mut seen = std::collections::HashSet::new();
                    for f in d.facts.iter().filter(|f| f.attribute == col.name) {
                        let v = f.value.condensed();
                        if !v.is_empty() && seen.insert(v.clone()) {
                            pool.push(v);
                            if pool.len() >= 64 {
                                break;
                            }
                        }
                    }
                    kb.set_candidates(&d.name, &col.name, pool);
                }
            }
        }
    }
    Arc::new(kb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swan_llm::{KnowledgeBase, KnownValue};

    #[test]
    fn full_benchmark_has_120_questions() {
        let b = SwanBenchmark::generate(&GenConfig::with_scale(0.01));
        assert_eq!(b.domains.len(), 4);
        assert_eq!(b.question_count(), 120);
        for d in &b.domains {
            assert_eq!(d.questions.len(), 30, "{}", d.name);
        }
    }

    #[test]
    fn domain_lookup() {
        let b = SwanBenchmark::generate(&GenConfig::with_scale(0.01));
        assert!(b.domain("superhero").is_some());
        assert!(b.domain("nope").is_none());
        assert!(SwanBenchmark::generate_domain(&GenConfig::with_scale(0.01), "formula_1").is_some());
    }

    #[test]
    fn knowledge_answers_generated_attributes() {
        let cfg = GenConfig::with_scale(0.02);
        let d = SwanBenchmark::generate_domain(&cfg, "superhero").unwrap();
        let kb = build_knowledge(std::slice::from_ref(&d));
        // Every hero's publisher must be known and in the candidate pool.
        let candidates = kb.candidates("superhero", "publisher_name");
        assert!(!candidates.is_empty());
        for fact in d.facts.iter().filter(|f| f.attribute == "publisher_name").take(20) {
            match kb.lookup("superhero", &fact.key, "publisher_name") {
                Some(KnownValue::One(v)) => assert!(candidates.contains(&v)),
                other => panic!("missing publisher fact: {other:?}"),
            }
        }
    }

    #[test]
    fn knowledge_resolves_all_udf_phrases() {
        let cfg = GenConfig::with_scale(0.01);
        let b = SwanBenchmark::generate(&cfg);
        let kb = build_knowledge(&b.domains);
        for d in &b.domains {
            for phrase in &d.phrases {
                assert_eq!(
                    kb.resolve_question(&d.name, &phrase.text).as_deref(),
                    Some(phrase.attribute.as_str()),
                    "{}: {}",
                    d.name,
                    phrase.text
                );
            }
        }
    }

    #[test]
    fn table1_shape_at_small_scale() {
        let b = SwanBenchmark::generate(&GenConfig::with_scale(0.01));
        let by_name = |n: &str| b.domain(n).unwrap();
        assert_eq!(by_name("california_schools").table_count(), 3);
        assert_eq!(by_name("superhero").table_count(), 8);
        assert_eq!(by_name("formula_1").table_count(), 13);
        assert_eq!(by_name("european_football").table_count(), 6);
        assert_eq!(by_name("california_schools").curation.dropped_count(), 12);
        assert_eq!(by_name("superhero").curation.dropped_count(), 11);
        assert_eq!(by_name("formula_1").curation.dropped_count(), 12);
        assert_eq!(by_name("european_football").curation.dropped_count(), 12);
    }
}
