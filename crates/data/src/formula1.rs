//! The Formula One benchmark domain (13 tables, ≈39 561 rows/table at
//! scale 1.0, 12 dropped columns — Table 1).
//!
//! The LLM-facing keys follow §3.4 ("Lewis Hamilton" → code "HAM" is the
//! paper's own few-shot example): drivers are keyed by (forename,
//! surname), circuits and constructors by name, races by (name, date).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swan_sqlengine::{Database, Value};

use crate::builder::*;
use crate::namegen::{self, UniqueNames};
use crate::types::*;

pub const DB_NAME: &str = "formula_1";

const STATUSES: &[&str] = &[
    "Finished", "+1 Lap", "+2 Laps", "Accident", "Collision", "Engine", "Gearbox", "Hydraulics",
    "Brakes", "Electrical", "Retired", "Disqualified", "Puncture", "Fuel system", "Withdrew",
    "Suspension", "Spun off", "Overheating", "Mechanical", "Did not qualify",
];

/// Names the questions reference; sampled deterministically from the
/// generated entities.
#[derive(Debug, Clone)]
struct Sampled {
    drivers: Vec<(String, String)>,
    circuits: Vec<String>,
    constructors: Vec<String>,
    a_country: String,
    a_year: i64,
}

/// Generate the Formula One domain.
pub fn generate(cfg: &GenConfig) -> DomainData {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xF100_0003);

    let n_drivers = cfg.rows(860, 40);
    let n_constructors = cfg.rows(210, 12);
    let n_circuits = cfg.rows(77, 10);
    let n_seasons = 30usize;
    let n_races = cfg.rows(1000, 30);
    let laps_per_driver = if cfg.scale >= 0.5 { 20 } else { 5 };

    let mut original = Database::new();
    create_table(&mut original, "seasons", &["year", "url"], &["year"]);
    create_table(&mut original, "status", &["id", "status_text"], &["id"]);
    create_table(
        &mut original,
        "circuits",
        &["id", "circuit_name", "location", "country", "url"],
        &["id"],
    );
    create_table(
        &mut original,
        "drivers",
        &["id", "forename", "surname", "code", "number", "nationality", "dob", "url"],
        &["id"],
    );
    create_table(
        &mut original,
        "constructors",
        &["id", "constructor_name", "nationality", "url"],
        &["id"],
    );
    create_table(
        &mut original,
        "races",
        &["id", "year", "round", "circuit_id", "race_name", "date", "url"],
        &["id"],
    );
    create_table(
        &mut original,
        "results",
        &["race_id", "driver_id", "constructor_id", "grid", "position", "points", "laps", "status_id"],
        &[],
    );
    create_table(&mut original, "qualifying", &["race_id", "driver_id", "position", "q1_ms"], &[]);
    create_table(&mut original, "sprint_results", &["race_id", "driver_id", "position", "points"], &[]);
    create_table(
        &mut original,
        "driver_standings",
        &["race_id", "driver_id", "points", "position", "wins"],
        &[],
    );
    create_table(
        &mut original,
        "constructor_standings",
        &["race_id", "constructor_id", "points", "position", "wins"],
        &[],
    );
    create_table(&mut original, "lap_times", &["race_id", "driver_id", "lap", "position", "time_ms"], &[]);
    create_table(&mut original, "pit_stops", &["race_id", "driver_id", "stop", "lap", "duration_ms"], &[]);

    let mut facts = Vec::new();
    let mut popularity = Vec::new();

    // Seasons.
    let first_year = 1995i64;
    let mut season_rows = Vec::new();
    for y in 0..n_seasons as i64 {
        let year = first_year + y;
        let url = format!("http://en.wikipedia.org/wiki/{year}_Formula_One_season");
        season_rows.push(vec![Value::Integer(year), Value::text(&url)]);
        facts.push(fact1(&[year.to_string()], "url", &url));
    }
    insert_rows(&mut original, "seasons", season_rows);

    insert_rows(
        &mut original,
        "status",
        STATUSES
            .iter()
            .enumerate()
            .map(|(i, s)| vec![Value::Integer(i as i64 + 1), Value::text(*s)])
            .collect(),
    );

    // Circuits.
    let mut circuit_names = UniqueNames::new();
    let mut circuit_rows = Vec::new();
    let mut circuit_countries = Vec::with_capacity(n_circuits);
    for i in 0..n_circuits {
        let country = namegen::pick(&mut rng, namegen::COUNTRIES).to_string();
        let location = namegen::pick(&mut rng, namegen::CITIES).to_string();
        let name = circuit_names.claim(format!("{location} International Circuit"));
        let url = format!("http://en.wikipedia.org/wiki/{}", name.replace(' ', "_"));
        circuit_rows.push(vec![
            Value::Integer(i as i64 + 1),
            Value::text(&name),
            Value::text(&location),
            Value::text(&country),
            Value::text(&url),
        ]);
        let key = vec![name.clone()];
        facts.push(fact1(&key, "country", &country));
        facts.push(fact1(&key, "location", &location));
        facts.push(fact1(&key, "url", &url));
        popularity.push((key, popularity_from_percentile(rng.gen())));
        circuit_countries.push(country);
    }
    insert_rows(&mut original, "circuits", circuit_rows);

    // Drivers. Skill drives results and popularity.
    let mut driver_names = UniqueNames::new();
    let mut driver_rows = Vec::new();
    let mut driver_skill = Vec::with_capacity(n_drivers);
    let mut driver_keys = Vec::with_capacity(n_drivers);
    for i in 0..n_drivers {
        let full = driver_names.claim(namegen::person_name(&mut rng));
        let (forename, surname) = full.split_once(' ').expect("two-part name");
        let code: String = surname
            .chars()
            .filter(|c| c.is_ascii_alphabetic())
            .take(3)
            .collect::<String>()
            .to_ascii_uppercase();
        let number = rng.gen_range(1..=99);
        let nationality = namegen::pick(&mut rng, namegen::NATIONALITIES).to_string();
        let dob = format!(
            "{}-{:02}-{:02}",
            rng.gen_range(1960..2000),
            rng.gen_range(1..=12),
            rng.gen_range(1..=28)
        );
        let url = format!("http://en.wikipedia.org/wiki/{}", full.replace(' ', "_"));
        driver_rows.push(vec![
            Value::Integer(i as i64 + 1),
            Value::text(forename),
            Value::text(surname),
            Value::text(&code),
            Value::Integer(number),
            Value::text(&nationality),
            Value::text(&dob),
            Value::text(&url),
        ]);
        let key = vec![forename.to_string(), surname.to_string()];
        facts.push(fact1(&key, "code", &code));
        facts.push(fact1(&key, "number", number.to_string()));
        facts.push(fact1(&key, "nationality", &nationality));
        facts.push(fact1(&key, "dob", &dob));
        facts.push(fact1(&key, "url", &url));
        let skill: f64 = rng.gen();
        driver_skill.push(skill);
        popularity.push((key.clone(), popularity_from_percentile(skill)));
        driver_keys.push((forename.to_string(), surname.to_string()));
    }
    insert_rows(&mut original, "drivers", driver_rows);

    // Constructors.
    let mut constructor_names = UniqueNames::new();
    let mut constructor_rows = Vec::new();
    let mut constructor_list = Vec::with_capacity(n_constructors);
    for i in 0..n_constructors {
        let name = constructor_names.claim(format!(
            "{} {}",
            namegen::pick(&mut rng, namegen::LAST_NAMES),
            namegen::pick(&mut rng, namegen::TEAM_WORDS)
        ));
        let nationality = namegen::pick(&mut rng, namegen::NATIONALITIES).to_string();
        let url = format!("http://en.wikipedia.org/wiki/{}", name.replace(' ', "_"));
        constructor_rows.push(vec![
            Value::Integer(i as i64 + 1),
            Value::text(&name),
            Value::text(&nationality),
            Value::text(&url),
        ]);
        let key = vec![name.clone()];
        facts.push(fact1(&key, "nationality", &nationality));
        facts.push(fact1(&key, "url", &url));
        popularity.push((key, popularity_from_percentile(rng.gen())));
        constructor_list.push(name);
    }
    insert_rows(&mut original, "constructors", constructor_rows);

    // Races + per-race tables.
    let mut race_rows = Vec::new();
    let mut result_rows = Vec::new();
    let mut quali_rows = Vec::new();
    let mut sprint_rows = Vec::new();
    let mut dstand_rows = Vec::new();
    let mut cstand_rows = Vec::new();
    let mut lap_rows = Vec::new();
    let mut pit_rows = Vec::new();
    const POINTS: [i64; 10] = [25, 18, 15, 12, 10, 8, 6, 4, 2, 1];

    let grid_size = 20.min(n_drivers);
    for r in 0..n_races {
        let year = first_year + (r % n_seasons) as i64;
        let round = (r / n_seasons) as i64 + 1;
        let circuit = rng.gen_range(0..n_circuits);
        let name = format!("{} Grand Prix", circuit_countries[circuit]);
        let date = format!("{year}-{:02}-{:02}", rng.gen_range(3..=11), rng.gen_range(1..=28));
        let url = format!(
            "http://en.wikipedia.org/wiki/{}_{}",
            year,
            name.replace(' ', "_")
        );
        race_rows.push(vec![
            Value::Integer(r as i64 + 1),
            Value::Integer(year),
            Value::Integer(round),
            Value::Integer(circuit as i64 + 1),
            Value::text(&name),
            Value::text(&date),
            Value::text(&url),
        ]);
        facts.push(fact1(&[name.clone(), date.clone()], "url", &url));

        // Pick a grid of drivers, order by (skill + luck) for positions.
        let mut entrants: Vec<usize> = Vec::with_capacity(grid_size);
        while entrants.len() < grid_size {
            let d = rng.gen_range(0..n_drivers);
            if !entrants.contains(&d) {
                entrants.push(d);
            }
        }
        let mut order: Vec<(usize, f64)> = entrants
            .iter()
            .map(|&d| (d, driver_skill[d] + rng.gen_range(-0.3..0.3)))
            .collect();
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

        for (pos, &(d, _)) in order.iter().enumerate() {
            let position = pos as i64 + 1;
            let points = POINTS.get(pos).copied().unwrap_or(0);
            let constructor = (d % n_constructors) as i64 + 1;
            let finished = rng.gen_bool(0.8);
            result_rows.push(vec![
                Value::Integer(r as i64 + 1),
                Value::Integer(d as i64 + 1),
                Value::Integer(constructor),
                Value::Integer(rng.gen_range(1..=grid_size as i64)),
                Value::Integer(position),
                Value::Integer(points),
                Value::Integer(rng.gen_range(40..=70)),
                Value::Integer(if finished { 1 } else { rng.gen_range(2..=STATUSES.len() as i64) }),
            ]);
            if pos < 10 {
                quali_rows.push(vec![
                    Value::Integer(r as i64 + 1),
                    Value::Integer(d as i64 + 1),
                    Value::Integer(position),
                    Value::Integer(rng.gen_range(70_000..95_000)),
                ]);
            }
            dstand_rows.push(vec![
                Value::Integer(r as i64 + 1),
                Value::Integer(d as i64 + 1),
                Value::Integer(points * (round.max(1))),
                Value::Integer(position),
                Value::Integer(if pos == 0 { 1 } else { 0 }),
            ]);
            for lap in 1..=laps_per_driver {
                lap_rows.push(vec![
                    Value::Integer(r as i64 + 1),
                    Value::Integer(d as i64 + 1),
                    Value::Integer(lap as i64),
                    Value::Integer(position),
                    Value::Integer(rng.gen_range(72_000..110_000)),
                ]);
            }
            if rng.gen_bool(0.8) {
                pit_rows.push(vec![
                    Value::Integer(r as i64 + 1),
                    Value::Integer(d as i64 + 1),
                    Value::Integer(1),
                    Value::Integer(rng.gen_range(10..40)),
                    Value::Integer(rng.gen_range(19_000..32_000)),
                ]);
            }
        }
        for c in 0..(10.min(n_constructors)) {
            cstand_rows.push(vec![
                Value::Integer(r as i64 + 1),
                Value::Integer(c as i64 + 1),
                Value::Integer(rng.gen_range(0..600)),
                Value::Integer(c as i64 + 1),
                Value::Integer(rng.gen_range(0..10)),
            ]);
        }
        if r % 5 == 0 {
            for (pos, &(d, _)) in order.iter().take(8).enumerate() {
                sprint_rows.push(vec![
                    Value::Integer(r as i64 + 1),
                    Value::Integer(d as i64 + 1),
                    Value::Integer(pos as i64 + 1),
                    Value::Integer((8 - pos as i64).max(0)),
                ]);
            }
        }
    }
    insert_rows(&mut original, "races", race_rows);
    insert_rows(&mut original, "results", result_rows);
    insert_rows(&mut original, "qualifying", quali_rows);
    insert_rows(&mut original, "sprint_results", sprint_rows);
    insert_rows(&mut original, "driver_standings", dstand_rows);
    insert_rows(&mut original, "constructor_standings", cstand_rows);
    insert_rows(&mut original, "lap_times", lap_rows);
    insert_rows(&mut original, "pit_stops", pit_rows);

    let text_list = |items: &[&str]| items.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    let curation = CurationSpec {
        dropped_columns: vec![
            ("drivers".into(), "code".into()),
            ("drivers".into(), "number".into()),
            ("drivers".into(), "nationality".into()),
            ("drivers".into(), "dob".into()),
            ("drivers".into(), "url".into()),
            ("constructors".into(), "nationality".into()),
            ("constructors".into(), "url".into()),
            ("circuits".into(), "country".into()),
            ("circuits".into(), "location".into()),
            ("circuits".into(), "url".into()),
            ("races".into(), "url".into()),
            ("seasons".into(), "url".into()),
        ],
        dropped_tables: vec![],
        expansions: vec![
            Expansion {
                table: "llm_drivers".into(),
                base_table: "drivers".into(),
                key_columns: vec!["forename".into(), "surname".into()],
                generated: vec![
                    GenColumn::free_form("code"),
                    GenColumn::free_form("number"),
                    GenColumn::selection("nationality", text_list(namegen::NATIONALITIES)),
                    GenColumn::free_form("dob"),
                    GenColumn::free_form("url"),
                ],
            },
            Expansion {
                table: "llm_constructors".into(),
                base_table: "constructors".into(),
                key_columns: vec!["constructor_name".into()],
                generated: vec![
                    GenColumn::selection("nationality", text_list(namegen::NATIONALITIES)),
                    GenColumn::free_form("url"),
                ],
            },
            Expansion {
                table: "llm_circuits".into(),
                base_table: "circuits".into(),
                key_columns: vec!["circuit_name".into()],
                generated: vec![
                    GenColumn::selection("country", text_list(namegen::COUNTRIES)),
                    GenColumn::free_form("location"),
                    GenColumn::free_form("url"),
                ],
            },
            Expansion {
                table: "llm_races".into(),
                base_table: "races".into(),
                key_columns: vec!["race_name".into(), "date".into()],
                generated: vec![GenColumn::free_form("url")],
            },
            Expansion {
                table: "llm_seasons".into(),
                base_table: "seasons".into(),
                key_columns: vec!["year".into()],
                generated: vec![GenColumn::free_form("url")],
            },
        ],
    };
    let curated = apply_curation(&original, &curation);

    // Questions reference *prominent* drivers (highest skill — the
    // Hamiltons of the synthetic grid), mirroring Bird's real questions.
    let mut ranked: Vec<usize> = (0..n_drivers).collect();
    ranked.sort_by(|&a, &b| driver_skill[b].partial_cmp(&driver_skill[a]).unwrap());
    // Mix of champions and midfield drivers (prominence spread).
    let picks = [
        0,
        n_drivers / 20,
        n_drivers / 8,
        n_drivers / 4,
        n_drivers / 2,
        2 * n_drivers / 3,
    ];
    let sampled = Sampled {
        drivers: picks
            .iter()
            .map(|&i| driver_keys[i.min(n_drivers - 1)].clone())
            .collect(),
        circuits: (0..3)
            .map(|i| {
                original
                    .catalog()
                    .get("circuits")
                    .unwrap()
                    .rows[i][1]
                    .render()
            })
            .collect(),
        constructors: constructor_list.into_iter().take(2).collect(),
        a_country: circuit_countries[0].clone(),
        a_year: first_year + 5,
    };

    DomainData {
        name: DB_NAME.into(),
        display_name: "Formula One".into(),
        original,
        curated,
        curation,
        facts,
        popularity,
        phrases: phrases(),
        questions: questions(&sampled),
    }
}

fn phrases() -> Vec<QuestionPhrase> {
    let p = |text: &str, attr: &str| QuestionPhrase { text: text.into(), attribute: attr.into() };
    vec![
        p("What is the driver code?", "code"),
        p("What is the driver's racing number?", "number"),
        p("What is the nationality of the driver?", "nationality"),
        p("What is the date of birth of the driver?", "dob"),
        p("What is the Wikipedia url of the driver?", "url"),
        p("What is the nationality of the constructor?", "nationality"),
        p("What is the Wikipedia url of the constructor?", "url"),
        p("In which country is the circuit located?", "country"),
        p("In which city is the circuit located?", "location"),
        p("What is the Wikipedia url of the circuit?", "url"),
        p("What is the Wikipedia url of the race?", "url"),
    ]
}

const JOIN_DRIVERS: &str =
    "JOIN llm_drivers L ON L.forename = T1.forename AND L.surname = T1.surname";
const JOIN_CIRCUITS: &str = "JOIN llm_circuits L ON L.circuit_name = c.circuit_name";

fn questions(s: &Sampled) -> Vec<Question> {
    let mut qs = Vec::with_capacity(30);
    let mut push = |text: String,
                    gold: String,
                    hybrid: String,
                    udf_sql: String,
                    has_limit: bool,
                    attrs: &[&str]| {
        let id = format!("formula_1_q{:02}", qs.len() + 1);
        // Tag the llm_map question text with the question id: BlendSQL
        // prompts are authored per question, so their exact-prompt cache
        // cannot reuse generations across questions (paper 5.5).
        let udf_sql = udf_sql.replace("llm_map('", &format!("llm_map('[{id}] "));
        qs.push(Question {
            id,
            db: DB_NAME.into(),
            text,
            gold_sql: gold,
            hybrid_sql: hybrid,
            udf_sql,
            has_limit,
            attributes: attrs.iter().map(|x| x.to_string()).collect(),
        });
    };
    let esc = |x: &str| x.replace('\'', "''");

    // q01-q03: driver codes (the paper's own few-shot example).
    for (f, l) in s.drivers.iter().take(3) {
        let (f, l) = (esc(f), esc(l));
        push(
            format!("What is the driver code of {f} {l}?"),
            format!(
                "SELECT T1.code FROM drivers T1 \
                 WHERE T1.forename = '{f}' AND T1.surname = '{l}'"
            ),
            format!(
                "SELECT L.code FROM drivers T1 {JOIN_DRIVERS} \
                 WHERE T1.forename = '{f}' AND T1.surname = '{l}'"
            ),
            format!(
                "SELECT llm_map('What is the driver code?', T1.forename, T1.surname) \
                 FROM drivers T1 WHERE T1.forename = '{f}' AND T1.surname = '{l}'"
            ),
            false,
            &["code"],
        );
    }

    // q04-q05: driver nationality point lookups.
    for (f, l) in s.drivers.iter().skip(3).take(2) {
        let (f, l) = (esc(f), esc(l));
        push(
            format!("What is the nationality of the driver {f} {l}?"),
            format!(
                "SELECT T1.nationality FROM drivers T1 \
                 WHERE T1.forename = '{f}' AND T1.surname = '{l}'"
            ),
            format!(
                "SELECT L.nationality FROM drivers T1 {JOIN_DRIVERS} \
                 WHERE T1.forename = '{f}' AND T1.surname = '{l}'"
            ),
            format!(
                "SELECT llm_map('What is the nationality of the driver?', T1.forename, T1.surname) \
                 FROM drivers T1 WHERE T1.forename = '{f}' AND T1.surname = '{l}'"
            ),
            false,
            &["nationality"],
        );
    }

    // q06-q08: nationality counts.
    for nat in ["British", "German", "Italian"] {
        push(
            format!("How many drivers are {nat}?"),
            format!("SELECT COUNT(*) FROM drivers T1 WHERE T1.nationality = '{nat}'"),
            format!("SELECT COUNT(*) FROM drivers T1 {JOIN_DRIVERS} WHERE L.nationality = '{nat}'"),
            format!(
                "SELECT COUNT(*) FROM drivers T1 \
                 WHERE llm_map('What is the nationality of the driver?', T1.forename, T1.surname) = '{nat}'"
            ),
            false,
            &["nationality"],
        );
    }

    // q09-q10: circuit countries.
    for circuit in s.circuits.iter().take(2) {
        let cname = esc(circuit);
        push(
            format!("In which country is the circuit {circuit}?"),
            format!("SELECT c.country FROM circuits c WHERE c.circuit_name = '{cname}'"),
            format!(
                "SELECT L.country FROM circuits c {JOIN_CIRCUITS} \
                 WHERE c.circuit_name = '{cname}'"
            ),
            format!(
                "SELECT llm_map('In which country is the circuit located?', c.circuit_name) \
                 FROM circuits c WHERE c.circuit_name = '{cname}'"
            ),
            false,
            &["country"],
        );
    }

    // q11-q12: circuits per country.
    for country in ["Italy", "Germany"] {
        push(
            format!("How many circuits are located in {country}?"),
            format!("SELECT COUNT(*) FROM circuits c WHERE c.country = '{country}'"),
            format!("SELECT COUNT(*) FROM circuits c {JOIN_CIRCUITS} WHERE L.country = '{country}'"),
            format!(
                "SELECT COUNT(*) FROM circuits c \
                 WHERE llm_map('In which country is the circuit located?', c.circuit_name) = '{country}'"
            ),
            false,
            &["country"],
        );
    }

    // q13-q14: constructors by nationality.
    for nat in ["British", "Italian"] {
        push(
            format!("List the names of constructors with {nat} nationality."),
            format!(
                "SELECT T1.constructor_name FROM constructors T1 WHERE T1.nationality = '{nat}'"
            ),
            format!(
                "SELECT T1.constructor_name FROM constructors T1 \
                 JOIN llm_constructors L ON L.constructor_name = T1.constructor_name \
                 WHERE L.nationality = '{nat}'"
            ),
            format!(
                "SELECT T1.constructor_name FROM constructors T1 \
                 WHERE llm_map('What is the nationality of the constructor?', T1.constructor_name) = '{nat}'"
            ),
            false,
            &["nationality"],
        );
    }

    // q15-q16: races at circuits in a country.
    for country in ["Spain", "Japan"] {
        push(
            format!("How many races were held at circuits located in {country}?"),
            format!(
                "SELECT COUNT(*) FROM races r JOIN circuits c ON r.circuit_id = c.id \
                 WHERE c.country = '{country}'"
            ),
            format!(
                "SELECT COUNT(*) FROM races r JOIN circuits c ON r.circuit_id = c.id \
                 {JOIN_CIRCUITS} WHERE L.country = '{country}'"
            ),
            format!(
                "SELECT COUNT(*) FROM races r JOIN circuits c ON r.circuit_id = c.id \
                 WHERE llm_map('In which country is the circuit located?', c.circuit_name) = '{country}'"
            ),
            false,
            &["country"],
        );
    }

    // q17-q18: dates of birth.
    for (f, l) in s.drivers.iter().take(2) {
        let (f, l) = (esc(f), esc(l));
        push(
            format!("What is the date of birth of the driver {f} {l}?"),
            format!(
                "SELECT T1.dob FROM drivers T1 WHERE T1.forename = '{f}' AND T1.surname = '{l}'"
            ),
            format!(
                "SELECT L.dob FROM drivers T1 {JOIN_DRIVERS} \
                 WHERE T1.forename = '{f}' AND T1.surname = '{l}'"
            ),
            format!(
                "SELECT llm_map('What is the date of birth of the driver?', T1.forename, T1.surname) \
                 FROM drivers T1 WHERE T1.forename = '{f}' AND T1.surname = '{l}'"
            ),
            false,
            &["dob"],
        );
    }

    // q19-q20: points by nationality.
    for nat in ["French", "Spanish"] {
        push(
            format!("What is the total number of points scored by {nat} drivers?"),
            format!(
                "SELECT SUM(res.points) FROM results res \
                 JOIN drivers T1 ON res.driver_id = T1.id WHERE T1.nationality = '{nat}'"
            ),
            format!(
                "SELECT SUM(res.points) FROM results res \
                 JOIN drivers T1 ON res.driver_id = T1.id {JOIN_DRIVERS} \
                 WHERE L.nationality = '{nat}'"
            ),
            format!(
                "SELECT SUM(res.points) FROM results res \
                 JOIN drivers T1 ON res.driver_id = T1.id \
                 WHERE llm_map('What is the nationality of the driver?', T1.forename, T1.surname) = '{nat}'"
            ),
            false,
            &["nationality"],
        );
    }

    // q21: drivers born before 1985.
    push(
        "How many drivers were born before 1985?".into(),
        "SELECT COUNT(*) FROM drivers T1 WHERE T1.dob < '1985-01-01'".into(),
        format!("SELECT COUNT(*) FROM drivers T1 {JOIN_DRIVERS} WHERE L.dob < '1985-01-01'"),
        "SELECT COUNT(*) FROM drivers T1 \
         WHERE llm_map('What is the date of birth of the driver?', T1.forename, T1.surname) < '1985-01-01'"
            .into(),
        false,
        &["dob"],
    );

    // q22: codes of multi-win drivers (correlated subquery).
    push(
        "List the driver codes of drivers with more than 3 race wins.".into(),
        "SELECT T1.code FROM drivers T1 WHERE \
         (SELECT COUNT(*) FROM results r WHERE r.driver_id = T1.id AND r.position = 1) > 3"
            .into(),
        format!(
            "SELECT L.code FROM drivers T1 {JOIN_DRIVERS} WHERE \
             (SELECT COUNT(*) FROM results r WHERE r.driver_id = T1.id AND r.position = 1) > 3"
        ),
        "SELECT llm_map('What is the driver code?', T1.forename, T1.surname) FROM drivers T1 WHERE \
         (SELECT COUNT(*) FROM results r WHERE r.driver_id = T1.id AND r.position = 1) > 3"
            .into(),
        false,
        &["code"],
    );

    // q23-q24: top-5 drivers by points per nationality (LIMIT).
    for nat in ["British", "German"] {
        push(
            format!("List the top 5 {nat} drivers by total points scored."),
            format!(
                "SELECT T1.forename, T1.surname FROM drivers T1 \
                 JOIN results r ON r.driver_id = T1.id WHERE T1.nationality = '{nat}' \
                 GROUP BY T1.id ORDER BY SUM(r.points) DESC, T1.surname LIMIT 5"
            ),
            format!(
                "SELECT T1.forename, T1.surname FROM drivers T1 \
                 JOIN results r ON r.driver_id = T1.id {JOIN_DRIVERS} \
                 WHERE L.nationality = '{nat}' \
                 GROUP BY T1.id ORDER BY SUM(r.points) DESC, T1.surname LIMIT 5"
            ),
            format!(
                "SELECT T1.forename, T1.surname FROM drivers T1 \
                 JOIN results r ON r.driver_id = T1.id \
                 WHERE llm_map('What is the nationality of the driver?', T1.forename, T1.surname) = '{nat}' \
                 GROUP BY T1.id ORDER BY SUM(r.points) DESC, T1.surname LIMIT 5"
            ),
            true,
            &["nationality"],
        );
    }

    // q25: 5 most recent races in a country (LIMIT).
    push(
        format!("List the 5 most recent races held in {}.", s.a_country),
        format!(
            "SELECT r.race_name FROM races r JOIN circuits c ON r.circuit_id = c.id \
             WHERE c.country = '{0}' ORDER BY r.date DESC, r.race_name LIMIT 5",
            esc(&s.a_country)
        ),
        format!(
            "SELECT r.race_name FROM races r JOIN circuits c ON r.circuit_id = c.id \
             {JOIN_CIRCUITS} WHERE L.country = '{0}' \
             ORDER BY r.date DESC, r.race_name LIMIT 5",
            esc(&s.a_country)
        ),
        format!(
            "SELECT r.race_name FROM races r JOIN circuits c ON r.circuit_id = c.id \
             WHERE llm_map('In which country is the circuit located?', c.circuit_name) = '{0}' \
             ORDER BY r.date DESC, r.race_name LIMIT 5",
            esc(&s.a_country)
        ),
        true,
        &["country"],
    );

    // q26: circuit location city.
    {
        let cname = esc(&s.circuits[2]);
        push(
            format!("In which city is the circuit {} located?", s.circuits[2]),
            format!("SELECT c.location FROM circuits c WHERE c.circuit_name = '{cname}'"),
            format!(
                "SELECT L.location FROM circuits c {JOIN_CIRCUITS} \
                 WHERE c.circuit_name = '{cname}'"
            ),
            format!(
                "SELECT llm_map('In which city is the circuit located?', c.circuit_name) \
                 FROM circuits c WHERE c.circuit_name = '{cname}'"
            ),
            false,
            &["location"],
        );
    }

    // q27: constructor url.
    {
        let cn = esc(&s.constructors[0]);
        push(
            format!("What is the Wikipedia url of the constructor {}?", s.constructors[0]),
            format!(
                "SELECT T1.url FROM constructors T1 WHERE T1.constructor_name = '{cn}'"
            ),
            format!(
                "SELECT L.url FROM constructors T1 \
                 JOIN llm_constructors L ON L.constructor_name = T1.constructor_name \
                 WHERE T1.constructor_name = '{cn}'"
            ),
            format!(
                "SELECT llm_map('What is the Wikipedia url of the constructor?', T1.constructor_name) \
                 FROM constructors T1 WHERE T1.constructor_name = '{cn}'"
            ),
            false,
            &["url"],
        );
    }

    // q28: races in a country during a season.
    push(
        format!("List the names of races held in {} during the {} season.", s.a_country, s.a_year),
        format!(
            "SELECT r.race_name FROM races r JOIN circuits c ON r.circuit_id = c.id \
             WHERE c.country = '{0}' AND r.year = {1}",
            esc(&s.a_country),
            s.a_year
        ),
        format!(
            "SELECT r.race_name FROM races r JOIN circuits c ON r.circuit_id = c.id \
             {JOIN_CIRCUITS} WHERE L.country = '{0}' AND r.year = {1}",
            esc(&s.a_country),
            s.a_year
        ),
        format!(
            "SELECT r.race_name FROM races r JOIN circuits c ON r.circuit_id = c.id \
             WHERE llm_map('In which country is the circuit located?', c.circuit_name) = '{0}' \
             AND r.year = {1}",
            esc(&s.a_country),
            s.a_year
        ),
        false,
        &["country"],
    );

    // q29: constructor nationality count.
    push(
        "How many constructors are German?".into(),
        "SELECT COUNT(*) FROM constructors T1 WHERE T1.nationality = 'German'".into(),
        "SELECT COUNT(*) FROM constructors T1 \
         JOIN llm_constructors L ON L.constructor_name = T1.constructor_name \
         WHERE L.nationality = 'German'"
            .into(),
        "SELECT COUNT(*) FROM constructors T1 \
         WHERE llm_map('What is the nationality of the constructor?', T1.constructor_name) = 'German'"
            .into(),
        false,
        &["nationality"],
    );

    // q30: drivers per nationality.
    push(
        "How many drivers does each nationality have?".into(),
        "SELECT T1.nationality, COUNT(*) FROM drivers T1 GROUP BY T1.nationality".into(),
        format!(
            "SELECT L.nationality, COUNT(*) FROM drivers T1 {JOIN_DRIVERS} \
             GROUP BY L.nationality"
        ),
        "SELECT llm_map('What is the nationality of the driver?', T1.forename, T1.surname), COUNT(*) \
         FROM drivers T1 \
         GROUP BY llm_map('What is the nationality of the driver?', T1.forename, T1.surname)"
            .into(),
        false,
        &["nationality"],
    );

    assert_eq!(qs.len(), 30, "formula 1 question count");
    qs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DomainData {
        generate(&GenConfig::with_scale(0.02))
    }

    #[test]
    fn table_and_drop_counts_match_paper() {
        let d = small();
        assert_eq!(d.table_count(), 13);
        assert_eq!(d.curation.dropped_count(), 12);
    }

    #[test]
    fn questions_well_formed() {
        let d = small();
        assert_eq!(d.questions.len(), 30);
        assert_eq!(d.questions.iter().filter(|q| q.has_limit).count(), 3);
        for q in &d.questions {
            for sql in [&q.gold_sql, &q.hybrid_sql, &q.udf_sql] {
                swan_sqlengine::parser::parse_statement(sql)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{sql}", q.id));
            }
            d.original
                .query(&q.gold_sql)
                .unwrap_or_else(|e| panic!("{} gold failed: {e}", q.id));
        }
    }

    #[test]
    fn point_lookup_gold_answers_are_nonempty() {
        let d = small();
        // Driver-code questions reference sampled real drivers.
        let r = d.original.query(&d.questions[0].gold_sql).unwrap();
        assert_eq!(r.rows.len(), 1);
        let code = r.rows[0][0].render();
        assert_eq!(code.len(), 3);
        assert_eq!(code, code.to_uppercase());
    }

    #[test]
    fn driver_keys_unique() {
        let d = small();
        let t = d.original.catalog().get("drivers").unwrap();
        let f = t.column_index("forename").unwrap();
        let l = t.column_index("surname").unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in &t.rows {
            assert!(seen.insert((row[f].render(), row[l].render())));
        }
    }

    #[test]
    fn five_expansions_cover_twelve_drops() {
        let d = small();
        let generated: usize = d.curation.expansions.iter().map(|e| e.generated.len()).sum();
        assert_eq!(generated, 12, "every dropped column has a generator");
        assert_eq!(d.curation.expansions.len(), 5);
    }

    #[test]
    fn results_positions_are_dense_per_race() {
        let d = small();
        let t = d.original.catalog().get("results").unwrap();
        let race_i = t.column_index("race_id").unwrap();
        let pos_i = t.column_index("position").unwrap();
        let mut first_race: Vec<i64> = t
            .rows
            .iter()
            .filter(|r| r[race_i] == Value::Integer(1))
            .map(|r| r[pos_i].as_i64().unwrap())
            .collect();
        first_race.sort();
        let n = first_race.len();
        assert!(n >= 10);
        assert_eq!(first_race, (1..=n as i64).collect::<Vec<_>>());
    }
}
