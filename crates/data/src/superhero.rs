//! The Superhero benchmark domain (10 tables, ≈1 061 rows/table at scale
//! 1.0, 11 dropped columns — Table 1).
//!
//! Curation mirrors the paper's §3.2 example precisely: the FK id columns
//! (`publisher_id`, colour/race/gender/alignment ids) are dropped from
//! `superhero`, and the `publisher` and `hero_power` tables are removed —
//! while the lookup tables carrying distinct values (colour, race, gender,
//! alignment, superpower) survive so their value lists can be put in
//! prompts (§3.3). The LLM-facing key is `(superhero_name, full_name)`
//! (§3.4), and the expansion's 10-field row matches the §4.1.1 prompt.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swan_sqlengine::{Database, Value};

use crate::builder::*;
use crate::namegen::{self, UniqueNames};
use crate::types::*;

pub const DB_NAME: &str = "superhero";

pub const PUBLISHERS: &[&str] = &[
    "Marvel Comics", "DC Comics", "Dark Horse Comics", "Image Comics", "IDW Publishing",
    "Valiant Comics", "Dynamite Entertainment", "Boom Studios", "Oni Press", "Archie Comics",
    "Top Cow", "Wildstorm",
];

pub const COLOURS: &[&str] = &[
    "Blue", "Brown", "Green", "Black", "Red", "Grey", "Hazel", "Amber", "White", "Yellow",
    "Purple", "Violet", "Gold", "Silver", "No Colour",
];

pub const RACES: &[&str] = &[
    "Human", "Mutant", "Android", "Alien", "Atlantean", "Asgardian", "Kryptonian", "Amazon",
    "Demon", "God", "Cyborg", "Inhuman", "Symbiote", "Vampire", "Eternal", "Clone", "Martian",
    "Saiyan", "Frost Giant", "Celestial",
];

pub const GENDERS: &[&str] = &["Male", "Female", "Non-Binary"];
pub const ALIGNMENTS: &[&str] = &["Good", "Bad", "Neutral"];

/// Generate the Superhero domain.
pub fn generate(cfg: &GenConfig) -> DomainData {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EE0_0001);
    let n_heroes = cfg.rows(750, 60);

    let mut original = Database::new();
    create_table(&mut original, "publisher", &["id", "publisher_name"], &["id"]);
    create_table(&mut original, "colour", &["id", "colour"], &["id"]);
    create_table(&mut original, "race", &["id", "race"], &["id"]);
    create_table(&mut original, "gender", &["id", "gender"], &["id"]);
    create_table(&mut original, "alignment", &["id", "alignment"], &["id"]);
    create_table(&mut original, "superpower", &["id", "power_name"], &["id"]);
    create_table(&mut original, "attribute", &["id", "attribute_name"], &["id"]);
    create_table(
        &mut original,
        "superhero",
        &[
            "id", "superhero_name", "full_name", "height_cm", "weight_kg", "eye_colour_id",
            "hair_colour_id", "skin_colour_id", "race_id", "publisher_id", "gender_id",
            "alignment_id",
        ],
        &["id"],
    );
    create_table(&mut original, "hero_power", &["hero_id", "power_id"], &[]);
    create_table(
        &mut original,
        "hero_attribute",
        &["hero_id", "attribute_id", "attribute_value"],
        &[],
    );

    let lookup = |items: &[&str]| -> Vec<Vec<Value>> {
        items
            .iter()
            .enumerate()
            .map(|(i, v)| vec![Value::Integer(i as i64 + 1), Value::text(*v)])
            .collect()
    };
    insert_rows(&mut original, "publisher", lookup(PUBLISHERS));
    insert_rows(&mut original, "colour", lookup(COLOURS));
    insert_rows(&mut original, "race", lookup(RACES));
    insert_rows(&mut original, "gender", lookup(GENDERS));
    insert_rows(&mut original, "alignment", lookup(ALIGNMENTS));
    insert_rows(&mut original, "superpower", lookup(namegen::POWERS));
    const ATTRIBUTES: &[&str] =
        &["Intelligence", "Strength", "Speed", "Durability", "Power", "Combat"];
    insert_rows(&mut original, "attribute", lookup(ATTRIBUTES));

    // Eye/hair colours skew toward common values, like the real dataset.
    let common_colour = |rng: &mut SmallRng| -> usize {
        if rng.gen_bool(0.7) {
            rng.gen_range(0..6)
        } else {
            rng.gen_range(0..COLOURS.len())
        }
    };

    let mut hero_names = UniqueNames::new();
    let mut hero_rows = Vec::with_capacity(n_heroes);
    let mut power_rows = Vec::new();
    let mut attr_rows = Vec::new();
    let mut facts = Vec::new();
    let mut popularity = Vec::new();

    for i in 0..n_heroes {
        let hero = hero_names.claim(namegen::hero_name(&mut rng));
        let full = namegen::person_name(&mut rng);
        let key = vec![hero.clone(), full.clone()];

        let eye = common_colour(&mut rng);
        let hair = common_colour(&mut rng);
        let skin = if rng.gen_bool(0.75) { COLOURS.len() - 1 } else { rng.gen_range(0..COLOURS.len()) };
        let race = rng.gen_range(0..RACES.len());
        let publisher = rng.gen_range(0..PUBLISHERS.len());
        let gender = if rng.gen_bool(0.62) { 0 } else if rng.gen_bool(0.92) { 1 } else { 2 };
        let alignment = if rng.gen_bool(0.6) { 0 } else if rng.gen_bool(0.6) { 1 } else { 2 };
        let height = rng.gen_range(150..=210);
        let weight = rng.gen_range(45..=180);

        hero_rows.push(vec![
            Value::Integer(i as i64 + 1),
            Value::text(&hero),
            Value::text(&full),
            Value::Integer(height),
            Value::Integer(weight),
            Value::Integer(eye as i64 + 1),
            Value::Integer(hair as i64 + 1),
            Value::Integer(skin as i64 + 1),
            Value::Integer(race as i64 + 1),
            Value::Integer(publisher as i64 + 1),
            Value::Integer(gender as i64 + 1),
            Value::Integer(alignment as i64 + 1),
        ]);

        // Powers: 3..=10 distinct (Bird's hero_power averages ~7/hero).
        let n_powers = rng.gen_range(3..=10usize);
        let mut chosen = Vec::new();
        while chosen.len() < n_powers {
            let p = rng.gen_range(0..namegen::POWERS.len());
            if !chosen.contains(&p) {
                chosen.push(p);
            }
        }
        for &p in &chosen {
            power_rows.push(vec![Value::Integer(i as i64 + 1), Value::Integer(p as i64 + 1)]);
        }

        for (ai, _) in ATTRIBUTES.iter().enumerate() {
            attr_rows.push(vec![
                Value::Integer(i as i64 + 1),
                Value::Integer(ai as i64 + 1),
                Value::Integer(rng.gen_range(5..=100)),
            ]);
        }

        facts.push(fact1(&key, "eye_colour", COLOURS[eye]));
        facts.push(fact1(&key, "hair_colour", COLOURS[hair]));
        facts.push(fact1(&key, "skin_colour", COLOURS[skin]));
        facts.push(fact1(&key, "publisher_name", PUBLISHERS[publisher]));
        facts.push(fact1(&key, "race", RACES[race]));
        facts.push(fact1(&key, "gender", GENDERS[gender]));
        facts.push(fact1(&key, "moral_alignment", ALIGNMENTS[alignment]));
        facts.push(fact_many(
            &key,
            "powers",
            chosen.iter().map(|&p| namegen::POWERS[p].to_string()).collect(),
        ));

        popularity.push((key, popularity_from_percentile(rng.gen::<f64>())));
    }
    insert_rows(&mut original, "superhero", hero_rows);
    insert_rows(&mut original, "hero_power", power_rows);
    insert_rows(&mut original, "hero_attribute", attr_rows);

    // ---- curation (§3.2) ---------------------------------------------------
    let text_list = |items: &[&str]| items.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    let curation = CurationSpec {
        dropped_columns: [
            "eye_colour_id",
            "hair_colour_id",
            "skin_colour_id",
            "race_id",
            "publisher_id",
            "gender_id",
            "alignment_id",
        ]
        .iter()
        .map(|c| ("superhero".to_string(), c.to_string()))
        .collect(),
        dropped_tables: vec![("publisher".into(), 2), ("hero_power".into(), 2)],
        expansions: vec![Expansion {
            table: "llm_superhero".into(),
            base_table: "superhero".into(),
            key_columns: vec!["superhero_name".into(), "full_name".into()],
            generated: vec![
                GenColumn::selection("eye_colour", text_list(COLOURS)),
                GenColumn::selection("hair_colour", text_list(COLOURS)),
                GenColumn::selection("skin_colour", text_list(COLOURS)),
                GenColumn::selection("publisher_name", text_list(PUBLISHERS)),
                GenColumn::selection("race", text_list(RACES)),
                GenColumn::selection("gender", text_list(GENDERS)),
                GenColumn::selection("moral_alignment", text_list(ALIGNMENTS)),
                GenColumn::multi("powers", text_list(namegen::POWERS)),
            ],
        }],
    };
    let curated = apply_curation(&original, &curation);

    // Prominent heroes for the point-lookup questions.
    let mut ranked: Vec<&(Vec<String>, f64)> = popularity.iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let sample: Vec<Vec<String>> = ranked.iter().take(4).map(|(k, _)| k.clone()).collect();

    let phrases = phrases();
    let questions = questions(&sample);

    DomainData {
        name: DB_NAME.into(),
        display_name: "Super Hero".into(),
        original,
        curated,
        curation,
        facts,
        popularity,
        phrases,
        questions,
    }
}

/// NL question phrasings for UDF resolution, including paraphrases used by
/// the caching ablation (§4.3: "Is the superhero from the Marvel
/// Universe?" vs "Does the hero come from Marvel?").
fn phrases() -> Vec<QuestionPhrase> {
    let p = |text: &str, attr: &str| QuestionPhrase { text: text.into(), attribute: attr.into() };
    vec![
        p("Which publisher published the superhero?", "publisher_name"),
        p("Is the superhero from the Marvel Universe?", "publisher_name"),
        p("Does the hero come from Marvel?", "publisher_name"),
        p("What is the eye colour of the superhero?", "eye_colour"),
        p("What is the hair colour of the superhero?", "hair_colour"),
        p("What is the skin colour of the superhero?", "skin_colour"),
        p("What is the race of the superhero?", "race"),
        p("What is the gender of the superhero?", "gender"),
        p("What is the moral alignment of the superhero?", "moral_alignment"),
        p("What are the superpowers of the superhero?", "powers"),
    ]
}

const JOIN_LLM: &str =
    "JOIN llm_superhero L ON L.superhero_name = T1.superhero_name AND L.full_name = T1.full_name";

fn udf(question: &str) -> String {
    let question = question.replace('\'', "''");
    format!("llm_map('{question}', T1.superhero_name, T1.full_name)")
}

/// The 30 Superhero beyond-database questions (3 with LIMIT ≈ the paper's
/// "about one-tenth").
fn questions(sample: &[Vec<String>]) -> Vec<Question> {
    let mut qs = Vec::with_capacity(30);
    let mut push = |text: String,
                    gold: String,
                    hybrid: String,
                    udf_sql: String,
                    has_limit: bool,
                    attrs: &[&str]| {
        let id = format!("superhero_q{:02}", qs.len() + 1);
        // Tag the llm_map question text with the question id: BlendSQL
        // prompts are authored per question, so their exact-prompt cache
        // cannot reuse generations across questions (paper 5.5).
        let udf_sql = udf_sql.replace("llm_map('", &format!("llm_map('[{id}] "));
        qs.push(Question {
            id,
            db: DB_NAME.into(),
            text,
            gold_sql: gold,
            hybrid_sql: hybrid,
            udf_sql,
            has_limit,
            attributes: attrs.iter().map(|s| s.to_string()).collect(),
        });
    };

    // q01-q03: publisher membership.
    for publisher in ["Marvel Comics", "DC Comics", "Dark Horse Comics"] {
        push(
            format!("List the names of all superheroes published by {publisher}."),
            format!(
                "SELECT T1.superhero_name FROM superhero T1 \
                 JOIN publisher T2 ON T1.publisher_id = T2.id \
                 WHERE T2.publisher_name = '{publisher}'"
            ),
            format!(
                "SELECT T1.superhero_name FROM superhero T1 {JOIN_LLM} \
                 WHERE L.publisher_name = '{publisher}'"
            ),
            format!(
                "SELECT T1.superhero_name FROM superhero T1 \
                 WHERE {} = '{publisher}'",
                udf("Which publisher published the superhero?")
            ),
            false,
            &["publisher_name"],
        );
    }

    // q04-q06: eye-colour counts.
    for colour in ["Blue", "Green", "Brown"] {
        push(
            format!("How many superheroes have {colour} eyes?"),
            format!(
                "SELECT COUNT(*) FROM superhero T1 \
                 JOIN colour c ON T1.eye_colour_id = c.id WHERE c.colour = '{colour}'"
            ),
            format!(
                "SELECT COUNT(*) FROM superhero T1 {JOIN_LLM} WHERE L.eye_colour = '{colour}'"
            ),
            format!(
                "SELECT COUNT(*) FROM superhero T1 WHERE {} = '{colour}'",
                udf("What is the eye colour of the superhero?")
            ),
            false,
            &["eye_colour"],
        );
    }

    // q07-q08: point lookups on famous heroes (eye / hair colour).
    for (i, attr, question, gold_col, llm_col) in [
        (0usize, "eye_colour", "What is the eye colour of the superhero?", "eye_colour_id", "eye_colour"),
        (1usize, "hair_colour", "What is the hair colour of the superhero?", "hair_colour_id", "hair_colour"),
    ] {
        let (hero, full) = (sample[i][0].replace('\'', "''"), sample[i][1].replace('\'', "''"));
        push(
            format!("What is the {} of {}?", attr.replace('_', " "), sample[i][0]),
            format!(
                "SELECT c.colour FROM superhero T1 \
                 JOIN colour c ON T1.{gold_col} = c.id \
                 WHERE T1.superhero_name = '{hero}' AND T1.full_name = '{full}'"
            ),
            format!(
                "SELECT L.{llm_col} FROM superhero T1 {JOIN_LLM} \
                 WHERE T1.superhero_name = '{hero}' AND T1.full_name = '{full}'"
            ),
            format!(
                "SELECT {} FROM superhero T1 \
                 WHERE T1.superhero_name = '{hero}' AND T1.full_name = '{full}'",
                udf(question)
            ),
            false,
            &[attr],
        );
    }

    // q09-q10: gender + publisher.
    for (gender, publisher) in [("Female", "Marvel Comics"), ("Male", "DC Comics")] {
        push(
            format!("List the full names of {gender} superheroes published by {publisher}."),
            format!(
                "SELECT T1.full_name FROM superhero T1 \
                 JOIN gender g ON T1.gender_id = g.id \
                 JOIN publisher p ON T1.publisher_id = p.id \
                 WHERE g.gender = '{gender}' AND p.publisher_name = '{publisher}'"
            ),
            format!(
                "SELECT T1.full_name FROM superhero T1 {JOIN_LLM} \
                 WHERE L.gender = '{gender}' AND L.publisher_name = '{publisher}'"
            ),
            format!(
                "SELECT T1.full_name FROM superhero T1 \
                 WHERE {} = '{gender}' AND {} = '{publisher}'",
                udf("What is the gender of the superhero?"),
                udf("Which publisher published the superhero?")
            ),
            false,
            &["gender", "publisher_name"],
        );
    }

    // q11-q12: alignment counts.
    for alignment in ["Good", "Bad"] {
        push(
            format!("How many superheroes have a {alignment} moral alignment?"),
            format!(
                "SELECT COUNT(*) FROM superhero T1 \
                 JOIN alignment a ON T1.alignment_id = a.id WHERE a.alignment = '{alignment}'"
            ),
            format!(
                "SELECT COUNT(*) FROM superhero T1 {JOIN_LLM} \
                 WHERE L.moral_alignment = '{alignment}'"
            ),
            format!(
                "SELECT COUNT(*) FROM superhero T1 WHERE {} = '{alignment}'",
                udf("What is the moral alignment of the superhero?")
            ),
            false,
            &["moral_alignment"],
        );
    }

    // q13: one race list question.
    {
        let race = "Human";
        push(
            format!("List the names of superheroes whose race is {race}."),
            format!(
                "SELECT T1.superhero_name FROM superhero T1 \
                 JOIN race r ON T1.race_id = r.id WHERE r.race = '{race}'"
            ),
            format!(
                "SELECT T1.superhero_name FROM superhero T1 {JOIN_LLM} WHERE L.race = '{race}'"
            ),
            format!(
                "SELECT T1.superhero_name FROM superhero T1 WHERE {} = '{race}'",
                udf("What is the race of the superhero?")
            ),
            false,
            &["race"],
        );
    }
    // q14: race point lookup on a famous hero.
    {
        let (hero, full) = (sample[2][0].replace('\'', "''"), sample[2][1].replace('\'', "''"));
        push(
            format!("What is the race of {}?", sample[2][0]),
            format!(
                "SELECT r.race FROM superhero T1 \
                 JOIN race r ON T1.race_id = r.id \
                 WHERE T1.superhero_name = '{hero}' AND T1.full_name = '{full}'"
            ),
            format!(
                "SELECT L.race FROM superhero T1 {JOIN_LLM} \
                 WHERE T1.superhero_name = '{hero}' AND T1.full_name = '{full}'"
            ),
            format!(
                "SELECT {} FROM superhero T1 \
                 WHERE T1.superhero_name = '{hero}' AND T1.full_name = '{full}'",
                udf("What is the race of the superhero?")
            ),
            false,
            &["race"],
        );
    }

    // q15-q17: power membership (one-to-many attribute).
    for power in ["Flight", "Super Strength", "Telepathy"] {
        push(
            format!("Which superheroes have the power of {power}?"),
            format!(
                "SELECT T1.superhero_name FROM superhero T1 \
                 JOIN hero_power hp ON hp.hero_id = T1.id \
                 JOIN superpower sp ON sp.id = hp.power_id \
                 WHERE sp.power_name = '{power}'"
            ),
            format!(
                "SELECT T1.superhero_name FROM superhero T1 {JOIN_LLM} \
                 WHERE L.powers LIKE '%{power}%'"
            ),
            format!(
                "SELECT T1.superhero_name FROM superhero T1 WHERE {} LIKE '%{power}%'",
                udf("What are the superpowers of the superhero?")
            ),
            false,
            &["powers"],
        );
    }

    // q18-q19: gender counts per publisher.
    for (gender, publisher) in [("Female", "DC Comics"), ("Male", "Marvel Comics")] {
        push(
            format!("How many {gender} superheroes did {publisher} publish?"),
            format!(
                "SELECT COUNT(*) FROM superhero T1 \
                 JOIN gender g ON T1.gender_id = g.id \
                 JOIN publisher p ON T1.publisher_id = p.id \
                 WHERE g.gender = '{gender}' AND p.publisher_name = '{publisher}'"
            ),
            format!(
                "SELECT COUNT(*) FROM superhero T1 {JOIN_LLM} \
                 WHERE L.gender = '{gender}' AND L.publisher_name = '{publisher}'"
            ),
            format!(
                "SELECT COUNT(*) FROM superhero T1 \
                 WHERE {} = '{gender}' AND {} = '{publisher}'",
                udf("What is the gender of the superhero?"),
                udf("Which publisher published the superhero?")
            ),
            false,
            &["gender", "publisher_name"],
        );
    }

    // q20-q22: LIMIT questions (≈1/10 of the set, §5.3).
    for publisher in ["Marvel Comics", "DC Comics"] {
        push(
            format!("List the names of the 5 tallest superheroes published by {publisher}."),
            format!(
                "SELECT T1.superhero_name FROM superhero T1 \
                 JOIN publisher p ON T1.publisher_id = p.id \
                 WHERE p.publisher_name = '{publisher}' \
                 ORDER BY T1.height_cm DESC, T1.superhero_name LIMIT 5"
            ),
            format!(
                "SELECT T1.superhero_name FROM superhero T1 {JOIN_LLM} \
                 WHERE L.publisher_name = '{publisher}' \
                 ORDER BY T1.height_cm DESC, T1.superhero_name LIMIT 5"
            ),
            format!(
                "SELECT T1.superhero_name FROM superhero T1 \
                 WHERE {} = '{publisher}' \
                 ORDER BY T1.height_cm DESC, T1.superhero_name LIMIT 5",
                udf("Which publisher published the superhero?")
            ),
            true,
            &["publisher_name"],
        );
    }
    push(
        "List the names of the 3 heaviest superheroes with Blue eyes.".into(),
        "SELECT T1.superhero_name FROM superhero T1 \
         JOIN colour c ON T1.eye_colour_id = c.id WHERE c.colour = 'Blue' \
         ORDER BY T1.weight_kg DESC, T1.superhero_name LIMIT 3"
            .into(),
        format!(
            "SELECT T1.superhero_name FROM superhero T1 {JOIN_LLM} \
             WHERE L.eye_colour = 'Blue' \
             ORDER BY T1.weight_kg DESC, T1.superhero_name LIMIT 3"
        ),
        format!(
            "SELECT T1.superhero_name FROM superhero T1 WHERE {} = 'Blue' \
             ORDER BY T1.weight_kg DESC, T1.superhero_name LIMIT 3",
            udf("What is the eye colour of the superhero?")
        ),
        true,
        &["eye_colour"],
    );

    // q23-q24: publisher + alignment counts.
    for (publisher, alignment) in [("Marvel Comics", "Bad"), ("DC Comics", "Good")] {
        push(
            format!("How many superheroes published by {publisher} are {alignment}?"),
            format!(
                "SELECT COUNT(*) FROM superhero T1 \
                 JOIN publisher p ON T1.publisher_id = p.id \
                 JOIN alignment a ON T1.alignment_id = a.id \
                 WHERE p.publisher_name = '{publisher}' AND a.alignment = '{alignment}'"
            ),
            format!(
                "SELECT COUNT(*) FROM superhero T1 {JOIN_LLM} \
                 WHERE L.publisher_name = '{publisher}' AND L.moral_alignment = '{alignment}'"
            ),
            format!(
                "SELECT COUNT(*) FROM superhero T1 \
                 WHERE {} = '{publisher}' AND {} = '{alignment}'",
                udf("Which publisher published the superhero?"),
                udf("What is the moral alignment of the superhero?")
            ),
            false,
            &["publisher_name", "moral_alignment"],
        );
    }

    // q25: alignment + power.
    push(
        "List the names of Neutral superheroes with the power of Flight.".into(),
        "SELECT T1.superhero_name FROM superhero T1 \
         JOIN alignment a ON T1.alignment_id = a.id \
         JOIN hero_power hp ON hp.hero_id = T1.id \
         JOIN superpower sp ON sp.id = hp.power_id \
         WHERE a.alignment = 'Neutral' AND sp.power_name = 'Flight'"
            .into(),
        format!(
            "SELECT T1.superhero_name FROM superhero T1 {JOIN_LLM} \
             WHERE L.moral_alignment = 'Neutral' AND L.powers LIKE '%Flight%'"
        ),
        format!(
            "SELECT T1.superhero_name FROM superhero T1 \
             WHERE {} = 'Neutral' AND {} LIKE '%Flight%'",
            udf("What is the moral alignment of the superhero?"),
            udf("What are the superpowers of the superhero?")
        ),
        false,
        &["moral_alignment", "powers"],
    );

    // q26-q27: aggregates over a generated filter.
    for publisher in ["Marvel Comics", "DC Comics"] {
        push(
            format!("What is the average height of superheroes published by {publisher}?"),
            format!(
                "SELECT AVG(T1.height_cm) FROM superhero T1 \
                 JOIN publisher p ON T1.publisher_id = p.id \
                 WHERE p.publisher_name = '{publisher}'"
            ),
            format!(
                "SELECT AVG(T1.height_cm) FROM superhero T1 {JOIN_LLM} \
                 WHERE L.publisher_name = '{publisher}'"
            ),
            format!(
                "SELECT AVG(T1.height_cm) FROM superhero T1 WHERE {} = '{publisher}'",
                udf("Which publisher published the superhero?")
            ),
            false,
            &["publisher_name"],
        );
    }

    // q28: alignment point lookup on a famous hero.
    {
        let (hero, full) = (sample[3][0].replace('\'', "''"), sample[3][1].replace('\'', "''"));
        push(
            format!("What is the moral alignment of {}?", sample[3][0]),
            format!(
                "SELECT a.alignment FROM superhero T1 \
                 JOIN alignment a ON T1.alignment_id = a.id \
                 WHERE T1.superhero_name = '{hero}' AND T1.full_name = '{full}'"
            ),
            format!(
                "SELECT L.moral_alignment FROM superhero T1 {JOIN_LLM} \
                 WHERE T1.superhero_name = '{hero}' AND T1.full_name = '{full}'"
            ),
            format!(
                "SELECT {} FROM superhero T1 \
                 WHERE T1.superhero_name = '{hero}' AND T1.full_name = '{full}'",
                udf("What is the moral alignment of the superhero?")
            ),
            false,
            &["moral_alignment"],
        );
    }

    // q29: conjunction of two generated attributes.
    push(
        "List the names of superheroes with Blue eyes and a Good alignment.".into(),
        "SELECT T1.superhero_name FROM superhero T1 \
         JOIN colour c ON T1.eye_colour_id = c.id \
         JOIN alignment a ON T1.alignment_id = a.id \
         WHERE c.colour = 'Blue' AND a.alignment = 'Good'"
            .into(),
        format!(
            "SELECT T1.superhero_name FROM superhero T1 {JOIN_LLM} \
             WHERE L.eye_colour = 'Blue' AND L.moral_alignment = 'Good'"
        ),
        format!(
            "SELECT T1.superhero_name FROM superhero T1 \
             WHERE {} = 'Blue' AND {} = 'Good'",
            udf("What is the eye colour of the superhero?"),
            udf("What is the moral alignment of the superhero?")
        ),
        false,
        &["eye_colour", "moral_alignment"],
    );

    // q30: group-by over a generated attribute.
    push(
        "How many superheroes does each publisher have?".into(),
        "SELECT p.publisher_name, COUNT(*) FROM superhero T1 \
         JOIN publisher p ON T1.publisher_id = p.id \
         GROUP BY p.publisher_name"
            .into(),
        format!(
            "SELECT L.publisher_name, COUNT(*) FROM superhero T1 {JOIN_LLM} \
             GROUP BY L.publisher_name"
        ),
        format!(
            "SELECT {pub_call}, COUNT(*) FROM superhero T1 GROUP BY {pub_call}",
            pub_call = udf("Which publisher published the superhero?")
        ),
        false,
        &["publisher_name"],
    );

    assert_eq!(qs.len(), 30, "superhero question count");
    qs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DomainData {
        generate(&GenConfig::with_scale(0.1))
    }

    #[test]
    fn table_counts_match_paper() {
        let d = small();
        assert_eq!(d.original.catalog().len(), 10, "10 tables before curation");
        assert_eq!(d.table_count(), 8, "publisher and hero_power dropped");
        assert_eq!(d.curation.dropped_count(), 11, "Table 1: 11 dropped");
    }

    #[test]
    fn questions_are_30_with_paper_limit_share() {
        let d = small();
        assert_eq!(d.questions.len(), 30);
        let limits = d.questions.iter().filter(|q| q.has_limit).count();
        assert_eq!(limits, 3, "about one-tenth with LIMIT (§5.3)");
    }

    #[test]
    fn all_sql_parses() {
        let d = small();
        for q in &d.questions {
            for sql in [&q.gold_sql, &q.hybrid_sql, &q.udf_sql] {
                swan_sqlengine::parser::parse_statement(sql)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{sql}", q.id));
            }
        }
    }

    #[test]
    fn gold_queries_run_on_original() {
        let d = small();
        for q in &d.questions {
            d.original
                .query(&q.gold_sql)
                .unwrap_or_else(|e| panic!("{} gold failed: {e}", q.id));
        }
    }

    #[test]
    fn hero_keys_are_unique_and_non_null() {
        let d = small();
        let t = d.original.catalog().get("superhero").unwrap();
        let hn = t.column_index("superhero_name").unwrap();
        let fnm = t.column_index("full_name").unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in &t.rows {
            let k = (row[hn].render(), row[fnm].render());
            assert!(!k.0.is_empty() && !k.1.is_empty());
            assert!(seen.insert(k), "duplicate key");
        }
    }

    #[test]
    fn facts_cover_every_hero_and_attribute() {
        let d = small();
        let heroes = d.original.catalog().get("superhero").unwrap().len();
        assert_eq!(d.facts.len(), heroes * 8, "8 generated attributes per hero");
        assert_eq!(d.popularity.len(), heroes);
    }

    #[test]
    fn curated_db_cannot_answer_gold_queries() {
        let d = small();
        // The first question's gold SQL references the dropped publisher table.
        assert!(d.curated.query(&d.questions[0].gold_sql).is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GenConfig::with_scale(0.05));
        let b = generate(&GenConfig::with_scale(0.05));
        let ta = a.original.catalog().get("superhero").unwrap();
        let tb = b.original.catalog().get("superhero").unwrap();
        assert_eq!(ta.rows, tb.rows);
    }

    #[test]
    fn expansion_matches_paper_prompt_shape() {
        let d = small();
        let e = &d.curation.expansions[0];
        assert_eq!(e.all_columns().len(), 10, "10 fields as in the §4.1.1 prompt");
        assert_eq!(e.key_columns, vec!["superhero_name", "full_name"]);
    }

    #[test]
    fn value_lists_match_lookup_tables() {
        let d = small();
        let publishers = crate::builder::distinct_texts(&d.original, "publisher", "publisher_name");
        let e = &d.curation.expansions[0];
        let pub_col = e.generated.iter().find(|g| g.name == "publisher_name").unwrap();
        let mut expected = pub_col.value_list.clone().unwrap();
        expected.sort();
        assert_eq!(publishers, expected);
    }
}
