#!/usr/bin/env bash
# CI gate: tier-1 verification plus the serial≡parallel differential
# harness pinned at both ends of the thread matrix.
#
#   scripts/ci.sh            # full gate
#   SWAN_SEED=12345 scripts/ci.sh   # replay a failing property stream
#
# Stages:
#   0. swan-analyze: the workspace seam lints (ANALYSIS.md) — raw
#      std::fs/clock/thread use outside the Vfs/Clock/pool seams,
#      panic-family calls on commit/recovery paths, undocumented
#      `unsafe`, unranked locks. Any finding fails the gate before a
#      single test runs;
#   1. tier-1: release build + workspace test suite (ROADMAP contract);
#   2. the differential harness (crates/sqlengine/tests/parallel_diff.rs)
#      re-run explicitly with SWAN_THREADS=1 and SWAN_THREADS=8 — the
#      env var drives every default-config statement through the serial
#      and the 8-way morsel-parallel executor respectively, on top of
#      the harness's own per-test thread configs;
#   3. the SharedDb concurrency stress suite (multi-statement
#      transaction conflict/retry, torn-commit visibility, MVCC
#      history GC, leader install handback) and the row-level conflict
#      regression suite (disjoint-PK transactions must not abort), both
#      under SWAN_LOCKDEP=1, plus the cross-session llm_map
#      single-flight test;
#   4. the WAL crash-recovery harness (torn-tail truncation sweep at
#      every byte offset of the final commit record group, durable
#      transactions, auto-checkpoint compaction);
#   5. the crash-simulation harness (crates/sqlengine/tests/crash_sim.rs):
#      a fault — transient error or crash with a configurable torn write —
#      injected at EVERY SimFs operation index of the commit, checkpoint,
#      concurrent group-commit and recovery schedules (plus the two-fault
#      dir-sync-fails-then-crash schedule), asserting recovery is always
#      a clean prefix of acknowledged commits;
#   6. the golden SQL suite (tests/slt/*.slt), each file executed on the
#      serial and the 8-thread engine with byte-identical output — then
#      the slt suite and the differential harness again with
#      SWAN_COLUMNAR=0 and =1, so both the columnar kernels and the
#      bit-for-bit row fallback stay pinned to the same goldens;
#   7. the LLM fault-sweep harness (tests/llm_fault_sim.rs): every
#      ModelFault kind injected at every call index of a fixed workload,
#      serial and 8-thread-parallel and concurrent-session single-flight,
#      on a virtual clock — no hangs, failed calls never cached, retries
#      respect the statement deadline, breaker transitions match the
#      fault script;
#   8. one release-build workspace test pass with SWAN_LOCKDEP=1: the
#      runtime lock-order validator (rank inversions + order cycles,
#      normally debug-only) active under the optimized build's real
#      interleavings.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== swan-analyze: workspace seam lints =="
cargo run -q -p swan-analyze -- --workspace

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: workspace tests =="
cargo test --workspace -q

echo "== differential harness @ SWAN_THREADS=1 (serial engine) =="
SWAN_THREADS=1 cargo test -q -p swan-sqlengine --test parallel_diff

echo "== differential harness @ SWAN_THREADS=8 (morsel-parallel engine) =="
SWAN_THREADS=8 cargo test -q -p swan-sqlengine --test parallel_diff

echo "== SharedDb concurrency + transaction stress (lock-order validated) =="
SWAN_LOCKDEP=1 cargo test -q -p swan-sqlengine --test shared_db_stress

echo "== row-level conflict regression suite (lock-order validated) =="
SWAN_LOCKDEP=1 cargo test -q -p swan-sqlengine --test row_conflicts

echo "== WAL crash-recovery harness =="
cargo test -q -p swan-sqlengine --test wal_recovery

echo "== crash-simulation harness (SimFs fault sweep) =="
cargo test -q -p swan-sqlengine --test crash_sim

echo "== golden SQL suite @ 1 and 8 threads =="
cargo test -q -p swan-sqlengine --test slt

echo "== columnar execution off/on: golden SQL suite =="
SWAN_COLUMNAR=0 cargo test -q -p swan-sqlengine --test slt
SWAN_COLUMNAR=1 cargo test -q -p swan-sqlengine --test slt

echo "== columnar execution off/on: differential harness =="
SWAN_COLUMNAR=0 cargo test -q -p swan-sqlengine --test parallel_diff
SWAN_COLUMNAR=1 cargo test -q -p swan-sqlengine --test parallel_diff

echo "== paged storage off/on: golden SQL suite =="
SWAN_PAGER=0 cargo test -q -p swan-sqlengine --test slt
SWAN_PAGER=1 cargo test -q -p swan-sqlengine --test slt

echo "== paged storage off/on: differential harness =="
SWAN_PAGER=0 cargo test -q -p swan-sqlengine --test parallel_diff
SWAN_PAGER=1 cargo test -q -p swan-sqlengine --test parallel_diff

echo "== paged storage off/on: crash-simulation harness =="
SWAN_PAGER=0 cargo test -q -p swan-sqlengine --test crash_sim
SWAN_PAGER=1 cargo test -q -p swan-sqlengine --test crash_sim

echo "== paged storage off/on: integration suite =="
SWAN_PAGER=0 cargo test -q -p swan-sqlengine --test paged_storage
SWAN_PAGER=1 cargo test -q -p swan-sqlengine --test paged_storage

echo "== binary row + column codec round-trip properties =="
cargo test -q -p swan-sqlengine --test prop_codec

echo "== cross-session llm_map single-flight =="
cargo test -q --test concurrency

echo "== LLM fault-sweep harness (deterministic, virtual clock) =="
cargo test -q --test llm_fault_sim

echo "== workspace tests @ SWAN_LOCKDEP=1 (release, lock-order validated) =="
SWAN_LOCKDEP=1 cargo test --workspace -q --release

echo "CI gate passed."
