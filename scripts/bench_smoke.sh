#!/usr/bin/env bash
# Perf smoke test: run the engine microbenchmarks and the join-scaling
# sweep in quick mode (~10x shorter measurement windows), so a regression
# in the zero-copy execution core is one command to spot:
#
#   scripts/bench_smoke.sh            # both benches, quick
#   scripts/bench_smoke.sh hash_join  # only benchmarks matching a filter
#
# Compare the output against the before/after table in
# crates/sqlengine/PERF.md.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-}"

run() {
    local bench="$1"
    echo "== $bench (quick) =="
    if [ -n "$FILTER" ]; then
        CRITERION_QUICK=1 cargo bench -p swan-bench --bench "$bench" -- --quick "$FILTER"
    else
        CRITERION_QUICK=1 cargo bench -p swan-bench --bench "$bench" -- --quick
    fi
    echo
}

run engine_micro
run join_scaling
