#!/usr/bin/env bash
# Perf smoke test: run the engine microbenchmarks, the join-scaling sweep
# (quick mode, ~10x shorter measurement windows), and the fallback-path
# UDF batching bench, so a regression in the zero-copy execution core or
# in batched expensive-UDF execution is one command to spot:
#
#   scripts/bench_smoke.sh            # all benches, quick
#   scripts/bench_smoke.sh hash_join  # only criterion benchmarks matching a filter
#
# Compare the output against the before/after tables in
# crates/sqlengine/PERF.md. The udf_fallback table prints model-call
# counts: "per-row fallback" at N heroes and "engine invoke_batch" at
# ceil(N/5) — if the batched row's call count climbs back toward the
# per-row row's, engine batching has regressed.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-}"

run() {
    local bench="$1"
    echo "== $bench (quick) =="
    if [ -n "$FILTER" ]; then
        CRITERION_QUICK=1 cargo bench -p swan-bench --bench "$bench" -- --quick "$FILTER"
    else
        CRITERION_QUICK=1 cargo bench -p swan-bench --bench "$bench" -- --quick
    fi
    echo
}

run engine_micro
run join_scaling

# Columnar vs row execution pairs (filter+project, SUM/GROUP BY, the sf1
# hash join, filtered top-k): each workload prints a _columnar and a _row
# variant; the pairwise ratio is the columnar speedup. Reference ratios
# live in crates/sqlengine/PERF.md ("Columnar execution") — if a
# _columnar row stops beating its _row twin, the kernels have regressed
# or stopped engaging.
run columnar_scan

# Morsel-driven parallel execution across the thread matrix: each
# workload prints t1 (serial engine) through t8 rows. Compare within a
# workload — CPU-bound speedup is bounded by `nproc`, the latency-bound
# hybrid join/agg case by the thread count. Reference numbers live in
# crates/sqlengine/PERF.md ("Parallel execution"); if tN rows stop
# improving on (or blow past the overhead envelope of) the recorded
# ratios, morsel execution has regressed.
run parallel_scaling

# Primary-key serving on 1M rows: each shape (point probe, 64-row
# BETWEEN, pk ORDER BY LIMIT 10) prints an _index and a _scan variant;
# the pairwise ratio is the index-scan speedup. The bench itself asserts
# the >=10x point-probe floor and the O(k)-pages incremental-checkpoint
# bound, so a disengaged planner rewrite fails the run outright.
# Reference ratios live in crates/sqlengine/PERF.md ("Paged storage").
# Zero-regression floors for the pre-pager engine: the hash_join_sf1
# pair in columnar_scan, the wal_commit batch/checkpoint rows and the
# columnar_scan pairs must hold their PERF.md numbers — the paged store
# must cost the in-memory serving path nothing.
run point_lookup

# WAL durability: commit latency vs transaction batch size (the fsync +
# record framing amortize over the batch), auto-commit baseline,
# checkpoint cost, 10k-row recovery, and the contended group-commit case
# (8 concurrent committers, fsync on — the printed commits-per-fsync
# ratio must stay well above the nogroup variant's 1.00 floor; if it
# falls toward 1.0, the group-commit queue has stopped batching).
# Reference numbers live in crates/sqlengine/PERF.md ("Durability"); if
# the per-row cost of batch_1000 creeps toward batch_1's, commit
# batching has regressed.
run wal_commit

# Row-level conflict detection under contention: 8 committers run
# transactions against ONE table. The disjoint_rows row must print
# **0 conflict aborts** (the false-conflict fix — it also asserts this);
# the same_row control keeps printing a large abort count. Both report
# commits-per-fsync and leader→committer install handbacks.
run hot_row_contention

# Model-call-count bench (plain table output, no criterion harness): the
# filter argument does not apply here.
echo "== udf_fallback =="
cargo bench -p swan-bench --bench udf_fallback
echo

# Resilience-layer overhead on the no-fault path (plain table output):
# the same fallback workload through a raw model vs a ResilientModel
# wrapper (direct transport, default policies). The printed overhead must
# stay under the 5% envelope recorded in crates/sqlengine/PERF.md; if it
# climbs, resilience bookkeeping has leaked onto the per-call hot path.
echo "== resilience_overhead =="
cargo bench -p swan-bench --bench resilience_overhead
echo
