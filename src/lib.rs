//! # swan — hybrid querying over relational databases and large language models
//!
//! A complete, from-scratch reproduction of the SWAN benchmark and the
//! HQDL / hybrid-query-UDF solutions from *"Hybrid Querying Over
//! Relational Databases and Large Language Models"* (CIDR 2025).
//!
//! This facade crate re-exports the full public API; the implementation
//! lives in four workspace crates:
//!
//! * [`sqlengine`] — an embedded, in-memory SQL engine (the SQLite
//!   stand-in): lexer → parser → planner → optimizer → executor, with a
//!   scalar-UDF registry whose *expensive-function* hint drives
//!   LLM-aware optimization. Execution runs on a **zero-copy core**:
//!   interned text (`Value::Text(Arc<str>)`), shared rows
//!   (`Row = Arc<[Value]>`), statistics-driven join ordering, and
//!   column-pruned join emission — see `crates/sqlengine/PERF.md` for the
//!   measured speedups. Scans additionally execute **columnar**
//!   (`OptimizerConfig::columnar`, default on; `SWAN_COLUMNAR=0`
//!   disables): tables cache typed column vectors with validity bitmaps
//!   and dictionary-encoded text, filter predicates evaluate as
//!   word-at-a-time three-valued-logic bitmap kernels, GROUP BY /
//!   hash-join keys and plain-column aggregates read the columns
//!   directly, and rows materialize lazily at the engine boundary —
//!   1.7–2.2× on scan-heavy shapes with the row path preserved
//!   bit-for-bit as the `columnar: false` fallback (PERF.md, "Columnar
//!   execution"). Expensive UDF calls execute **batched**: at every
//!   operator (projection, WHERE, HAVING, join ON) the engine collects
//!   the distinct argument tuples of its input batch and issues one
//!   `ScalarUdf::invoke_batch` instead of one call per row, so `llm_map`
//!   chunks keys per `UdfConfig::batch_size` and fans them out across
//!   parallel workers even for query shapes the BlendSQL-style pre-pass
//!   cannot analyze (measured on the fallback path: 60 → 12 model calls
//!   and ~27× wall clock on a join-ON-over-subquery workload; see
//!   PERF.md's "Batched expensive-UDF execution"). Queries over large
//!   inputs execute **morsel-driven parallel** (paper §6 future work):
//!   the optimizer annotates plans with `Plan::Parallel` from catalog
//!   row counts, and filters, partitioned hash-join build/probe,
//!   two-phase GROUP BY and top-k fan out over the shared compute pool —
//!   byte-identical to serial results at every thread count
//!   (`SWAN_THREADS` controls the default; the `parallel_diff`
//!   differential harness enforces the equivalence). `SharedDb` serves
//!   many concurrent sessions over one database: snapshot reads,
//!   per-table writer serialization, panic-transparent locks. Sessions
//!   run **multi-statement transactions** (`BEGIN`/`COMMIT`/`ROLLBACK`)
//!   under snapshot isolation with **row-level** first-committer-wins
//!   conflict detection: commits record per-primary-key write sets,
//!   validation intersects them against every commit since the
//!   transaction's snapshot, disjoint-row transactions rebase and
//!   commit (no false conflicts on one hot table) while true row
//!   overlaps and DDL abort naming the rows, and a watermark GC bounds
//!   the write-set history to the oldest live snapshot, and
//!   `Database::open(path)` / `SharedDb::open(path)` add **crash
//!   durability**: every commit is a checksummed, fsynced write-ahead-log
//!   record group, recovery replays the intact prefix (torn tails are
//!   truncated — the `wal_recovery` harness proves pre-or-post-commit
//!   recovery at every byte offset), and the log auto-checkpoints past a
//!   configurable size (see PERF.md's "Durability" for commit-latency
//!   numbers). Concurrent committers **group-commit**: framed record
//!   groups queue behind one leader that appends the whole batch with a
//!   single fsync and installs it atomically, multiplying write
//!   throughput under contention (3.98 commits per fsync with 8
//!   committers on the `wal_commit` bench;
//!   `DurabilityConfig::group_commit` toggles it). Every byte of WAL and
//!   checkpoint I/O flows through a **virtual filesystem seam**
//!   (`swan_sqlengine::vfs`): `RealFs` in production, and in tests the
//!   fault-injecting `SimFs`, which the `crash_sim` harness drives with
//!   a deterministic fail/crash at every operation index to prove
//!   recovery always lands on a clean prefix of acknowledged commits.
//!   The `slt` golden-file suite replays sqllogictest-style scripts on
//!   the serial and 8-thread engines with byte-identical expected
//!   output. Statements run under a **cooperative deadline**: a
//!   `statement_timeout` on the database, a `SharedDb`, or a single
//!   session arms a cancel token that both executors check between
//!   morsels and that model calls, batch fan-outs and single-flight
//!   waiters all observe — a blown deadline surfaces as the pinned
//!   `statement timeout: deadline exceeded` error, never a hang.
//! * [`llm`] — the language-model layer: prompt templates, token/cost
//!   accounting, caches, a parallel executor over the shared
//!   [`swan_pool`] worker pool, and the calibrated simulated
//!   GPT-3.5/GPT-4 models (see DESIGN.md for the substitution
//!   rationale). Model calls cross a **transport seam**
//!   (`swan_llm::transport`, the LLM boundary's `vfs`): `DirectTransport`
//!   in production, fault-injecting `SimTransport` in tests, and a
//!   `ResilientModel` wrapper adding per-call timeouts, capped
//!   exponential backoff with deterministic jitter, and a per-endpoint
//!   circuit breaker — with terminal failures resolved by the UDF
//!   runner's `OnModelFailure` policy (fail / NULL / stale-cache) and
//!   the whole matrix swept deterministically on a virtual clock by
//!   `tests/llm_fault_sim.rs` (see `crates/llm/RESILIENCE.md`).
//! * [`data`] — the SWAN benchmark: four synthetic domain databases,
//!   schema curation, and 120 beyond-database questions with gold and
//!   hybrid SQL.
//! * [`core`] — the two solutions (HQDL schema expansion; BlendSQL-style
//!   UDFs with batching/pushdown/caching) and the evaluation harness
//!   (execution accuracy, data-factuality F1, token reports).
//!
//! ## Quick start
//!
//! ```
//! use swan::prelude::*;
//!
//! // A small benchmark instance (scale 1.0 = the paper's Table 1 sizes).
//! let harness = Harness::new(0.02);
//!
//! // Evaluate HQDL with the simulated GPT-4 Turbo at 5-shot.
//! let eval = evaluate_hqdl(
//!     &harness.benchmark,
//!     harness.kb.clone(),
//!     &harness.gold,
//!     ModelKind::Gpt4Turbo,
//!     5,
//!     4,
//! );
//! assert_eq!(eval.overall.total, 120);
//! println!("EX = {:.1}%, F1 = {:.1}%",
//!          100.0 * eval.overall.accuracy(), 100.0 * eval.average_f1());
//! ```
//!
//! ## Enforced seams
//!
//! The Vfs/Clock/pool seams and the workspace lock hierarchy are
//! machine-checked: `swan-analyze` (`crates/analysis`) lints every
//! production source for seam violations, unranked locks, undocumented
//! `unsafe`, and panics on commit/recovery paths, and a runtime lockdep
//! validator in the `parking_lot` shim panics on lock-rank inversions
//! and lock-order cycles (on in debug builds and under `SWAN_LOCKDEP=1`).
//! See `ANALYSIS.md` at the workspace root for the rule catalog and the
//! full lock-rank table.

pub use swan_core as core;
pub use swan_data as data;
pub use swan_llm as llm;
pub use swan_pool as pool;
pub use swan_sqlengine as sqlengine;

/// The most commonly used items in one import.
pub mod prelude {
    pub use swan_core::experiment::{
        evaluate_hqdl, evaluate_udf, GoldSet, Harness, HqdlEvaluation, UdfEvaluation,
    };
    pub use swan_core::hqdl::{materialize, HqdlConfig, HqdlRun};
    pub use swan_core::metrics::{execution_match, factuality, sql_is_ordered, ExTally};
    pub use swan_core::udf::{CacheScope, OnModelFailure, UdfConfig, UdfRunner, UdfStats};
    pub use swan_data::{build_knowledge, GenConfig, SwanBenchmark};
    pub use swan_llm::{
        BreakerPolicy, BreakerState, CachePolicy, CachedModel, LanguageModel, ModelKind,
        ResilientModel, RetryPolicy, SimulatedModel, UsageReport,
    };
    pub use swan_sqlengine::{
        Database, DurabilityConfig, OptimizerConfig, QueryResult, ScalarUdf, Session,
        SharedDb, Value,
    };
}
