//! An interactive hybrid-query shell.
//!
//! Loads one SWAN domain, registers the `llm_map` UDF backed by the
//! simulated model, optionally materializes the HQDL `llm_*` tables, and
//! reads SQL from stdin — so you can explore both solution styles live:
//!
//! ```text
//! $ cargo run --release --bin swan-repl -- superhero 0.1 --materialize
//! swan> SELECT COUNT(*) FROM superhero;
//! swan> SELECT superhero_name FROM superhero T1
//!       WHERE llm_map('Which publisher published the superhero?',
//!                     T1.superhero_name, T1.full_name) = 'Marvel Comics'
//!       LIMIT 5;
//! swan> .tables
//! swan> .usage
//! swan> .quit
//! ```

use std::io::{BufRead, Write as _};
use std::sync::Arc;

use swan::prelude::*;
use swan_core::udf::UdfRunner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let domain_name = args.first().map(String::as_str).unwrap_or("superhero");
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let materialize_tables = args.iter().any(|a| a == "--materialize");

    eprintln!("loading domain '{domain_name}' at scale {scale}...");
    let Some(domain) =
        SwanBenchmark::generate_domain(&GenConfig::with_scale(scale), domain_name)
    else {
        eprintln!(
            "unknown domain '{domain_name}'. Try: california_schools, superhero, \
             formula_1, european_football"
        );
        std::process::exit(2);
    };
    let kb = build_knowledge(std::slice::from_ref(&domain));
    let model = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb));

    // The runner owns a curated DB with llm_map registered; optionally
    // overlay the HQDL materialization so both styles are queryable.
    let mut runner = UdfRunner::new(&domain, model.clone(), UdfConfig::default());
    if materialize_tables {
        eprintln!("materializing llm_* tables (HQDL, 5-shot)...");
        let run = swan_core::materialize(
            &domain,
            model.as_ref(),
            &HqdlConfig { shots: 5, workers: 4 },
        );
        for e in &domain.curation.expansions {
            if let Some(t) = run.database.catalog().get(&e.table) {
                runner.database_mut().catalog_mut().put_table((**t).clone());
            }
        }
    }
    eprintln!("tables: {}", runner.database().catalog().table_names().join(", "));
    eprintln!("type SQL, or .tables / .schema <t> / .usage / .quit");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            eprint!("swan> ");
        } else {
            eprint!("  ... ");
        }
        std::io::stderr().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                ".quit" | ".exit" => break,
                ".tables" => {
                    println!("{}", runner.database().catalog().table_names().join("\n"));
                    continue;
                }
                ".usage" => {
                    let u = model.usage();
                    println!(
                        "calls: {}  input tokens: {}  output tokens: {}  (~${:.2} at GPT-4 pricing)",
                        u.calls,
                        u.input_tokens,
                        u.output_tokens,
                        u.cost(&swan_llm::Pricing::GPT4_TURBO)
                    );
                    continue;
                }
                t if t.starts_with(".schema") => {
                    let name = t.trim_start_matches(".schema").trim();
                    match runner.database().catalog().get(name) {
                        Some(table) => {
                            println!("{}({})", table.name, table.column_names().join(", "));
                            println!("{} rows", table.len());
                        }
                        None => println!("no such table: {name}"),
                    }
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue; // accumulate a multi-line statement
        }
        let sql = std::mem::take(&mut buffer);
        let sql = sql.trim().trim_end_matches(';');
        // Through the Clock seam (swan-analyze rule 2): the REPL's
        // latency display uses the same clock abstraction as the engine.
        let clock = swan_pool::RealClock::new();
        let started = swan_pool::Clock::now(&clock);
        match runner.run_sql(sql) {
            Ok(result) => {
                print_result(&result);
                let elapsed = swan_pool::Clock::now(&clock).saturating_sub(started);
                eprintln!("({} rows in {:?})", result.rows.len(), elapsed);
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

fn print_result(result: &QueryResult) {
    use swan_sqlengine::display::format_table;
    use swan_sqlengine::exec::Relation;
    use swan_sqlengine::plan::RelSchema;
    if result.columns.is_empty() {
        println!("ok ({} rows affected)", result.rows_affected);
        return;
    }
    let rel = Relation {
        schema: RelSchema::qualified("r", result.columns.clone()),
        rows: result.rows.clone(),
    };
    print!("{}", format_table(&rel));
}
