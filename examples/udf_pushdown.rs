//! Hybrid-query UDFs with predicate pushdown (paper §4.2).
//!
//! `llm_map('question', key...)` runs inline in SQL. The pre-pass batches
//! keys (BlendSQL default 5) and — with pushdown — only generates values
//! for rows that survive the cheap predicates, instead of the paper's
//! §5.5 pathology of "generating heights for all players" on a point
//! lookup.
//!
//! Run with: `cargo run --release --example udf_pushdown`

use std::sync::Arc;

use swan::prelude::*;

fn main() {
    let domain = SwanBenchmark::generate_domain(&GenConfig::with_scale(0.1), "formula_1")
        .expect("domain exists");
    let kb = build_knowledge(std::slice::from_ref(&domain));
    let drivers = domain.curated.catalog().get("drivers").unwrap().len();

    // A point lookup: the driver code of one specific driver.
    let q = &domain.questions[0];
    println!("question: {}", q.text);
    println!("udf SQL : {}\n", q.udf_sql);

    for (label, pushdown) in [("WITH pushdown", true), ("WITHOUT pushdown", false)] {
        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb.clone()));
        let mut runner = UdfRunner::new(
            &domain,
            model.clone(),
            UdfConfig { pushdown, ..Default::default() },
        );
        let result = runner.run_sql(&q.udf_sql).expect("query runs");
        let usage = model.usage();
        println!("== {label} ==");
        println!("  answer:        {}", result.rows[0][0].render());
        println!(
            "  keys generated: {} (of {} drivers)",
            runner.stats().prefetched_keys,
            drivers
        );
        println!(
            "  LLM calls: {}, input tokens: {}",
            usage.calls, usage.input_tokens
        );
    }

    println!();
    println!("The optimizer also orders expensive predicates last inside filters,");
    println!("so `WHERE year = 2008 AND llm_map(...) = 'x'` evaluates the cheap");
    println!("half first (swan_sqlengine::optimizer, rule 2).");
}
