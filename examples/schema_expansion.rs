//! HQDL schema expansion on California Schools (paper §4.1).
//!
//! Shows the full pipeline: curated schema → row-completion prompts →
//! data extraction → materialized `llm_schools` table → answering
//! beyond-database questions, including the free-form URL generation the
//! paper highlights ("often ends with edu") and a factuality report.
//!
//! Run with: `cargo run --release --example schema_expansion`

use swan::prelude::*;
use swan_llm::RowCompletionPrompt;

fn main() {
    let domain =
        SwanBenchmark::generate_domain(&GenConfig::with_scale(0.05), "california_schools")
            .expect("domain exists");
    let expansion = &domain.curation.expansions[0];

    println!("== the expansion HQDL must fill in ==");
    println!("table: {}", expansion.table);
    println!("keys:  {:?}", expansion.key_columns);
    println!(
        "generated columns: {:?}",
        expansion.generated.iter().map(|g| g.name.as_str()).collect::<Vec<_>>()
    );

    // Show one actual prompt (the §4.1.1 format).
    let keys = swan_core::hqdl::expansion_keys(&domain.curated, expansion);
    let prompt = RowCompletionPrompt {
        db: domain.name.clone(),
        columns: expansion.all_columns(),
        key_len: expansion.key_columns.len(),
        value_lists: expansion
            .generated
            .iter()
            .filter_map(|g| g.value_list.as_ref().map(|v| (g.name.clone(), v.clone())))
            .collect(),
        examples: vec![],
        target_key: keys[0].clone(),
    };
    println!("\n== a zero-shot row-completion prompt ==\n{}\n", prompt.render());

    // Materialize with the simulated GPT-4 Turbo.
    let kb = build_knowledge(std::slice::from_ref(&domain));
    let model = SimulatedModel::new(ModelKind::Gpt4Turbo, kb);
    let run = materialize(&domain, &model, &HqdlConfig { shots: 5, workers: 4 });
    println!(
        "materialized {} rows ({} malformed responses dropped by extraction)",
        run.database.catalog().get("llm_schools").unwrap().len(),
        run.malformed_rows
    );

    // Generated websites: free-form, but anchored to the school name.
    let sites = run
        .database
        .query("SELECT school_name, website FROM llm_schools LIMIT 5")
        .unwrap();
    println!("\ngenerated websites:");
    for row in &sites.rows {
        println!("  {:40} {}", row[0].render(), row[1].render());
    }

    // Answer a real benchmark question and compare with gold.
    let q = &domain.questions[0];
    println!("\nquestion: {}", q.text);
    let hybrid = run.database.query(&q.hybrid_sql).unwrap();
    let gold = domain.original.query(&q.gold_sql).unwrap();
    println!(
        "gold:   {:?}",
        gold.rows.iter().map(|r| r[0].render()).collect::<Vec<_>>()
    );
    println!(
        "hybrid: {:?}",
        hybrid.rows.iter().map(|r| r[0].render()).collect::<Vec<_>>()
    );
    println!(
        "execution match: {}",
        execution_match(&gold, &hybrid, sql_is_ordered(&q.gold_sql))
    );

    // Factuality of everything that was generated.
    let report = factuality(&domain, &run.database);
    println!(
        "\ndata factuality over {} cells: F1 = {:.1}%",
        report.cells,
        100.0 * report.average_f1()
    );
}
