//! Run a miniature SWAN evaluation end to end: both solutions, both
//! models, EX + F1 + tokens — a compact version of the paper's §5.
//!
//! Run with: `cargo run --release --example swan_eval`
//! (set SWAN_SCALE to change the data size; default here is 0.05)

use swan::prelude::*;

fn main() {
    let scale = std::env::var("SWAN_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.05);
    println!("building SWAN at scale {scale}...");
    let h = Harness::new(scale);
    println!(
        "{} questions across {} domains\n",
        h.benchmark.question_count(),
        h.benchmark.domains.len()
    );

    println!("{:<14} {:>6} {:>10} {:>8} {:>12}", "condition", "shots", "EX", "F1", "tokens(in)");
    for model in [ModelKind::Gpt35Turbo, ModelKind::Gpt4Turbo] {
        for shots in [0usize, 5] {
            let e = evaluate_hqdl(&h.benchmark, h.kb.clone(), &h.gold, model, shots, 4);
            println!(
                "HQDL {:<9} {:>6} {:>9.1}% {:>7.1}% {:>12}",
                model.label().replace("GPT-", "").replace(" Turbo", ""),
                shots,
                100.0 * e.overall.accuracy(),
                100.0 * e.average_f1(),
                e.usage.input_tokens
            );
        }
    }
    for shots in [0usize, 5] {
        let e = evaluate_udf(
            &h.benchmark,
            h.kb.clone(),
            &h.gold,
            ModelKind::Gpt35Turbo,
            UdfConfig { shots, ..Default::default() },
        );
        println!(
            "UDF  {:<9} {:>6} {:>9.1}% {:>8} {:>12}",
            "3.5",
            shots,
            100.0 * e.overall.accuracy(),
            "-",
            e.usage.input_tokens
        );
    }

    println!();
    println!("Expected shapes (paper §5): few-shot beats zero-shot; GPT-4 beats");
    println!("GPT-3.5; HQDL beats the UDF pathway on EX; UDFs burn more tokens.");
}
