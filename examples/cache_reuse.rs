//! The §5.5 cache-reuse story: "What is the height of the tallest
//! player?" followed by "Please list player names who are taller than
//! 180cm".
//!
//! BlendSQL's exact-prompt cache cannot reuse the first question's
//! generations for the second (different prompt text); a semantic cache
//! (attribute-level, §4.3's query-rewriting idea) can; HQDL's
//! materialization makes reuse trivial.
//!
//! Run with: `cargo run --release --example cache_reuse`

use std::sync::Arc;

use swan::prelude::*;

const Q_TALLEST: &str =
    "SELECT MAX(llm_map('What is the height of the player in centimeters?', T1.player_name)) \
     FROM player T1";
const Q_OVER_180: &str =
    "SELECT COUNT(*) FROM player T1 \
     WHERE llm_map('How tall is the player in centimeters?', T1.player_name) > 180";

fn main() {
    let domain =
        SwanBenchmark::generate_domain(&GenConfig::with_scale(0.02), "european_football")
            .expect("domain exists");
    let kb = build_knowledge(std::slice::from_ref(&domain));
    let players = domain.curated.catalog().get("player").unwrap().len();
    println!("{players} players; Q1 asks the max height, Q2 sweeps heights again\n");

    for (label, scope) in [
        ("exact-prompt cache (BlendSQL)", CacheScope::ExactPrompt),
        ("semantic cache (query rewriting)", CacheScope::Semantic),
    ] {
        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt35Turbo, kb.clone()));
        let mut runner =
            UdfRunner::new(&domain, model.clone(), UdfConfig { cache: scope, ..Default::default() });

        let r1 = runner.run_sql(Q_TALLEST).unwrap();
        let after_q1 = model.usage();
        let r2 = runner.run_sql(Q_OVER_180).unwrap();
        let total = model.usage();

        println!("== {label} ==");
        println!("  tallest = {}cm; over-180 count = {}", r1.rows[0][0], r2.rows[0][0]);
        println!("  Q1 input tokens: {}", after_q1.input_tokens);
        println!(
            "  Q2 input tokens: {} ({} cached answers reused)",
            total.input_tokens - after_q1.input_tokens,
            runner.stats().cache_hits
        );
        println!();
    }

    // HQDL materialization answers both from one generation pass.
    let model = SimulatedModel::new(ModelKind::Gpt35Turbo, kb);
    let run = materialize(&domain, &model, &HqdlConfig::default());
    let gen_usage = model.usage();
    let tallest = run.database.query("SELECT MAX(height) FROM llm_player").unwrap();
    let over = run
        .database
        .query("SELECT COUNT(*) FROM llm_player WHERE height > 180")
        .unwrap();
    println!("== HQDL materialization ==");
    println!("  tallest = {}cm; over-180 count = {}", tallest.rows[0][0], over.rows[0][0]);
    println!("  one-time generation: {} input tokens", gen_usage.input_tokens);
    println!("  both questions answered with zero further LLM tokens");
}
