//! Quickstart: the paper's Figure 1 motivating example.
//!
//! "List all the hero names from the Marvel Universe" cannot be answered
//! by the curated database (publisher information was removed), but a
//! hybrid query that joins the database with LLM-generated data can.
//!
//! Run with: `cargo run --release --example quickstart`

use swan::prelude::*;

fn main() {
    // 1. Generate the Superhero domain at a small scale.
    let domain = SwanBenchmark::generate_domain(&GenConfig::with_scale(0.1), "superhero")
        .expect("superhero domain exists");
    println!("curated schema keeps: {:?}", domain.curated.catalog().table_names());

    // 2. The database alone says NO: the publisher table is gone.
    let db_only = domain
        .curated
        .query("SELECT s.superhero_name FROM superhero s JOIN publisher p ON s.publisher_id = p.id");
    println!("\ndatabase-only attempt: {}", db_only.unwrap_err());

    // 3. Treat the LLM as a table: HQDL materializes `llm_superhero`
    //    from row-completion prompts, then plain SQL answers the question.
    let kb = build_knowledge(std::slice::from_ref(&domain));
    let model = SimulatedModel::new(ModelKind::Gpt4Turbo, kb);
    let run = materialize(&domain, &model, &HqdlConfig { shots: 5, workers: 4 });

    let marvel = run
        .database
        .query(
            "SELECT s.superhero_name, s.full_name \
             FROM superhero s \
             JOIN llm_superhero l \
               ON l.superhero_name = s.superhero_name AND l.full_name = s.full_name \
             WHERE l.publisher_name = 'Marvel Comics' \
             ORDER BY s.superhero_name",
        )
        .expect("hybrid query runs");

    println!("\nhybrid query: heroes the LLM attributes to Marvel Comics");
    for row in marvel.rows.iter().take(10) {
        println!("  {} ({})", row[0].render(), row[1].render());
    }
    println!("  ... {} heroes total", marvel.rows.len());

    // 4. Compare against ground truth (the original database).
    let truth = domain
        .original
        .query(
            "SELECT COUNT(*) FROM superhero s JOIN publisher p ON s.publisher_id = p.id \
             WHERE p.publisher_name = 'Marvel Comics'",
        )
        .unwrap();
    println!("\nground truth: {} Marvel heroes", truth.rows[0][0].render());
    println!(
        "LLM usage: {} calls, {} input tokens, {} output tokens",
        model.usage().calls,
        model.usage().input_tokens,
        model.usage().output_tokens
    );
}
